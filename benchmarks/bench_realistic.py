"""Realistic workload - an XMark-style auction site.

The paper's generators produce uniform shapes; real exchanged XML (the
auction-site workload of the XMark benchmark family) mixes wide fan-outs,
deep personalia paths, text, and skewed subtree sizes.  This bench runs
all three sorters on such a document and checks that the advisor's
recommendation holds up outside the paper's synthetic shapes.
"""

from repro.analysis import recommend
from repro.baselines import xsort
from repro.bench import (
    bench_scale,
    load_document,
    record_table,
    run_merge_sort,
)
from repro.core import nexsort
from repro.generators import auction_events, auction_spec

MEMORY_BLOCKS = 24


def _events():
    per_region = int(50 * bench_scale())
    return auction_events(per_region, seed=7, regions=12)


def _run():
    spec = auction_spec()

    document = load_document(_events())
    verdict = recommend(document, MEMORY_BLOCKS)

    doc = load_document(_events())
    _out, nexsort_report = nexsort(doc, spec, memory_blocks=MEMORY_BLOCKS)

    doc = load_document(_events())
    device = doc.device
    before = device.stats.snapshot()
    _out, _xreport = xsort(
        doc, spec, "site/region", memory_blocks=MEMORY_BLOCKS
    )
    xsort_stats = device.stats.since(before)

    merge_metrics = run_merge_sort(
        _events, memory_blocks=MEMORY_BLOCKS, spec=spec
    )
    return document, verdict, nexsort_report, xsort_stats, merge_metrics


def test_realistic_auction_workload(benchmark):
    document, verdict, nexsort_report, xsort_stats, merge_metrics = (
        benchmark.pedantic(_run, rounds=1, iterations=1)
    )

    record_table(
        "Realistic workload - XMark-style auction site",
        ["algorithm", "I/Os", "sim time (s)", "notes"],
        [
            [
                "NEXSORT",
                nexsort_report.total_ios,
                nexsort_report.simulated_seconds,
                f"{nexsort_report.x} subtree sorts "
                f"({nexsort_report.internal_sorts} internal)",
            ],
            [
                "external merge sort",
                merge_metrics.total_ios,
                merge_metrics.simulated_seconds,
                f"{merge_metrics.detail['passes']} passes",
            ],
            [
                "XSort (auctions per region only)",
                xsort_stats.total_ios,
                xsort_stats.elapsed_seconds(),
                "one level, not merge-ready",
            ],
        ],
        notes=[
            f"document: {document.element_count} elements, height "
            f"{document.height}, max fan-out {document.max_fanout}",
            f"advisor recommends: {verdict.algorithm} (on the paper's "
            "I/O-count metric)",
            "NEXSORT wins the I/O count; on this small, pointer-dense "
            "document the output phase's run-to-run jumps are seek-heavy, "
            "so the simulated-time winner depends on the disk model - the "
            "regime the paper's conclusion flags for future work "
            "(permutation cost when subtrees are small)",
        ],
    )

    # The advisor picks NEXSORT on this hierarchical document, and
    # NEXSORT indeed wins on the paper's primary metric (block I/Os).
    assert verdict.algorithm == "nexsort"
    assert nexsort_report.total_ios < merge_metrics.total_ios
    # XSort (one level) is the cheapest, as the related work predicts.
    assert xsort_stats.elapsed_seconds() < nexsort_report.simulated_seconds
    assert xsort_stats.total_ios < nexsort_report.total_ios
