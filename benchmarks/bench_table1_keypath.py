"""Experiment T1 - Table 1: the key-path representation of D1.

Regenerates the exact rows of the paper's Table 1 from the Figure 1
personnel document and verifies them verbatim.
"""

from repro.baselines import key_path_table
from repro.bench import load_document, record_table
from repro.generators import figure1_d1, figure1_spec

PAPER_TABLE1 = [
    ("/", "<company>"),
    ("/NE", '<region name="NE">'),
    ("/AC", '<region name="AC">'),
    ("/AC/Durham", '<branch name="Durham">'),
    ("/AC/Durham/454", '<employee ID="454">'),
    ("/AC/Durham/323", '<employee ID="323">'),
    ("/AC/Durham/323/name", "<name>Smith"),
    ("/AC/Durham/323/phone", "<phone>5552345"),
    ("/AC/Atlanta", '<branch name="Atlanta">'),
]


def test_table1_key_path_representation(benchmark):
    document = load_document(figure1_d1().to_events())
    spec = figure1_spec()

    rows = benchmark(key_path_table, document, spec)

    assert rows == PAPER_TABLE1
    record_table(
        "Table 1 - key-path representation of D1",
        ["Key path", "Element content", "matches paper"],
        [
            [path, content, "yes"]
            for path, content in rows
        ],
        notes=["all 9 rows identical to the paper's Table 1"],
    )
