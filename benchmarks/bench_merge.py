"""Experiment MRG - Example 1.1 / Figure 1: merging XML documents.

The paper motivates NEXSORT with the merge problem: the naive nested-loop
approach "performs poorly because it generates element access patterns
that do not at all correspond to the natural depth-first element ordering
of disk-resident XML documents", whereas sorting both inputs lets the
merge complete "in a single pass over both sorted documents".

This bench scales the Figure 1 company documents up and compares the
complete pipelines (sort left + sort right + single-pass merge, vs.
nested-loop merge of the unsorted inputs), plus verifies the exact
Figure 1 reproduction.
"""

from repro.bench import bench_scale, record_table
from repro.core import nexsort
from repro.generators import (
    figure1_d1,
    figure1_d2,
    figure1_merged,
    figure1_spec,
    payroll_events,
    personnel_events,
)
from repro.io import BlockDevice, RunStore
from repro.merge import nested_loop_merge, structural_merge
from repro.xml import Document

SIZES = [(2, 2, 6), (3, 3, 8), (3, 4, 12), (4, 4, 16)]
MEMORY_BLOCKS = 16


def _run_pair(regions, branches, employees):
    spec = figure1_spec()
    device = BlockDevice(block_size=512)
    store = RunStore(device)
    left = Document.from_events(
        store, personnel_events(regions, branches, employees)
    )
    right = Document.from_events(
        store, payroll_events(regions, branches, employees)
    )

    before = device.stats.snapshot()
    sorted_left, _ = nexsort(left, spec, memory_blocks=MEMORY_BLOCKS)
    sorted_right, _ = nexsort(right, spec, memory_blocks=MEMORY_BLOCKS)
    merged, merge_report = structural_merge(sorted_left, sorted_right, spec)
    pipeline = device.stats.since(before)

    before = device.stats.snapshot()
    naive, naive_report = nested_loop_merge(left, right, spec)
    nested = device.stats.since(before)

    same_content = (
        merged.to_element().unordered_canonical()
        == naive.to_element().unordered_canonical()
    )
    total = left.element_count + right.element_count
    return (
        total,
        pipeline,
        nested,
        merge_report,
        naive_report,
        same_content,
    )


def _sweep():
    sizes = list(SIZES)
    if bench_scale() >= 2:
        sizes.append((5, 5, 20))
    return [_run_pair(*size) for size in sizes]


def test_figure1_exact_reproduction(benchmark):
    def pipeline():
        spec = figure1_spec()
        device = BlockDevice(block_size=512)
        store = RunStore(device)
        left = Document.from_element(store, figure1_d1())
        right = Document.from_element(store, figure1_d2())
        sorted_left, _ = nexsort(
            left, spec, memory_blocks=8, depth_limit=3
        )
        sorted_right, _ = nexsort(
            right, spec, memory_blocks=8, depth_limit=3
        )
        merged, _ = structural_merge(
            sorted_left, sorted_right, spec, depth_limit=3
        )
        return merged.to_element()

    result = benchmark(pipeline)
    assert result == figure1_merged()
    record_table(
        "Figure 1 - sort + merge of the company documents",
        ["step", "status"],
        [
            ["sort D1 (regions/branches by name, employees by ID)", "ok"],
            ["sort D2 (same criterion)", "ok"],
            ["single-pass structural merge", "ok"],
            ["result equals the paper's merged document", "yes"],
        ],
    )


def test_merge_pipeline_vs_nested_loop(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    table = []
    for total, pipeline, nested, merge_report, naive_report, same in rows:
        table.append(
            [
                total,
                pipeline.total_ios,
                pipeline.elapsed_seconds(),
                nested.total_ios,
                nested.elapsed_seconds(),
                f"{nested.total_ios / pipeline.total_ios:.1f}x",
                naive_report.right_rescans,
                "yes" if same else "NO",
            ]
        )

    record_table(
        "Example 1.1 - sort + single-pass merge vs nested-loop merge",
        [
            "elements",
            "pipeline I/Os",
            "pipeline (s)",
            "nested I/Os",
            "nested (s)",
            "nested/pipeline",
            "right rescans",
            "same content",
        ],
        table,
        notes=[
            "pipeline cost includes sorting BOTH inputs; the gap still "
            "widens with size because nested-loop I/O is superlinear",
        ],
    )

    for total, pipeline, nested, _mr, _nr, same in rows:
        assert same
    # The blowup grows with input size.
    ratios = [row[1] for row in rows]
    blowups = [n.total_ios / p.total_ios for _t, p, n, _m, _nr, _s in rows]
    assert blowups[-1] > blowups[0]
    assert blowups[-1] > 2.0
