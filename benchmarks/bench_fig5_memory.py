"""Experiment F5 - Figure 5: effect of main memory size.

The paper runs NEXSORT and external merge sort over one hierarchical
document while sweeping main memory (4-32 MB of 64 KB blocks) and finds:
merge sort is 13-27% slower overall; NEXSORT's time "increases only
marginally" as memory shrinks while merge sort's "increases more
dramatically, especially when decreased memory forces additional passes".

Scaled geometry: 512-byte blocks, ~45-byte elements, a four-level document
(fan-outs 11/11/11/5, ~8k elements), memory swept 16-96 blocks - the same
``M/B`` range relative to the document.
"""

from repro.bench import (
    ascii_chart,
    bench_scale,
    record_table,
    run_merge_sort,
    run_nexsort,
)
from repro.generators import level_fanout_events

MEMORY_SWEEP = [16, 24, 32, 48, 64, 96]


def _events():
    deep = 5 if bench_scale() < 2 else 10
    return level_fanout_events([11, 11, 11, deep], seed=5, pad_bytes=24)


def _sweep():
    rows = []
    for memory in MEMORY_SWEEP:
        nexsort_metrics = run_nexsort(_events, memory_blocks=memory)
        merge_metrics = run_merge_sort(_events, memory_blocks=memory)
        rows.append((memory, nexsort_metrics, merge_metrics))
    return rows


def test_fig5_effect_of_main_memory(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    table = []
    slowdowns = []
    for memory, nexsort_metrics, merge_metrics in rows:
        ratio = (
            merge_metrics.simulated_seconds
            / nexsort_metrics.simulated_seconds
        )
        slowdowns.append(ratio)
        table.append(
            [
                memory,
                nexsort_metrics.simulated_seconds,
                merge_metrics.simulated_seconds,
                f"{(ratio - 1) * 100:+.0f}%",
                nexsort_metrics.total_ios,
                merge_metrics.total_ios,
                merge_metrics.detail["passes"],
            ]
        )

    nexsort_times = [r[1].simulated_seconds for r in rows]
    merge_times = [r[2].simulated_seconds for r in rows]
    nexsort_spread = max(nexsort_times) / min(nexsort_times)
    merge_spread = max(merge_times) / min(merge_times)

    record_table(
        "Figure 5 - effect of main memory size",
        [
            "memory (blocks)",
            "NEXSORT (s)",
            "merge sort (s)",
            "merge vs nexsort",
            "NEXSORT I/Os",
            "merge I/Os",
            "merge passes",
        ],
        table,
        chart=ascii_chart(
            MEMORY_SWEEP,
            {"NeXSort": nexsort_times, "Merge Sort": merge_times},
            y_label="simulated sort time (s) vs memory (blocks)",
        ),
        notes=[
            f"NEXSORT spread over the sweep: {nexsort_spread:.2f}x; "
            f"merge sort spread: {merge_spread:.2f}x "
            "(paper: NEXSORT 'increases only marginally', merge sort "
            "'more dramatically')",
            "paper reports merge sort 13-27% slower across its sweep",
        ],
    )

    # The figure's shape: merge sort more memory-sensitive, and slower
    # at every small-to-moderate memory size.
    assert merge_spread > nexsort_spread
    for memory, nexsort_metrics, merge_metrics in rows[:4]:
        assert (
            merge_metrics.simulated_seconds
            > nexsort_metrics.simulated_seconds
        ), f"merge sort should be slower at {memory} blocks"
