"""Ablation - graceful degeneration into external merge sort (§3.2).

The paper describes this optimization but did not implement it ("Thus, we
expect NEXSORT to perform worse than external merge sort for inputs that
are nearly flat").  We built it, so this ablation quantifies it: on a flat
input, plain NEXSORT wastes its first pass staging the whole document on
the data stack; with the optimization, incomplete sorted runs form as
memory fills - like merge sort's run formation - and the data stack never
pages.
"""

from repro.bench import (
    bench_scale,
    record_table,
    run_merge_sort,
    run_nexsort,
)
from repro.generators import level_fanout_events

MEMORY_BLOCKS = 24


def _flat_events():
    count = int(3000 * bench_scale())
    return level_fanout_events([count], seed=11, pad_bytes=24)


def _hierarchical_events():
    return level_fanout_events([11, 11, 11], seed=11, pad_bytes=24)


def _run_all():
    return {
        "flat_plain": run_nexsort(_flat_events, MEMORY_BLOCKS),
        "flat_opt": run_nexsort(
            _flat_events, MEMORY_BLOCKS, flat_optimization=True
        ),
        "flat_merge": run_merge_sort(_flat_events, MEMORY_BLOCKS),
        "hier_plain": run_nexsort(_hierarchical_events, MEMORY_BLOCKS),
        "hier_opt": run_nexsort(
            _hierarchical_events, MEMORY_BLOCKS, flat_optimization=True
        ),
    }


def test_flat_optimization_ablation(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    def row(label, metrics):
        return [
            label,
            metrics.total_ios,
            metrics.simulated_seconds,
            metrics.detail.get("flat_partial_runs", "-"),
            metrics.detail.get("data_stack_page_outs", "-"),
        ]

    record_table(
        "Graceful degeneration ablation (flat input, height 2)",
        [
            "configuration",
            "I/Os",
            "sim time (s)",
            "partial runs",
            "data-stack page-outs",
        ],
        [
            row("NEXSORT (paper's impl: no optimization)",
                results["flat_plain"]),
            row("NEXSORT + graceful degeneration", results["flat_opt"]),
            row("external merge sort", results["flat_merge"]),
            row("hierarchical input, plain", results["hier_plain"]),
            row("hierarchical input, optimized", results["hier_opt"]),
        ],
        notes=[
            "the optimization removes the wasted staging pass (zero "
            "data-stack page-outs) and closes most of the gap to merge "
            "sort on flat input; hierarchical inputs are unaffected",
        ],
    )

    flat_plain = results["flat_plain"]
    flat_opt = results["flat_opt"]
    flat_merge = results["flat_merge"]
    # The optimization removes data-stack paging entirely...
    assert flat_plain.detail["data_stack_page_outs"] > 0
    assert flat_opt.detail["data_stack_page_outs"] == 0
    # ...and improves flat-input performance.
    assert flat_opt.simulated_seconds < flat_plain.simulated_seconds
    # Merge sort remains the reference point NEXSORT degenerates toward.
    assert flat_merge.simulated_seconds <= flat_opt.simulated_seconds
    # Hierarchical inputs: the optimization changes little.
    hier_ratio = (
        results["hier_opt"].simulated_seconds
        / results["hier_plain"].simulated_seconds
    )
    assert 0.8 <= hier_ratio <= 1.25
