"""Experiment S - the sort service under Poisson load.

The service layer (DESIGN.md section 12) admits a seeded Poisson stream
of tenant sort jobs, runs each on a private resource lease, and replays
their cost events over a shared farm of ``D`` simulated disks.  This
module measures what multi-tenancy buys and what it must never cost:

* **Offered-load sweep** - the same 8-job workload at three arrival
  rates, fair policy, D=4: throughput and p50/p95/p99 latency per load
  land in ``BENCH_service.json``.
* **Concurrency speedup** - the acceptance bar: 8 concurrent small jobs
  at D=4 must beat serial back-to-back execution (the sum of solo
  service times, which is exactly what one disk would take) by >= 2x
  aggregate throughput.
* **Chaos** - the same workload under a seeded fault plan with retries:
  every admitted job must complete with a digest, counter set, and
  phase breakdown bit-identical to its solo run under the same plan
  (per-tenant injection makes the fault sequence a function of the
  tenant's own access stream, so isolation is what's being tested).

All metrics are simulated and therefore deterministic; nothing here can
flake on a loaded host.
"""

import json
from pathlib import Path

from repro.bench import record_table
from repro.io.lease import ResourcePool
from repro.service import Scheduler, parse_workload, run_solo

BLOCK_SIZE = 512

#: The acceptance workload: 8 small jobs arriving in a burst.
WORKLOAD = "jobs=8;rate=5.0;seed=11;shape=6x6x6;memory=16;cache=2"

#: Offered-load sweep: jobs per simulated second.
RATES = [2.0, 5.0, 10.0]

DISKS = 4
POOL_BLOCKS = 64

CHAOS_PLAN = "rate=0.02;seed=9"
CHAOS_RETRIES = 2

_JSON_PATH = Path(__file__).parent / "BENCH_service.json"


def _workload(rate):
    return parse_workload(WORKLOAD.replace("rate=5.0", f"rate={rate}"))


def _schedule(jobs, policy="fair", disks=DISKS, fault_plan=None, retries=0):
    pool = ResourcePool(POOL_BLOCKS, block_size=BLOCK_SIZE, disks=disks)
    scheduler = Scheduler(
        pool, policy=policy, fault_plan=fault_plan, retries=retries
    )
    report = scheduler.run(jobs)
    report.verify_isolation()
    return report


def _solo(spec, fault_plan=None, retries=0):
    return run_solo(
        spec,
        block_size=BLOCK_SIZE,
        fault_plan=fault_plan,
        retries=retries,
    )


def _row(scenario, report, **extra):
    return {"scenario": scenario, **report.summary(), **extra}


def _write_rows(rows):
    _JSON_PATH.write_text(
        json.dumps(
            {
                "experiment": "sort_service",
                "block_size": BLOCK_SIZE,
                "pool_blocks": POOL_BLOCKS,
                "workload": WORKLOAD,
                "rows": rows,
            },
            indent=2,
        )
        + "\n"
    )


def test_service_under_load(benchmark):
    """Sweep + speedup bar + chaos, one JSON artifact."""

    def sweep():
        return [(rate, _schedule(_workload(rate))) for rate in RATES]

    reports = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    load_table = []
    for rate, report in reports:
        assert len(report.completed) == len(report.results)
        summary = report.summary()
        rows.append(_row("offered-load", report, rate=rate))
        load_table.append(
            [
                f"{rate:.1f}",
                summary["completed"],
                f"{summary['makespan_seconds']:.3f}",
                f"{summary['throughput_jobs_per_second']:.2f}",
                f"{summary['latency_p50_seconds']:.3f}",
                f"{summary['latency_p95_seconds']:.3f}",
                f"{summary['latency_p99_seconds']:.3f}",
            ]
        )

    # Concurrency speedup: serial back-to-back = sum of solo service
    # times (one job's replay is serial, so D does not help it).
    jobs = parse_workload(WORKLOAD)
    solos = {spec.tenant: _solo(spec) for spec in jobs}
    serial_seconds = sum(s.service_seconds for s in solos.values())
    concurrent = next(r for rate, r in reports if rate == 5.0)
    serial_throughput = len(jobs) / serial_seconds
    speedup = concurrent.throughput_jobs_per_second / serial_throughput
    assert speedup >= 2.0, (
        f"8 jobs on {DISKS} disks achieved only {speedup:.2f}x the "
        f"serial back-to-back throughput"
    )
    rows.append(
        {
            "scenario": "concurrency-speedup",
            "disks": DISKS,
            "jobs": len(jobs),
            "serial_seconds": serial_seconds,
            "concurrent_makespan_seconds": concurrent.makespan_seconds,
            "throughput_speedup": round(speedup, 2),
            "latency_p99_seconds": concurrent.latency_percentiles()["p99"],
        }
    )

    # Scheduled == solo, bit for bit: digest, counters, phases.
    for result in concurrent.completed:
        solo = solos[result.spec.tenant]
        assert result.digest == solo.digest, result.spec.tenant
        assert result.counters == solo.counters, result.spec.tenant
        assert result.phases == solo.phases, result.spec.tenant

    # Chaos: a seeded fault plan with retries; every admitted job still
    # completes bit-identically to its solo run under the same plan.
    chaos = _schedule(
        parse_workload(WORKLOAD),
        fault_plan=CHAOS_PLAN,
        retries=CHAOS_RETRIES,
    )
    assert len(chaos.completed) == len(chaos.results)
    for result in chaos.completed:
        solo = _solo(
            result.spec, fault_plan=CHAOS_PLAN, retries=CHAOS_RETRIES
        )
        assert result.digest == solo.digest, result.spec.tenant
        assert result.counters == solo.counters, result.spec.tenant
    assert chaos.pool_totals["penalty_seconds"] > 0, (
        "the chaos plan injected no faults; raise rate= in CHAOS_PLAN"
    )
    rows.append(
        _row(
            "chaos",
            chaos,
            fault_plan=CHAOS_PLAN,
            retries=CHAOS_RETRIES,
            penalty_seconds=chaos.pool_totals["penalty_seconds"],
            bit_identical=True,
        )
    )

    _write_rows(rows)

    record_table(
        "Sort service under Poisson load (8 jobs, fair, D=4)",
        ["rate (jobs/s)", "done", "makespan (s)", "jobs/s",
         "p50 (s)", "p95 (s)", "p99 (s)"],
        load_table,
        notes=[
            f"concurrent vs serial back-to-back: {speedup:.1f}x "
            f"(acceptance floor 2.0x)",
            "every scheduled job bit-identical to its solo run "
            "(digest + counters + phases), chaos plan included",
            f"rows written to {_JSON_PATH.name}",
        ],
    )
