"""Experiment T2+F7 - Table 2 and Figure 7: effect of input tree shape.

The paper builds five documents of near-constant size (~3M elements) whose
heights range from 2 to 6 with near-uniform per-level fan-outs (Table 2),
and sorts each with 4 MB of memory (Figure 7):

* height 2 (a flat file): NEXSORT is *worse* than merge sort, because the
  authors "have not implemented the optimization that allows NEXSORT to
  degenerate into external merge sort";
* past a critical height (4 in the paper), NEXSORT "significantly
  improves due to the decreased maximum fan-out";
* between critical levels, improvement is small or slightly negative
  ("increased tree height does not necessarily translate into smaller
  subtree sorts").

Scaled analogue: ~4k elements per shape.  We run NEXSORT both without the
graceful-degeneration optimization (matching the paper's implementation)
and with it (the Section 3.2 extension the paper describes but did not
build).
"""

from repro.bench import (
    ascii_chart,
    bench_scale,
    record_table,
    run_merge_sort,
    run_nexsort,
)
from repro.generators import (
    level_fanout_element_count,
    scaled_table2_shapes,
)
from repro.generators import level_fanout_events

MEMORY_BLOCKS = 24


def _sweep():
    target = int(4000 * bench_scale())
    shapes = scaled_table2_shapes(target)
    rows = []
    for height in sorted(shapes):
        fanouts = shapes[height]

        def events(fanouts=fanouts):
            return level_fanout_events(fanouts, seed=7, pad_bytes=24)

        nexsort_metrics = run_nexsort(events, memory_blocks=MEMORY_BLOCKS)
        flatopt_metrics = run_nexsort(
            events, memory_blocks=MEMORY_BLOCKS, flat_optimization=True
        )
        merge_metrics = run_merge_sort(events, memory_blocks=MEMORY_BLOCKS)
        rows.append(
            (height, fanouts, nexsort_metrics, flatopt_metrics, merge_metrics)
        )
    return rows


def test_fig7_effect_of_tree_shape(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    shape_table = []
    time_table = []
    for height, fanouts, nexsort_metrics, flatopt_metrics, merge_metrics in rows:
        shape_table.append(
            [
                height,
                ", ".join(str(f) for f in fanouts),
                level_fanout_element_count(fanouts),
            ]
        )
        time_table.append(
            [
                height,
                nexsort_metrics.simulated_seconds,
                flatopt_metrics.simulated_seconds,
                merge_metrics.simulated_seconds,
                nexsort_metrics.detail["max_fanout"],
                nexsort_metrics.detail["x"],
            ]
        )

    record_table(
        "Table 2 - input document shapes (scaled)",
        ["Height", "Fan-out for each level", "Size (elements)"],
        shape_table,
        notes=["paper used ~3M elements; scaled to the same shape family"],
    )
    record_table(
        "Figure 7 - effect of tree shape",
        [
            "height",
            "NEXSORT (s)",
            "NEXSORT+flat-opt (s)",
            "merge sort (s)",
            "max fan-out",
            "subtree sorts",
        ],
        time_table,
        chart=ascii_chart(
            [row[0] for row in time_table],
            {
                "NeXSort": [row[1] for row in time_table],
                "Merge Sort": [row[3] for row in time_table],
            },
            y_label="simulated sort time (s) vs tree height",
        ),
        notes=[
            "paper: NEXSORT worse at height 2 (no degeneration "
            "optimization), significantly better past the critical "
            "height as max fan-out drops",
        ],
    )

    by_height = {row[0]: row for row in time_table}
    # Height 2 is a flat file: plain NEXSORT loses to merge sort.
    assert by_height[2][1] > by_height[2][3]
    # The flat-optimization narrows the gap at height 2.
    assert by_height[2][2] < by_height[2][1]
    # Past the critical height, NEXSORT wins.
    assert by_height[5][1] < by_height[5][3]
    assert by_height[6][1] < by_height[6][3]
    # And the improvement tracks the decreased fan-out: height 6 NEXSORT
    # beats height 2 NEXSORT by a wide margin at constant size.
    assert by_height[6][1] < 0.5 * by_height[2][1]
