"""Extension bench - the cost of IDREF-resolved ordering.

The paper left ordering expressions that follow IDREFs as future work;
`repro.core.idref` implements them with an external semi-join.  This
bench measures the resolution overhead (two extra document passes plus
reference-stream sorts) against a plain attribute sort of the same
document.
"""

import random

from repro.bench import bench_scale, load_document, record_table
from repro.core import ByIdRef, nexsort, nexsort_with_idrefs
from repro.keys import ByAttribute, SortSpec


def _org_events():
    from repro.xml.tokens import EndTag, StartTag

    rng = random.Random(13)
    people = int(800 * bench_scale())
    employees = int(1600 * bench_scale())
    yield StartTag("org", (("name", "root"),))
    yield StartTag("people", (("name", "people"),))
    for index in range(people):
        yield StartTag(
            "person",
            (
                ("id", f"p{index}"),
                ("name", f"N{rng.randrange(10**6):06d}"),
            ),
        )
        yield EndTag("person")
    yield EndTag("people")
    yield StartTag("staff", (("name", "staff"),))
    for index in range(employees):
        yield StartTag(
            "employee",
            (
                ("badge", str(index)),
                ("ref", f"p{rng.randrange(people)}"),
                ("name", f"E{rng.randrange(10**6):06d}"),
            ),
        )
        yield EndTag("employee")
    yield EndTag("staff")
    yield EndTag("org")


def _run():
    plain_spec = SortSpec(default=ByAttribute("name", missing_uses_tag=True))
    idref_spec = SortSpec(
        default=ByAttribute("name", missing_uses_tag=True),
        rules={"employee": ByIdRef("ref", id_attribute="id")},
    )

    document = load_document(_org_events())
    device = document.device
    before = device.stats.snapshot()
    _out, plain_report = nexsort(document, plain_spec, memory_blocks=24)
    plain_stats = device.stats.since(before)

    document = load_document(_org_events())
    device = document.device
    before = device.stats.snapshot()
    _out, _report = nexsort_with_idrefs(
        document, idref_spec, memory_blocks=24
    )
    idref_stats = device.stats.since(before)
    return document, plain_stats, idref_stats


def test_idref_resolution_overhead(benchmark):
    document, plain_stats, idref_stats = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )

    overhead = idref_stats.total_ios / max(1, plain_stats.total_ios)
    record_table(
        "IDREF-resolved ordering (the paper's future work)",
        ["configuration", "I/Os", "sim time (s)"],
        [
            [
                "plain attribute sort",
                plain_stats.total_ios,
                plain_stats.elapsed_seconds(),
            ],
            [
                "IDREF semi-join + sort + strip",
                idref_stats.total_ios,
                idref_stats.elapsed_seconds(),
            ],
        ],
        notes=[
            f"document: {document.element_count} elements; resolution "
            f"overhead {overhead:.1f}x plain I/Os",
            "overhead = two extra document passes + sorts of the "
            "(id, key) and (position, ref) streams",
        ],
    )

    # The semi-join costs extra, but stays within a small constant of
    # the plain sort (it is passes, not a quadratic blowup).
    assert 1.0 < overhead < 6.0
