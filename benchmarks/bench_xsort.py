"""Comparison - XSort vs NEXSORT (related work, Section 2).

"Obviously, XSort sorts less, and should complete in less time than
NEXSORT.  However, XSort does not lend itself well to solving the
structural merge problem."  Both halves are measurable: XSort is cheaper
at every size, and an XSort'ed document is *not* mergeable in one pass
(only one level is sorted), which this bench demonstrates by checking
sortedness down the tree.
"""

from repro.baselines import is_fully_sorted, xsort
from repro.bench import (
    BENCH_SPEC,
    load_document,
    record_table,
    run_nexsort,
)
from repro.generators import level_fanout_events

MEMORY_BLOCKS = 24
SHAPES = [[11, 11, 5], [11, 11, 11], [11, 11, 11, 5]]


def _sweep():
    rows = []
    for fanouts in SHAPES:
        def events(fanouts=fanouts):
            return level_fanout_events(fanouts, seed=12, pad_bytes=24)

        document = load_document(events())
        device = document.device
        before = device.stats.snapshot()
        xsorted, xreport = xsort(
            document, BENCH_SPEC, "root", memory_blocks=MEMORY_BLOCKS
        )
        xsort_stats = device.stats.since(before)

        nexsort_metrics = run_nexsort(events, memory_blocks=MEMORY_BLOCKS)
        fully_sorted = is_fully_sorted(xsorted.to_element(), BENCH_SPEC)
        top_sorted = is_fully_sorted(
            xsorted.to_element(), BENCH_SPEC, depth_limit=1
        )
        rows.append(
            (
                nexsort_metrics.element_count,
                xsort_stats,
                xreport,
                nexsort_metrics,
                top_sorted,
                fully_sorted,
            )
        )
    return rows


def test_xsort_vs_nexsort(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    table = []
    for n, xsort_stats, xreport, nexsort_metrics, top, full in rows:
        table.append(
            [
                n,
                xsort_stats.total_ios,
                xsort_stats.elapsed_seconds(),
                nexsort_metrics.total_ios,
                nexsort_metrics.simulated_seconds,
                "yes" if top else "NO",
                "yes" if full else "no",
            ]
        )

    record_table(
        "XSort vs NEXSORT (related work, Section 2)",
        [
            "elements",
            "XSort I/Os",
            "XSort (s)",
            "NEXSORT I/Os",
            "NEXSORT (s)",
            "level-1 sorted",
            "fully sorted",
        ],
        table,
        notes=[
            "XSort sorts one level only: cheaper, but the output cannot "
            "feed a single-pass structural merge",
        ],
    )

    for _n, xsort_stats, _xr, nexsort_metrics, top, full in rows:
        assert xsort_stats.elapsed_seconds() < (
            nexsort_metrics.simulated_seconds
        )
        assert top  # the targeted level is sorted
        assert not full  # but deeper levels are not
