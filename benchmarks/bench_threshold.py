"""Experiment THR - effect of the sort threshold (paper Section 5).

The paper describes (results "not shown here due to space constraints")
a U-shaped curve: "When the threshold is small, there is a significant
amount of overhead caused by many small sorts.  When the threshold becomes
too large, performance begins to degrade because NEXSORT is sorting large
subtrees with multiple levels using external merge sort ... For the
following experiments, we set the threshold to be roughly twice the block
size, which works well for most inputs."

This bench regenerates that sweep and checks the U-shape and the sweet
spot's neighbourhood.
"""

from repro.bench import (
    BENCH_BLOCK_SIZE,
    bench_scale,
    record_table,
    run_nexsort,
)
from repro.generators import level_fanout_events

MEMORY_BLOCKS = 24

#: Thresholds as block-size multiples, half a block to 32 blocks.
THRESHOLD_MULTIPLIERS = [0.5, 1, 2, 4, 8, 16, 32]


def _events():
    deep = 5 if bench_scale() < 2 else 10
    return level_fanout_events([11, 11, 11, deep], seed=8, pad_bytes=24)


def _sweep():
    rows = []
    for multiplier in THRESHOLD_MULTIPLIERS:
        threshold = int(multiplier * BENCH_BLOCK_SIZE)
        metrics = run_nexsort(
            _events,
            memory_blocks=MEMORY_BLOCKS,
            threshold_bytes=threshold,
        )
        rows.append((multiplier, metrics))
    return rows


def test_threshold_sweep(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    table = []
    for multiplier, metrics in rows:
        table.append(
            [
                f"{multiplier}x block",
                metrics.detail["threshold_bytes"],
                metrics.simulated_seconds,
                metrics.total_ios,
                metrics.detail["x"],
                metrics.detail["external_sorts"],
            ]
        )
    times = {multiplier: m.simulated_seconds for multiplier, m in rows}
    best = min(times, key=times.get)

    record_table(
        "Effect of sort threshold (Section 5, curve described in text)",
        [
            "threshold",
            "bytes",
            "sim time (s)",
            "I/Os",
            "subtree sorts",
            "external sorts",
        ],
        table,
        notes=[
            f"best threshold in this sweep: {best}x block size "
            "(paper settled on ~2x block size)",
            "small thresholds: many small sorts; large thresholds: "
            "multi-level subtrees sorted externally",
        ],
    )

    # The U-shape: the best point is strictly inside the sweep, and both
    # extremes are worse than the best.
    assert times[best] < times[THRESHOLD_MULTIPLIERS[0]]
    assert times[best] < times[THRESHOLD_MULTIPLIERS[-1]]
    # The paper's choice (2x block) is within 40% of the sweep's best.
    assert times[2] <= 1.4 * times[best]
    # Larger thresholds mean fewer (but bigger) subtree sorts.
    sorts = [m.detail["x"] for _multiplier, m in rows]
    assert sorts == sorted(sorts, reverse=True)
