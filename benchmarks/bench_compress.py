"""Experiment CZ - compressed runs: ratio, crossover, pass reduction.

Three sweeps hold ISSUE 10's compression claims to numbers:

1. **Codec x memory** - the Figure-5 workload at 512-byte blocks, every
   codec (off / container / zlib) at three memory grants.  Run bytes
   must shrink by at least ``MIN_RATIO`` with the container codec, and
   the sorted output digest must be byte-identical to the uncompressed
   run at the same grant.
2. **CPU/IO crossover** - the same workload swept over block sizes.
   The per-block transfer charge is constant while codec CPU scales per
   raw byte, so compression's measured speedup shrinks as blocks grow;
   the planner's cost model extrapolates the sweep and names the block
   size where ``--plan auto`` stops choosing compression.
3. **Pass reduction** - ``--compress-capacity`` compresses the pending
   batch during run formation, so runs grow by the compression ratio
   and the merge tree loses a level: at the recorded grant the measured
   pass count drops and the Arge-Thorup depth bound, re-evaluated on
   the *compressed* run count, agrees that the saved pass is real.

Results land in ``BENCH_compress.json``.
"""

import hashlib
import json
from pathlib import Path

from repro.analysis import DocumentProfile, Planner, arge_thorup_merge_depth
from repro.baselines.merge_sort import external_merge_sort
from repro.bench import record_table, run_merge_sort, run_nexsort
from repro.bench.harness import load_document
from repro.generators import level_fanout_events
from repro.keys import ByAttribute, SortSpec
from repro.merge.engine import MergeOptions

_JSON_PATH = Path(__file__).parent / "BENCH_compress.json"

#: Acceptance floor for the container codec's run-byte reduction.
MIN_RATIO = 1.5

SPEC = SortSpec(default=ByAttribute("name"))

#: Measured encoded element size of the seed=5/pad=24 generator at
#: 512-byte blocks (shared with bench_planner / tests).
SMALL_BLOCK_ELEMENT_BYTES = 62.05

FIG5_SHAPE = [11, 11, 11, 5]
CODECS = (None, "container", "zlib")
MEMORY_GRANTS = (8, 16, 24)
CROSSOVER_BLOCKS = (512, 1024, 2048, 4096)
PLANNER_BLOCKS = (512, 4096, 16384, 65536)
CAPACITY_MEMORY = 12


def _fig5_events():
    return level_fanout_events(FIG5_SHAPE, seed=5, pad_bytes=24)


def _options(codec, capacity=False):
    if codec is None:
        return MergeOptions()
    return MergeOptions(compress=codec, compress_capacity=capacity)


def _digest(memory_blocks, merge_options, block_size=512):
    """Sorted-output digest of one merge-sort run (identity checks)."""
    document = load_document(_fig5_events(), block_size)
    output, report = external_merge_sort(
        document, SPEC, memory_blocks=memory_blocks,
        merge_options=merge_options,
    )
    return (
        hashlib.sha256(output.to_string().encode()).hexdigest(),
        report,
    )


def _codec_sweep():
    """Codec x memory grid; returns (rows, digest map)."""
    rows = []
    digests = {}
    for memory in MEMORY_GRANTS:
        for codec in CODECS:
            metrics = run_merge_sort(
                _fig5_events, memory, merge_options=_options(codec),
            )
            digest, _report = _digest(memory, _options(codec))
            digests[(memory, codec)] = digest
            rows.append({
                "memory_blocks": memory,
                "codec": codec or "off",
                "simulated_seconds": round(metrics.simulated_seconds, 6),
                "total_ios": metrics.total_ios,
                "compressed_bytes": metrics.detail["compressed_bytes"],
                "compression_ratio": metrics.detail["compression_ratio"],
                "passes": metrics.detail["passes"],
                "digest": digest[:12],
            })
    return rows, digests


def _crossover_sweep():
    """Measured on/off speedup per block size, plus the model's flip.

    The measured sweep stays where the document is comfortably external
    (small blocks); the planner's cost model - the thing ``--plan auto``
    consults - extends the curve to paper-scale blocks and reports the
    first size where compression stops being chosen.
    """
    rows = []
    for block_size in CROSSOVER_BLOCKS:
        off = run_nexsort(
            _fig5_events, 24, block_size=block_size,
            merge_options=_options(None),
        )
        on = run_nexsort(
            _fig5_events, 24, block_size=block_size,
            merge_options=_options("container"),
        )
        rows.append({
            "block_size": block_size,
            "seconds_off": round(off.simulated_seconds, 6),
            "seconds_on": round(on.simulated_seconds, 6),
            "speedup": round(
                off.simulated_seconds / on.simulated_seconds, 4
            ),
            "compression_ratio": on.detail["compression_ratio"],
        })

    picks = []
    crossover = None
    for block_size in PLANNER_BLOCKS:
        profile = DocumentProfile.from_fanouts(
            FIG5_SHAPE, block_size=block_size,
            element_bytes=SMALL_BLOCK_ELEMENT_BYTES,
        )
        planner = Planner(
            profile, memory_blocks=24, block_size=block_size
        )
        plan = planner.choose()
        chosen = plan.config.compress or "off"
        picks.append({"block_size": block_size, "compress": chosen})
        if crossover is None and chosen == "off":
            crossover = block_size
    return rows, picks, crossover


def _capacity_rows():
    """Pass-reduction evidence at the recorded grant, bound-checked."""
    rows = []
    for capacity in (False, True):
        options = _options("container" if capacity else None, capacity)
        digest, report = _digest(CAPACITY_MEMORY, options)
        per_block = max(
            1, report.element_count // max(1, report.input_blocks)
        )
        # The bound on the row's *actual* geometry: capacity compression
        # shrinks the initial run count (the "compressed N/B"), and the
        # depth bound re-evaluated on that run count is what certifies
        # the saved pass.
        depth_bound = arge_thorup_merge_depth(
            N=report.element_count,
            B=per_block,
            M=CAPACITY_MEMORY * per_block,
            fan_in=report.fan_in,
            initial_runs=report.initial_runs,
        )
        rows.append({
            "compress_capacity": capacity,
            "initial_runs": report.initial_runs,
            "fan_in": report.fan_in,
            "passes": report.total_passes,
            "merge_depth_bound": depth_bound,
            "simulated_seconds": round(report.simulated_seconds, 6),
            "digest": digest[:12],
        })
    return rows


def test_compression_ratio_crossover_and_pass_drop(benchmark):
    codec_rows, digests = benchmark.pedantic(
        _codec_sweep, rounds=1, iterations=1
    )
    crossover_rows, planner_picks, crossover_block = _crossover_sweep()
    capacity_rows = _capacity_rows()

    # -- claims ----------------------------------------------------------
    for memory in MEMORY_GRANTS:
        baseline = digests[(memory, None)]
        for codec in CODECS[1:]:
            assert digests[(memory, codec)] == baseline, (
                f"codec {codec} changed the sorted output at M={memory}"
            )
    container = [
        r for r in codec_rows if r["codec"] == "container"
    ]
    best_ratio = max(r["compression_ratio"] for r in container)
    assert best_ratio >= MIN_RATIO, (
        f"container codec only reached {best_ratio}x on Figure-5 input"
    )

    # The speedup curve is not strictly monotone (run counts and pass
    # boundaries shift with the block size), but compression must win
    # hardest at the smallest blocks - where transfer charges dominate
    # codec CPU - and still win everywhere in the measured range.
    speedups = [r["speedup"] for r in crossover_rows]
    assert speedups[0] == max(speedups), (
        f"expected the 512-byte row to lead the sweep: {speedups}"
    )
    assert min(speedups) > 1.0, (
        f"compression lost within the measured range: {speedups}"
    )
    assert crossover_block is not None, (
        "planner never flipped to compress=off within the swept range"
    )

    off_row, cap_row = capacity_rows
    assert off_row["digest"] == cap_row["digest"], (
        "capacity compression changed the sorted output"
    )
    assert cap_row["passes"] < off_row["passes"], (
        f"no pass drop at M={CAPACITY_MEMORY}: "
        f"{off_row['passes']} -> {cap_row['passes']}"
    )
    for row in capacity_rows:
        # passes = 1 formation pass + the merge-tree depth; the bound on
        # the row's actual (runs, fan-in) must agree exactly.
        assert row["passes"] == 1 + row["merge_depth_bound"], row

    # -- record ----------------------------------------------------------
    _JSON_PATH.write_text(
        json.dumps(
            {
                "experiment": "compressed_runs",
                "workload": f"level_fanout {FIG5_SHAPE} seed=5 pad=24",
                "min_ratio": MIN_RATIO,
                "codec_sweep": codec_rows,
                "crossover": {
                    "measured": crossover_rows,
                    "planner_picks": planner_picks,
                    "crossover_block_size": crossover_block,
                },
                "pass_reduction": {
                    "memory_blocks": CAPACITY_MEMORY,
                    "rows": capacity_rows,
                },
            },
            indent=2,
        )
        + "\n"
    )

    record_table(
        "Compressed runs (Figure-5 workload, 512-byte blocks)",
        ["memory", "codec", "simulated (s)", "ratio", "passes"],
        [
            [
                str(r["memory_blocks"]), r["codec"],
                f"{r['simulated_seconds']:.3f}",
                "-" if r["compression_ratio"] is None
                else f"{r['compression_ratio']:.2f}x",
                str(r["passes"]),
            ]
            for r in codec_rows
        ],
        notes=[
            f"container codec best ratio {best_ratio:.2f}x "
            f"(floor {MIN_RATIO}x); digests identical per grant",
            "crossover: speedup "
            + ", ".join(
                f"{r['speedup']:.2f}x@{r['block_size']}"
                for r in crossover_rows
            ),
            f"planner flips to compress=off at {crossover_block}-byte "
            f"blocks",
            f"capacity mode at M={CAPACITY_MEMORY}: "
            f"{off_row['initial_runs']} -> {cap_row['initial_runs']} runs, "
            f"{off_row['passes']} -> {cap_row['passes']} passes "
            f"(Arge-Thorup bound agrees)",
            f"full sweep written to {_JSON_PATH.name}",
        ],
    )
