"""Experiment RF - run formation & merge kernel: the engine knobs.

External merge sort is swept over the :class:`~repro.merge.engine.
MergeOptions` grid on the paper's two baseline workloads:

* Figure 5 shape ``[11, 11, 11, deep]`` (seed 5) - the memory-sweep
  document, here at the mid-range budget, to measure what the
  loser-tree kernel and embedded normalized keys do to CPU cost;
* Figure 6 largest shape ``[12, 85, 24]`` (seed 6) - the big flat-ish
  input where replacement selection's longer runs matter most.

Expectations checked at the end:

* replacement selection cuts the initial run count by >= 30% against
  load-sort formation on the Figure-6 workload (theory says ~2x longer
  runs on random input), and never increases merge-pass I/Os on any
  workload;
* the loser tree with embedded keys strictly lowers both counted key
  comparisons and simulated CPU seconds against the heap kernel on the
  Figure-5 workload (<= ceil(log2 k) comparisons per record versus the
  analytic heap charge).

Results land in ``BENCH_runformation.json`` next to this file so the
sweep can be diffed across revisions.
"""

import json
from pathlib import Path

from repro.bench import ascii_chart, bench_scale, record_table
from repro.bench.harness import run_merge_sort
from repro.generators import level_fanout_events
from repro.merge.engine import MergeOptions

MEMORY_BLOCKS = 24

_JSON_PATH = Path(__file__).parent / "BENCH_runformation.json"

#: The MergeOptions grid: both formation modes crossed with the heap
#: kernel, the loser tree, and the loser tree over embedded keys (the
#: embedded representation only pays off when merges compare bytes, so
#: heap+embedded is not an interesting point).
CONFIGS = [
    ("load-sort", "heap", False),
    ("load-sort", "loser-tree", False),
    ("load-sort", "loser-tree", True),
    ("replacement-selection", "heap", False),
    ("replacement-selection", "loser-tree", False),
    ("replacement-selection", "loser-tree", True),
]


def _fig5_events():
    deep = 5 if bench_scale() < 2 else 10
    return level_fanout_events([11, 11, 11, deep], seed=5, pad_bytes=24)


def _fig6_events():
    return level_fanout_events([12, 85, 24], seed=6, pad_bytes=24)


WORKLOADS = [
    ("fig5", "level_fanout [11,11,11,deep] seed=5", _fig5_events),
    ("fig6", "level_fanout [12,85,24] seed=6", _fig6_events),
]


def _merge_pass_ios(detail: dict) -> int:
    breakdown = detail["breakdown"]
    return sum(
        total
        for category, total in breakdown.items()
        if category.startswith("merge_")
    )


def _config_label(formation: str, kernel: str, embedded: bool) -> str:
    short = "RS" if formation == "replacement-selection" else "LS"
    tail = "+embed" if embedded else ""
    return f"{short}/{kernel}{tail}"


def _sweep():
    rows = []
    for workload, _desc, events in WORKLOADS:
        for formation, kernel, embedded in CONFIGS:
            options = MergeOptions(
                run_formation=formation,
                merge_kernel=kernel,
                embedded_keys=embedded,
            )
            metrics = run_merge_sort(
                events, memory_blocks=MEMORY_BLOCKS, merge_options=options
            )
            rows.append((workload, formation, kernel, embedded, metrics))
    return rows


def test_runformation_merge_kernel_sweep(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    table = []
    records = []
    by_key = {}
    for workload, formation, kernel, embedded, metrics in rows:
        detail = metrics.detail
        merge_ios = _merge_pass_ios(detail)
        by_key[(workload, formation, kernel, embedded)] = metrics
        table.append(
            [
                workload,
                _config_label(formation, kernel, embedded),
                detail["initial_runs"],
                f"{detail['avg_run_length']:.1f}",
                detail["max_run_length"],
                merge_ios,
                detail["comparisons"],
                f"{detail['cpu_seconds']:.4f}",
            ]
        )
        records.append(
            {
                "workload": workload,
                "run_formation": formation,
                "merge_kernel": kernel,
                "embedded_keys": embedded,
                "memory_blocks": MEMORY_BLOCKS,
                "initial_runs": detail["initial_runs"],
                "avg_run_length": round(detail["avg_run_length"], 2),
                "max_run_length": detail["max_run_length"],
                "merge_pass_ios": merge_ios,
                "total_ios": metrics.total_ios,
                "comparisons": detail["comparisons"],
                "merge_comparisons": detail["merge_comparisons"],
                "cpu_seconds": round(detail["cpu_seconds"], 6),
                "simulated_seconds": metrics.simulated_seconds,
                "phases": detail["phases"],
            }
        )

    _JSON_PATH.write_text(
        json.dumps(
            {
                "experiment": "runformation_merge_kernel_sweep",
                "workloads": {
                    name: desc for name, desc, _events in WORKLOADS
                },
                "memory_blocks": MEMORY_BLOCKS,
                "rows": records,
            },
            indent=2,
        )
        + "\n"
    )

    fig6_runs = {
        _config_label(f, k, e): by_key[
            ("fig6", f, k, e)
        ].detail["initial_runs"]
        for f, k, e in CONFIGS
    }
    record_table(
        "Run formation & merge kernel "
        f"(M = {MEMORY_BLOCKS} blocks)",
        [
            "workload",
            "config",
            "runs",
            "avg len",
            "max len",
            "merge I/Os",
            "comparisons",
            "cpu (s)",
        ],
        table,
        chart=ascii_chart(
            list(range(len(fig6_runs))),
            {"fig6 initial runs": list(fig6_runs.values())},
            y_label="initial runs per config (fig6)",
        ),
        notes=[
            "LS = load-sort formation, RS = replacement selection",
            "merge I/Os = merge_read + merge_write block accesses",
            f"full sweep written to {_JSON_PATH.name}",
        ],
    )

    # Replacement selection: >= 30% fewer initial runs on the big
    # Figure-6 input (compare like with like: same kernel/embedding).
    for kernel, embedded in {(k, e) for _f, k, e in CONFIGS}:
        load = by_key[("fig6", "load-sort", kernel, embedded)]
        rs = by_key[
            ("fig6", "replacement-selection", kernel, embedded)
        ]
        assert (
            rs.detail["initial_runs"]
            <= 0.7 * load.detail["initial_runs"]
        ), (kernel, embedded)

    # ... and never pays for it with extra merge-pass I/Os.
    for workload, _desc, _events in WORKLOADS:
        for kernel, embedded in {(k, e) for _f, k, e in CONFIGS}:
            load = by_key[(workload, "load-sort", kernel, embedded)]
            rs = by_key[
                (workload, "replacement-selection", kernel, embedded)
            ]
            assert _merge_pass_ios(rs.detail) <= _merge_pass_ios(
                load.detail
            ), (workload, kernel, embedded)

    # Loser tree over embedded keys: strictly cheaper CPU than the
    # heap kernel on the Figure-5 workload, for both formation modes.
    for formation in ("load-sort", "replacement-selection"):
        heap = by_key[("fig5", formation, "heap", False)]
        fast = by_key[("fig5", formation, "loser-tree", True)]
        assert (
            fast.detail["comparisons"] < heap.detail["comparisons"]
        ), formation
        assert (
            fast.detail["cpu_seconds"] < heap.detail["cpu_seconds"]
        ), formation
