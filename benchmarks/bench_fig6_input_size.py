"""Experiment F6 - Figure 6: effect of input size at constant max fan-out.

The paper fixes the maximum fan-out at 85 ("to ensure that the input
exhibits enough hierarchicalness"), fixes memory at 3 MB, and grows the
input from 33 MB to 7.9 GB: NEXSORT's time grows roughly *linearly*
(its log factor ``log_{M/B}(kt/B)`` is independent of N), while merge
sort grows *superlinearly*, jumping where the sort gains a pass.

Scaled geometry: max fan-out stays 85; document sizes sweep ~700-16k
elements at 16 blocks of memory, crossing merge sort's 2-pass/3-pass
boundary just as the paper's 1M-element input crossed its.
"""

from repro.bench import (
    ascii_chart,
    bench_scale,
    record_table,
    run_merge_sort,
    run_nexsort,
)
from repro.generators import level_fanout_events

#: Per-size shapes; every shape has maximum fan-out exactly 85, and the
#: paper's property that growing the input does not change the local
#: subtree geometry ("the maximum fan-out is capped ... to ensure that
#: the input exhibits enough hierarchicalness and does not become
#: array-like as it grows in size").
SIZE_SWEEP = [
    [85, 8],
    [85, 20],
    [85, 45],
    [85, 85],
    [6, 85, 24],
    [12, 85, 24],
]

MEMORY_BLOCKS = 24


def _events_factory(fanouts):
    def events():
        return level_fanout_events(fanouts, seed=6, pad_bytes=24)

    return events


def _sweep():
    rows = []
    sizes = list(SIZE_SWEEP)
    if bench_scale() >= 2:
        sizes.append([24, 85, 24])
    for fanouts in sizes:
        factory = _events_factory(fanouts)
        nexsort_metrics = run_nexsort(factory, memory_blocks=MEMORY_BLOCKS)
        merge_metrics = run_merge_sort(factory, memory_blocks=MEMORY_BLOCKS)
        rows.append((nexsort_metrics, merge_metrics))
    return rows


def test_fig6_effect_of_input_size(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    table = []
    for nexsort_metrics, merge_metrics in rows:
        table.append(
            [
                nexsort_metrics.element_count,
                nexsort_metrics.input_blocks,
                nexsort_metrics.simulated_seconds,
                merge_metrics.simulated_seconds,
                merge_metrics.detail["passes"],
                nexsort_metrics.simulated_seconds
                / nexsort_metrics.element_count
                * 1e3,
            ]
        )

    record_table(
        "Figure 6 - effect of input size (max fan-out fixed at 85)",
        [
            "elements",
            "blocks",
            "NEXSORT (s)",
            "merge sort (s)",
            "merge passes",
            "NEXSORT ms/elem",
        ],
        table,
        chart=ascii_chart(
            [m.element_count for m, _ in rows],
            {
                "NeXSort": [m.simulated_seconds for m, _ in rows],
                "Merge Sort": [
                    mm.simulated_seconds for _m, mm in rows
                ],
            },
            y_label="simulated sort time (s) vs document size (elements)",
        ),
        notes=[
            "paper: NEXSORT grows roughly linearly; merge sort "
            "superlinearly with jumps at pass transitions",
        ],
    )

    # NEXSORT linearity: doubling the input (same local geometry, the
    # last two sweep points) leaves the per-element rate flat.
    rates = [
        m.simulated_seconds / m.element_count for m, _ in rows
    ]
    assert 0.7 <= rates[-1] / rates[-2] <= 1.4, rates

    # Merge sort gains at least one pass across the sweep (the jump).
    passes = [mm.detail["passes"] for _, mm in rows]
    assert passes[-1] > passes[0], passes

    # NEXSORT wins at the largest size, where the extra pass bites.
    final_nexsort, final_merge = rows[-1]
    assert (
        final_nexsort.simulated_seconds < final_merge.simulated_seconds
    )
