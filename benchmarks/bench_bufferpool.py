"""Experiment BP - buffer pool: I/O saved per cached block.

The paper's numbers come from TPIE running over a real filesystem, which
always has a buffer cache between the algorithm and the disk; the model in
:mod:`repro.io.device` charges every access.  This experiment measures the
gap: the Figure-5 workload is sorted with a growing slice of *additional*
memory spent on the :class:`~repro.io.bufferpool.BufferPool`, from no cache
up to ``M/2`` blocks.

The cache is granted on top of ``M`` (``memory_blocks = M + cache``) so the
sorting phase sees the same effective memory at every point and the run
tree stays identical; the sweep isolates what caching alone buys.  The
``cache=0`` row therefore reproduces the paper-model I/O counts exactly.

Results also land in ``BENCH_bufferpool.json`` next to this file so the
sweep can be diffed across revisions.
"""

import json
from pathlib import Path

from repro.bench import (
    ascii_chart,
    bench_scale,
    record_table,
    run_nexsort,
)
from repro.generators import level_fanout_events

#: The model parameter M (blocks) the sort itself runs with.
BASE_MEMORY = 32

#: Cache sizes swept, in blocks on top of BASE_MEMORY: 0 .. M/2.
CACHE_SWEEP = [0, 2, 4, 8, 12, 16]

_JSON_PATH = Path(__file__).parent / "BENCH_bufferpool.json"


def _events():
    deep = 5 if bench_scale() < 2 else 10
    return level_fanout_events([11, 11, 11, deep], seed=5, pad_bytes=24)


def _sweep():
    rows = []
    for cache in CACHE_SWEEP:
        metrics = run_nexsort(
            _events,
            memory_blocks=BASE_MEMORY + cache,
            cache_blocks=cache,
        )
        rows.append((cache, metrics))
    return rows


def test_bufferpool_cache_sweep(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    table = []
    records = []
    for cache, metrics in rows:
        hits = metrics.detail["cache_hits"]
        misses = metrics.detail["cache_misses"]
        lookups = hits + misses
        hit_rate = hits / lookups if lookups else 0.0
        table.append(
            [
                cache,
                metrics.total_ios,
                metrics.detail["output_reads"],
                f"{hit_rate * 100:.0f}%",
                metrics.detail["cache_evictions"],
                metrics.simulated_seconds,
            ]
        )
        records.append(
            {
                "cache_blocks": cache,
                "memory_blocks": BASE_MEMORY + cache,
                "total_ios": metrics.total_ios,
                "output_reads": metrics.detail["output_reads"],
                "cache_hits": hits,
                "cache_misses": misses,
                "cache_evictions": metrics.detail["cache_evictions"],
                "hit_rate": round(hit_rate, 4),
                "simulated_seconds": metrics.simulated_seconds,
                "phases": metrics.detail["phases"],
            }
        )

    _JSON_PATH.write_text(
        json.dumps(
            {
                "experiment": "bufferpool_cache_sweep",
                "workload": "level_fanout [11,11,11,deep] seed=5 pad=24",
                "base_memory_blocks": BASE_MEMORY,
                "rows": records,
            },
            indent=2,
        )
        + "\n"
    )

    total_ios = [m.total_ios for _c, m in rows]
    record_table(
        "Buffer pool - I/O saved per cached block "
        f"(M = {BASE_MEMORY} blocks)",
        [
            "cache (blocks)",
            "total I/Os",
            "output reads",
            "hit rate",
            "evictions",
            "simulated (s)",
        ],
        table,
        chart=ascii_chart(
            CACHE_SWEEP,
            {"NEXSORT": total_ios},
            y_label="total I/Os vs cache blocks",
        ),
        notes=[
            "cache granted on top of M: the run tree is identical at "
            "every point, the delta is pure caching",
            "cache=0 is the paper model (no pool constructed at all)",
            f"full sweep written to {_JSON_PATH.name}",
        ],
    )

    baseline = total_ios[0]
    # Caching never costs I/Os, and by M/2 it saves a measurable slice.
    assert all(ios <= baseline for ios in total_ios)
    assert total_ios[-1] < baseline
