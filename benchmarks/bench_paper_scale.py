"""Experiment P - Figures 5-7 and Tables 1-2 at the paper's true scale.

The scaled-down benchmarks (``bench_fig5_memory``, ``bench_fig6_input_size``,
``bench_fig7_tree_shape``) reproduce the paper's *shapes* at 512-byte blocks
and a few thousand elements so they run in CI seconds.  This module re-runs
the same experiments at the paper's actual geometry - 64 KB blocks,
3-32 MB of sort memory, 10^5..10^7 elements, ~3M-element Table-2 documents -
under ``MergeOptions(kernel="columnar")``, which is what makes those sizes
practical in pure Python.

Two tiers:

* the fast tier (``test_paper_scale_fast_tier``) runs in CI: the trimmed
  Figure-5 point (10^5 elements), a scalar-vs-columnar counter-parity
  check at full paper geometry, a verbatim Table-1 regeneration, and a
  wall-time ceiling so a kernel regression that lands us back at scalar
  speeds fails the build;
* the slow tier (``-m slow``) regenerates Figure 5 (memory sweep at 10^6
  elements, plus the headline scalar-vs-columnar NEXSORT row whose
  >= 3x speedup is this PR's acceptance bar), Figure 6 (input sweep to
  10^7 elements), and Table 2 / Figure 7 (five ~3M-element shapes,
  heights 2-6, 4 MB of memory).

Every row lands in ``BENCH_paper_scale.json`` with wall clock, peak RSS,
the per-phase trace breakdown, and the host environment columns
(``python_version`` / ``numpy_version`` / ``platform``), merged in place
so fast- and slow-tier runs update their own rows without clobbering the
other tier's.  All figure-level assertions are on *simulated* metrics,
which are deterministic for a given geometry; only the speedup floor and
the CI ceiling measure the host.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import arge_thorup_merge_depth
from repro.baselines import key_path_table
from repro.bench import ascii_chart, load_document, record_table
from repro.bench.harness import run_merge_sort, run_nexsort
from repro.generators import (
    figure1_d1,
    figure1_spec,
    level_fanout_element_count,
    level_fanout_events,
    scaled_table2_shapes,
)
from repro.merge.engine import MergeOptions

BLOCK_SIZE = 65536

#: Figure 5: the paper sweeps sort memory from 3 MB to 32 MB.
FIG5_MEMORY_SWEEP = [48, 128, 256, 512]
FIG5_MEMORY = 48
FIG5_SHAPE = [11, 11, 11, 750]  # ~10^6 elements, the Figure-5 document
FIG5_FAST_SHAPE = [11, 11, 11, 75]  # ~10^5, the CI-sized point

#: Figure 6: input sizes 10^5..10^7 at constant max fan-out (85, the
#: paper's Table-2-style near-uniform deep level), M = 3 MB.
FIG6_MEMORY = 48
FIG6_SWEEP = [
    ("1e5", [85, 85, 14]),
    ("1e6", [12, 85, 85, 12]),
    ("1e7", [85, 85, 85, 16]),
]

#: Table 2 / Figure 7: five ~3M-element documents, heights 2-6, sorted
#: with 4 MB of memory (64 blocks of 64 KB).
FIG7_MEMORY = 64
FIG7_TARGET_ELEMENTS = 3_000_000

_JSON_PATH = Path(__file__).parent / "BENCH_paper_scale.json"

_COLUMNAR = MergeOptions(kernel="columnar")
_SCALAR = MergeOptions(kernel="scalar")

#: Paper Table 1 rows, asserted verbatim by the fast tier.
PAPER_TABLE1 = [
    ("/", "<company>"),
    ("/NE", '<region name="NE">'),
    ("/AC", '<region name="AC">'),
    ("/AC/Durham", '<branch name="Durham">'),
    ("/AC/Durham/454", '<employee ID="454">'),
    ("/AC/Durham/323", '<employee ID="323">'),
    ("/AC/Durham/323/name", "<name>Smith"),
    ("/AC/Durham/323/phone", "<phone>5552345"),
    ("/AC/Atlanta", '<branch name="Atlanta">'),
]


def _factory(fanouts, seed):
    def events():
        return level_fanout_events(fanouts, seed=seed, pad_bytes=24)

    return events


def _run(algorithm, fanouts, seed, memory_blocks, kernel="columnar",
         **options):
    runner = run_nexsort if algorithm == "nexsort" else run_merge_sort
    return runner(
        _factory(fanouts, seed),
        memory_blocks=memory_blocks,
        block_size=BLOCK_SIZE,
        merge_options=_COLUMNAR if kernel == "columnar" else _SCALAR,
        **options,
    )


def _counter_view(metrics):
    """Everything the kernel axis must leave bit-identical.

    Wall time and peak RSS measure the host, not the simulated sort;
    they are the only detail fields excluded (the environment columns
    are constant within one process, so they stay in).
    """
    detail = {
        key: value
        for key, value in metrics.detail.items()
        if key != "peak_rss_bytes"
    }
    return {
        "element_count": metrics.element_count,
        "input_blocks": metrics.input_blocks,
        "total_ios": metrics.total_ios,
        "simulated_seconds": metrics.simulated_seconds,
        "detail": detail,
    }


def _merge_depth_fields(metrics):
    """Empirical merge depth vs. the Arge-Thorup bound for a merge row.

    The empirical depth is the number of merge passes beyond run
    formation; the bound is ``ceil(log_f r)`` at the row's *recorded*
    fan-in and initial-run count, which that merger provably cannot
    beat.  ``_check_merge_depth`` fails the harness if any persisted
    row exceeds its bound (a wasted pass) or undercuts it (broken
    accounting).
    """
    if metrics.algorithm != "merge_sort":
        return {"merge_depth": None, "merge_depth_bound": None}
    detail = metrics.detail
    per_block = max(1, metrics.element_count // max(1, metrics.input_blocks))
    bound = arge_thorup_merge_depth(
        metrics.element_count,
        per_block,
        metrics.memory_blocks * per_block,
        fan_in=detail["fan_in"],
        initial_runs=detail["initial_runs"],
    )
    return {
        "merge_depth": detail["passes"] - 1,
        "merge_depth_bound": bound,
    }


def _check_merge_depth(rows):
    for row in rows:
        depth = row.get("merge_depth")
        bound = row.get("merge_depth_bound")
        if depth is None or bound is None:
            continue
        assert depth == bound, (
            f"{row['figure']}/{row['workload']} ({row['algorithm']}, "
            f"M={row['memory_blocks']}): empirical merge depth {depth} "
            f"!= Arge-Thorup bound {bound}"
        )


def _row(figure, workload, shape, metrics, kernel="columnar",
         flat_optimization=False, speedup=None):
    detail = metrics.detail
    return {
        **_merge_depth_fields(metrics),
        "figure": figure,
        "workload": workload,
        "shape": list(shape),
        "algorithm": metrics.algorithm,
        "kernel": kernel,
        "flat_optimization": flat_optimization,
        "element_count": metrics.element_count,
        "input_blocks": metrics.input_blocks,
        "block_size": BLOCK_SIZE,
        "memory_blocks": metrics.memory_blocks,
        "total_ios": metrics.total_ios,
        "simulated_seconds": metrics.simulated_seconds,
        "wall_seconds": round(metrics.wall_seconds, 3),
        "speedup_vs_scalar": (
            round(speedup, 2) if speedup is not None else None
        ),
        "peak_rss_bytes": detail.get("peak_rss_bytes"),
        "phases": detail.get("phases"),
        "python_version": detail.get("python_version"),
        "numpy_version": detail.get("numpy_version"),
        "platform": detail.get("platform"),
    }


def _row_key(row):
    return (
        row["figure"],
        row["workload"],
        row["algorithm"],
        row["kernel"],
        row["memory_blocks"],
        row["flat_optimization"],
    )


def _merge_rows(new_rows):
    """Replace matching rows in BENCH_paper_scale.json, keep the rest.

    Fast- and slow-tier runs each own a disjoint set of row keys, so
    either tier can re-run without erasing the other's results.
    """
    existing = []
    if _JSON_PATH.exists():
        existing = json.loads(_JSON_PATH.read_text()).get("rows", [])
    fresh_keys = {_row_key(row) for row in new_rows}
    rows = [row for row in existing if _row_key(row) not in fresh_keys]
    rows.extend(new_rows)
    rows.sort(key=_row_key)
    _check_merge_depth(rows)
    _JSON_PATH.write_text(
        json.dumps(
            {
                "experiment": "paper_scale_figures",
                "block_size": BLOCK_SIZE,
                "rows": rows,
            },
            indent=2,
        )
        + "\n"
    )


def test_paper_scale_fast_tier(benchmark):
    """CI tier: trimmed Figure-5 point + parity + Table 1, with a ceiling."""
    nex_columnar = benchmark.pedantic(
        lambda: _run("nexsort", FIG5_FAST_SHAPE, 5, FIG5_MEMORY),
        rounds=1,
        iterations=1,
    )
    nex_scalar = _run(
        "nexsort", FIG5_FAST_SHAPE, 5, FIG5_MEMORY, kernel="scalar"
    )
    merge_columnar = _run("merge_sort", FIG5_FAST_SHAPE, 5, FIG5_MEMORY)

    # The kernel axis changes nothing the simulator observes, at full
    # paper geometry (64 KB blocks, 3 MB of memory).
    assert _counter_view(nex_columnar) == _counter_view(nex_scalar)
    # The columnar kernel really ran its fast path: numpy present means
    # batch argsorts; either way the fused scan must hold the ceiling.
    speedup = nex_scalar.wall_seconds / nex_columnar.wall_seconds
    # Wall-time ceiling: at 10^5 elements the columnar run takes ~1-2 s
    # on an idle host.  60 s catches a fall-back-to-scalar regression
    # (scalar is ~4x slower and 10^6-sized CI documents would be ~40x)
    # without flaking on a loaded CI runner.
    assert nex_columnar.wall_seconds < 60.0, nex_columnar.wall_seconds
    assert merge_columnar.wall_seconds < 60.0, merge_columnar.wall_seconds

    # Table 1 regenerates verbatim (scale-independent, but this file is
    # the one-stop paper-scale golden set).
    table1 = key_path_table(load_document(figure1_d1().to_events()),
                            figure1_spec())
    assert table1 == PAPER_TABLE1

    _merge_rows(
        [
            _row("fig5-fast", "1e5", FIG5_FAST_SHAPE, nex_scalar,
                 kernel="scalar"),
            _row("fig5-fast", "1e5", FIG5_FAST_SHAPE, nex_columnar,
                 speedup=speedup),
            _row("fig5-fast", "1e5", FIG5_FAST_SHAPE, merge_columnar),
        ]
    )
    record_table(
        "Paper scale, fast tier (Figure-5 point at 10^5 elements)",
        ["algorithm", "kernel", "elements", "wall (s)", "speedup"],
        [
            ["nexsort", "scalar", f"{nex_scalar.element_count:,}",
             f"{nex_scalar.wall_seconds:.2f}", ""],
            ["nexsort", "columnar", f"{nex_columnar.element_count:,}",
             f"{nex_columnar.wall_seconds:.2f}", f"{speedup:.1f}x"],
            ["merge_sort", "columnar", f"{merge_columnar.element_count:,}",
             f"{merge_columnar.wall_seconds:.2f}", ""],
        ],
        notes=[
            "counters asserted bit-identical scalar vs columnar",
            "Table 1 regenerated verbatim",
            f"rows merged into {_JSON_PATH.name}",
        ],
    )


@pytest.mark.slow
def test_fig5_memory_paper_scale(benchmark):
    """Figure 5 at 10^6 elements: 3-32 MB memory sweep + headline speedup."""

    def sweep():
        rows = []
        for memory in FIG5_MEMORY_SWEEP:
            nex = _run("nexsort", FIG5_SHAPE, 5, memory)
            merge = _run("merge_sort", FIG5_SHAPE, 5, memory)
            rows.append((memory, nex, merge))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # The acceptance headline: NEXSORT proper, scalar vs columnar, at
    # the Figure-5 geometry (10^6 elements, M = 3 MB).
    nex_scalar = _run(
        "nexsort", FIG5_SHAPE, 5, FIG5_MEMORY, kernel="scalar"
    )
    nex_columnar = next(nex for memory, nex, _ in rows
                        if memory == FIG5_MEMORY)
    assert _counter_view(nex_columnar) == _counter_view(nex_scalar)
    speedup = nex_scalar.wall_seconds / nex_columnar.wall_seconds

    records = [
        _row("fig5", "1e6", FIG5_SHAPE, nex_scalar, kernel="scalar"),
    ]
    table = []
    nex_times = []
    merge_times = []
    for memory, nex, merge in rows:
        nex_times.append(nex.simulated_seconds)
        merge_times.append(merge.simulated_seconds)
        records.append(
            _row("fig5", "1e6", FIG5_SHAPE, nex,
                 speedup=speedup if memory == FIG5_MEMORY else None)
        )
        records.append(_row("fig5", "1e6", FIG5_SHAPE, merge))
        table.append(
            [
                f"{memory * BLOCK_SIZE // (1 << 20)} MB",
                f"{nex.simulated_seconds:.2f}",
                f"{merge.simulated_seconds:.2f}",
                f"{nex.wall_seconds:.1f}",
                f"{merge.wall_seconds:.1f}",
            ]
        )
    _merge_rows(records)

    record_table(
        "Figure 5 at paper scale (10^6 elements, 64 KB blocks)",
        ["memory", "NEXSORT sim (s)", "merge sim (s)",
         "NEXSORT wall (s)", "merge wall (s)"],
        table,
        chart=ascii_chart(
            [memory for memory, _, _ in rows],
            {"NeXSort": nex_times, "Merge Sort": merge_times},
            y_label="simulated sort time (s) vs memory blocks",
        ),
        notes=[
            f"nexsort scalar->columnar speedup at M=48: {speedup:.2f}x"
            " (acceptance floor 3.0x)",
            f"rows merged into {_JSON_PATH.name}",
        ],
    )

    # Paper: merge sort is 13-27% slower everywhere in the sweep, and
    # NEXSORT is nearly insensitive to the memory budget (deterministic
    # simulated metrics, so these cannot flake).
    for (memory, nex, merge), _ in zip(rows, FIG5_MEMORY_SWEEP):
        assert merge.simulated_seconds > nex.simulated_seconds, memory
    nex_spread = max(nex_times) - min(nex_times)
    merge_spread = max(merge_times) - min(merge_times)
    assert nex_spread <= merge_spread

    # This PR's acceptance bar: >= 3x over the scalar (PR 6) kernel at
    # Figure-5 geometry; measured ~4.3x on an idle host.
    assert speedup >= 3.0, speedup


@pytest.mark.slow
def test_fig6_input_size_paper_scale(benchmark):
    """Figure 6: 10^5 -> 10^7 elements at constant fan-out, M = 3 MB."""

    def sweep():
        rows = []
        for label, fanouts in FIG6_SWEEP:
            nex = _run("nexsort", fanouts, 6, FIG6_MEMORY)
            merge = _run("merge_sort", fanouts, 6, FIG6_MEMORY)
            rows.append((label, fanouts, nex, merge))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert rows[-1][2].element_count >= 10_000_000

    records = []
    table = []
    for label, fanouts, nex, merge in rows:
        records.append(_row("fig6", label, fanouts, nex))
        records.append(_row("fig6", label, fanouts, merge))
        table.append(
            [
                label,
                f"{nex.element_count:,}",
                f"{nex.simulated_seconds:.2f}",
                f"{merge.simulated_seconds:.2f}",
                f"{nex.wall_seconds:.1f}",
                f"{merge.wall_seconds:.1f}",
            ]
        )
    _merge_rows(records)

    record_table(
        "Figure 6 at paper scale (max fan-out 85, M = 3 MB)",
        ["size", "elements", "NEXSORT sim (s)", "merge sim (s)",
         "NEXSORT wall (s)", "merge wall (s)"],
        table,
        notes=[f"rows merged into {_JSON_PATH.name}"],
    )

    # Paper: NEXSORT scales linearly (flat per-element rate) while merge
    # sort gains passes; NEXSORT wins at the largest input.
    first, last = rows[0], rows[-1]
    nex_rate_first = first[2].simulated_seconds / first[2].element_count
    nex_rate_last = last[2].simulated_seconds / last[2].element_count
    assert 0.5 <= nex_rate_last / nex_rate_first <= 2.0
    assert last[2].simulated_seconds < last[3].simulated_seconds


@pytest.mark.slow
def test_fig7_tree_shape_paper_scale(benchmark):
    """Table 2 / Figure 7: five ~3M-element shapes, heights 2-6, 4 MB."""
    shapes = scaled_table2_shapes(FIG7_TARGET_ELEMENTS)

    def sweep():
        rows = []
        for height in sorted(shapes):
            fanouts = shapes[height]
            nex = _run("nexsort", fanouts, 7, FIG7_MEMORY)
            merge = _run("merge_sort", fanouts, 7, FIG7_MEMORY)
            rows.append((height, fanouts, nex, merge))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    records = []
    shape_table = []
    time_table = []
    for height, fanouts, nex, merge in rows:
        workload = f"height-{height}"
        records.append(_row("fig7", workload, fanouts, nex))
        records.append(_row("fig7", workload, fanouts, merge))
        shape_table.append(
            [height, ", ".join(str(f) for f in fanouts),
             f"{level_fanout_element_count(fanouts):,}"]
        )
        time_table.append(
            [height, nex.simulated_seconds, merge.simulated_seconds,
             nex.detail["max_fanout"], f"{nex.wall_seconds:.1f}"]
        )
    _merge_rows(records)

    record_table(
        "Table 2 at paper scale - input document shapes (~3M elements)",
        ["Height", "Fan-out for each level", "Size (elements)"],
        shape_table,
    )
    record_table(
        "Figure 7 at paper scale (4 MB of memory)",
        ["height", "NEXSORT sim (s)", "merge sim (s)", "max fan-out",
         "NEXSORT wall (s)"],
        time_table,
        chart=ascii_chart(
            [row[0] for row in time_table],
            {
                "NeXSort": [row[1] for row in time_table],
                "Merge Sort": [row[2] for row in time_table],
            },
            y_label="simulated sort time (s) vs tree height",
        ),
        notes=[f"rows merged into {_JSON_PATH.name}"],
    )

    by_height = {row[0]: row for row in time_table}
    # Height 2 (a flat file): plain NEXSORT loses to merge sort.
    assert by_height[2][1] > by_height[2][2]
    # Past the critical height, NEXSORT wins as max fan-out drops.
    assert by_height[5][1] < by_height[5][2]
    assert by_height[6][1] < by_height[6][2]
