"""Application bench - archiving versions with nested merge (§2).

"Our work complements theirs [Buneman et al.] by providing an
I/O-efficient sort that supports more scalable merge operations."  Each
new version costs one NEXSORT of the (small) version plus one single-pass
merge against the archive - so per-version cost tracks the *archive scan*,
not the total work redone from scratch.
"""

from repro.bench import bench_scale, record_table
from repro.generators import level_fanout_events
from repro.io import BlockDevice, RunStore
from repro.keys import ByAttributes, SortSpec
from repro.merge import XMLArchive
from repro.xml import Document


def _version_events(version: int):
    # Each version is a modest document sharing most structure with the
    # others (same seed family) but contributing some new elements.
    return level_fanout_events(
        [9, 9], seed=100 + version % 3, pad_bytes=16
    )


def _run():
    device = BlockDevice(block_size=512)
    store = RunStore(device)
    spec = SortSpec(default=ByAttributes(("name",)))
    archive = XMLArchive(spec, memory_blocks=16)

    versions = int(6 * bench_scale())
    rows = []
    for version in range(1, versions + 1):
        document = Document.from_events(store, _version_events(version))
        before = device.stats.snapshot()
        archive.add_version(document, version)
        delta = device.stats.since(before)
        rows.append(
            (
                version,
                document.element_count,
                archive.document.block_count,
                delta.total_ios,
                delta.elapsed_seconds(),
            )
        )
    before = device.stats.snapshot()
    snapshot = archive.snapshot(1)
    snapshot_ios = device.stats.since(before).total_ios
    return rows, snapshot_ios, snapshot.element_count


def test_archive_scalability(benchmark):
    rows, snapshot_ios, snapshot_elements = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )

    record_table(
        "Archiving versions with nested merge (related work, Section 2)",
        [
            "version",
            "version elements",
            "archive blocks",
            "add I/Os",
            "add (s)",
        ],
        [list(row) for row in rows],
        notes=[
            f"snapshot of version 1 afterwards: {snapshot_ios} I/Os, "
            f"{snapshot_elements} elements",
            "per-version cost tracks the archive scan (single-pass "
            "merge), not total work redone",
        ],
    )

    # Once the archive saturates (shared structure), per-version cost
    # stops growing: the last addition costs at most ~2x the second.
    assert rows[-1][3] <= 2.5 * rows[1][3]
    assert snapshot_elements > 0
