"""Experiment PL - the self-tuning planner vs. the empirical optimum.

Two sweeps hold ``--plan auto`` to its contract (pick within 5% of the
best measured configuration):

1. **Live sweep** - a small Figure-5-shaped document is profiled the
   way the CLI would, the planner ranks a candidate grid over the
   algorithm/formation/kernel/embedded-keys/cache axes, and every
   candidate is then actually run through the engine
   (:func:`repro.bench.run_config`).  The planner's first pick must
   measure within tolerance of the sweep's fastest row.
2. **Recorded sweeps** - the five recorded benchmark grids
   (bufferpool, runformation, kernel, striping, paper-scale fast tier)
   are replayed from their ``BENCH_*.json`` files: the planner ranks
   exactly the configs each sweep measured and its pick is compared
   against the recorded optimum.  This is the regression surface CI's
   ``planner-smoke`` job watches.

Results land in ``BENCH_planner.json``.
"""

import json
from pathlib import Path

from repro.analysis import DocumentProfile, PlanConfig, Planner, profile_document
from repro.bench import record_table, run_config
from repro.generators import level_fanout_events
from repro.io import BlockDevice, RunStore
from repro.xml import Document

_JSON_PATH = Path(__file__).parent / "BENCH_planner.json"
_BENCH_DIR = Path(__file__).parent

#: Acceptance tolerance: measured(pick) <= TOLERANCE * min(measured).
TOLERANCE = 1.05

#: Measured encoded element size of the seed=5/pad=24 generators at
#: 512-byte blocks (shared with tests/test_planner.py).
SMALL_BLOCK_ELEMENT_BYTES = 62.05

LIVE_SHAPE = [11, 11, 11, 5]
LIVE_MEMORY = 24
LIVE_BLOCK = 512


def _live_events():
    return level_fanout_events(LIVE_SHAPE, seed=5, pad_bytes=24)


def _live_profile():
    store = RunStore(BlockDevice(block_size=LIVE_BLOCK))
    document = Document.from_events(store, _live_events())
    return profile_document(document)


def _live_candidates():
    configs = []
    for algorithm in ("nexsort", "merge_sort"):
        for formation in ("load-sort", "replacement-selection"):
            for merge_kernel in ("heap", "loser-tree"):
                for embedded in (False, True):
                    configs.append(PlanConfig(
                        algorithm=algorithm,
                        memory_blocks=LIVE_MEMORY,
                        run_formation=formation,
                        merge_kernel=merge_kernel,
                        embedded_keys=embedded,
                    ))
    for cache in (2, 6):
        configs.append(PlanConfig(
            algorithm="nexsort",
            memory_blocks=LIVE_MEMORY,
            cache_blocks=cache,
        ))
    return configs


def _live_sweep():
    profile = _live_profile()
    planner = Planner(
        profile, memory_blocks=LIVE_MEMORY, block_size=LIVE_BLOCK
    )
    ranked = planner.rank(_live_candidates())
    rows = []
    for config, cost in ranked:
        metrics = run_config(_live_events, config, block_size=LIVE_BLOCK)
        rows.append((config, cost, metrics.simulated_seconds))
    return rows


def _config_label(config):
    parts = [config.algorithm]
    if config.cache_blocks:
        parts.append(f"cache={config.cache_blocks}")
    if config.run_formation != "load-sort":
        parts.append("rs")
    if config.merge_kernel != "heap":
        parts.append(config.merge_kernel)
    if config.embedded_keys:
        parts.append("embed")
    if config.disks > 1:
        parts.append(f"disks={config.disks}")
    return "/".join(parts)


def _recorded(name):
    path = _BENCH_DIR / f"BENCH_{name}.json"
    return json.loads(path.read_text()) if path.exists() else None


def _recorded_sweeps():
    """(sweep name, planner, {key: config}, {key: measured objective})."""
    sweeps = []

    data = _recorded("bufferpool")
    if data:
        profile = DocumentProfile.from_fanouts(
            [11, 11, 11, 5], block_size=512,
            element_bytes=SMALL_BLOCK_ELEMENT_BYTES,
        )
        planner = Planner(profile, memory_blocks=48, block_size=512)
        configs = {
            (r["memory_blocks"], r["cache_blocks"]): PlanConfig(
                algorithm="nexsort",
                memory_blocks=r["memory_blocks"],
                cache_blocks=r["cache_blocks"],
            )
            for r in data["rows"]
        }
        measured = {
            (r["memory_blocks"], r["cache_blocks"]): r["simulated_seconds"]
            for r in data["rows"]
        }
        sweeps.append(("bufferpool", planner, configs, measured))

    data = _recorded("runformation")
    if data:
        for workload, shape in (
            ("fig5", [11, 11, 11, 5]), ("fig6", [12, 85, 24]),
        ):
            profile = DocumentProfile.from_fanouts(
                shape, block_size=512,
                element_bytes=SMALL_BLOCK_ELEMENT_BYTES,
            )
            planner = Planner(profile, memory_blocks=24, block_size=512)
            rows = [
                r for r in data["rows"] if r["workload"] == workload
            ]
            configs = {
                (r["run_formation"], r["merge_kernel"],
                 r["embedded_keys"]): PlanConfig(
                    algorithm="merge_sort",
                    memory_blocks=24,
                    run_formation=r["run_formation"],
                    merge_kernel=r["merge_kernel"],
                    embedded_keys=r["embedded_keys"],
                )
                for r in rows
            }
            measured = {
                (r["run_formation"], r["merge_kernel"],
                 r["embedded_keys"]): r["simulated_seconds"]
                for r in rows
            }
            sweeps.append(
                (f"runformation/{workload}", planner, configs, measured)
            )

    data = _recorded("kernel")
    if data:
        rows = [
            r for r in data["rows"] if r["workload"] == "fig5-1e5"
        ]
        if rows:
            element_bytes = 65536 * 96 / rows[0]["element_count"]
            profile = DocumentProfile.from_fanouts(
                [11, 11, 11, 75], block_size=65536,
                element_bytes=element_bytes,
            )
            planner = Planner(
                profile, memory_blocks=48, block_size=65536
            )
            configs = {
                (r["algorithm"], r["kernel"]): PlanConfig(
                    algorithm=r["algorithm"],
                    memory_blocks=48,
                    kernel=r["kernel"],
                )
                for r in rows
            }
            measured = {
                (r["algorithm"], r["kernel"]): r["simulated_seconds"]
                for r in rows
            }
            sweeps.append(("kernel", planner, configs, measured))

    data = _recorded("striping")
    if data:
        profile = DocumentProfile.from_fanouts(
            [11, 11, 11, 5], block_size=512,
            element_bytes=SMALL_BLOCK_ELEMENT_BYTES,
        )
        planner = Planner(
            profile, memory_blocks=24, block_size=512, disks=8
        )
        # Striping trades total I/Os for parallel elapsed time, so the
        # measured objective is busiest-disk seconds - the planner's own.
        configs = {
            r["disks"]: PlanConfig(
                algorithm="nexsort",
                memory_blocks=24,
                disks=r["disks"],
                prefetch_depth=r["prefetch_depth"],
            )
            for r in data["disk_sweep"]
        }
        measured = {
            r["disks"]: r["disk_seconds"] for r in data["disk_sweep"]
        }
        sweeps.append(("striping", planner, configs, measured))

    data = _recorded("paper_scale")
    if data:
        rows = [
            r for r in data["rows"] if r["figure"] == "fig5-fast"
        ]
        if rows:
            element_bytes = (
                65536 * rows[0]["input_blocks"] / rows[0]["element_count"]
            )
            profile = DocumentProfile.from_fanouts(
                rows[0]["shape"], block_size=65536,
                element_bytes=element_bytes,
            )
            planner = Planner(
                profile, memory_blocks=48, block_size=65536
            )
            configs, measured = {}, {}
            for r in rows:
                key = r["algorithm"]
                if key in measured:
                    measured[key] = min(
                        measured[key], r["simulated_seconds"]
                    )
                    continue
                configs[key] = PlanConfig(
                    algorithm=r["algorithm"], memory_blocks=48
                )
                measured[key] = r["simulated_seconds"]
            sweeps.append(
                ("paper-scale-fast", planner, configs, measured)
            )

    return sweeps


def test_planner_tracks_empirical_optimum(benchmark):
    live_rows = benchmark.pedantic(_live_sweep, rounds=1, iterations=1)

    best_live = min(seconds for _c, _p, seconds in live_rows)
    pick_config, pick_cost, pick_seconds = live_rows[0]
    live_ratio = pick_seconds / best_live

    table = []
    live_records = []
    for config, cost, seconds in live_rows:
        table.append([
            _config_label(config),
            f"{cost.total_seconds:.4f}",
            f"{seconds:.4f}",
            f"{seconds / best_live:.3f}x",
        ])
        live_records.append({
            "config": _config_label(config),
            "predicted_seconds": round(cost.total_seconds, 6),
            "measured_seconds": round(seconds, 6),
            "ratio_to_best": round(seconds / best_live, 4),
        })

    recorded_records = []
    for name, planner, configs, measured in _recorded_sweeps():
        ranked = planner.rank(list(configs.values()))
        inverse = {cfg: key for key, cfg in configs.items()}
        pick = inverse[ranked[0][0]]
        best = min(measured.values())
        ratio = measured[pick] / best
        recorded_records.append({
            "sweep": name,
            "pick": _config_label(ranked[0][0]),
            "predicted_seconds": round(ranked[0][1].total_seconds, 6),
            "measured_seconds": round(measured[pick], 6),
            "best_measured_seconds": round(best, 6),
            "ratio_to_best": round(ratio, 4),
            "candidates": len(configs),
        })

    _JSON_PATH.write_text(
        json.dumps(
            {
                "experiment": "planner_self_tuning",
                "tolerance": TOLERANCE,
                "live": {
                    "workload": (
                        f"level_fanout {LIVE_SHAPE} seed=5 pad=24"
                    ),
                    "memory_blocks": LIVE_MEMORY,
                    "block_size": LIVE_BLOCK,
                    "pick": _config_label(pick_config),
                    "ratio_to_best": round(live_ratio, 4),
                    "rows": live_records,
                },
                "recorded": recorded_records,
            },
            indent=2,
        )
        + "\n"
    )

    record_table(
        "Planner vs. empirical optimum "
        f"(live sweep, M = {LIVE_MEMORY} blocks)",
        ["config (planner order)", "predicted (s)", "measured (s)",
         "vs best"],
        table,
        notes=[
            f"planner pick: {_config_label(pick_config)} at "
            f"{live_ratio:.3f}x the empirical best",
            *(
                f"recorded {r['sweep']}: pick {r['pick']} at "
                f"{r['ratio_to_best']:.3f}x best "
                f"({r['candidates']} candidates)"
                for r in recorded_records
            ),
            f"full sweep written to {_JSON_PATH.name}",
        ],
    )

    assert live_ratio <= TOLERANCE, (
        f"live sweep: planner picked {_config_label(pick_config)} at "
        f"{live_ratio:.3f}x the best measured config"
    )
    assert recorded_records, "no recorded BENCH grids found"
    for row in recorded_records:
        assert row["ratio_to_best"] <= TOLERANCE, (
            f"{row['sweep']}: planner pick {row['pick']} regressed to "
            f"{row['ratio_to_best']:.3f}x the recorded optimum"
        )
