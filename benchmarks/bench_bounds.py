"""Experiment LB - the Section 4 analysis against measured executions.

Checks, on real instrumented runs, that:

* measured NEXSORT I/Os stay within a small constant factor of the
  Theorem 4.5 upper bound (and never beat the Theorem 4.4 lower bound by
  more than the accounting slack);
* the outcome-counting argument (Lemmas 4.1-4.2) - the structured outcome
  space is exponentially smaller than the flat one;
* the analytic merge sort pass model matches the implementation.
"""

from repro.analysis import (
    ModelGeometry,
    log2_flat_outcomes,
    log2_max_outcomes,
    merge_sort_passes,
    nexsort_upper_bound_ios,
    sorting_lower_bound_ios,
)
from repro.bench import (
    load_document,
    record_table,
    run_merge_sort,
    run_nexsort,
)
from repro.generators import level_fanout_events

GEOMETRIES = [
    ("bushy h4", [11, 11, 11], 24),
    ("deep h5", [7, 7, 7, 7], 24),
    ("wide h3", [60, 40], 24),
    ("tight memory", [11, 11, 11], 8),
]


def _run_all():
    rows = []
    for label, fanouts, memory in GEOMETRIES:
        def events(fanouts=fanouts):
            return level_fanout_events(fanouts, seed=9, pad_bytes=24)

        document = load_document(events())
        geometry = ModelGeometry.from_document(document, memory)
        metrics = run_nexsort(events, memory_blocks=memory)
        merge_metrics = run_merge_sort(events, memory_blocks=memory)
        upper = nexsort_upper_bound_ios(
            geometry.N, geometry.B, geometry.M, geometry.k, 2 * geometry.B
        )
        lower = sorting_lower_bound_ios(
            geometry.N, geometry.B, geometry.M, geometry.k
        )
        predicted_passes = merge_sort_passes(
            geometry.N, geometry.B, geometry.M
        )
        rows.append(
            (
                label,
                geometry,
                metrics,
                merge_metrics,
                upper,
                lower,
                predicted_passes,
            )
        )
    return rows


def test_bounds_against_measurements(benchmark):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    table = []
    for label, geometry, metrics, merge_metrics, upper, lower, passes in rows:
        factor = metrics.total_ios / upper
        table.append(
            [
                label,
                geometry.N,
                geometry.k,
                f"{lower:.0f}",
                f"{upper:.0f}",
                metrics.total_ios,
                f"{factor:.1f}",
                merge_metrics.detail["passes"],
                passes,
            ]
        )

    record_table(
        "Theorem 4.4 / 4.5 - bounds vs measured I/Os",
        [
            "workload",
            "N",
            "k",
            "Thm4.4 lower",
            "Thm4.5 upper",
            "measured",
            "measured/upper",
            "merge passes",
            "model passes",
        ],
        table,
        notes=[
            "bounds carry constants 1; a bounded measured/upper factor "
            "across geometries is the Theorem 4.5 claim",
        ],
    )

    for label, geometry, metrics, merge_metrics, upper, lower, passes in rows:
        # Within a fixed constant of the upper bound, for every geometry.
        assert metrics.total_ios <= 16 * upper, label
        # Never below the lower bound (sanity on the accounting).
        assert metrics.total_ios >= lower, label
        # The analytic pass model tracks the implementation.
        assert abs(merge_metrics.detail["passes"] - passes) <= 1, label


def test_outcome_counting_shrinks_with_structure(benchmark):
    def compute():
        rows = []
        for n, k in ((1000, 5), (1000, 50), (10000, 5), (10000, 500)):
            structured = log2_max_outcomes(n, k)
            flat = log2_flat_outcomes(n)
            rows.append((n, k, structured, flat, flat / structured))
        return rows

    rows = benchmark(compute)
    record_table(
        "Lemmas 4.1-4.2 - sorting outcome space, structured vs flat",
        ["N", "k", "log2 outcomes (XML)", "log2 outcomes (flat)", "ratio"],
        [[n, k, f"{s:.0f}", f"{f:.0f}", f"{r:.1f}x"] for n, k, s, f, r in rows],
        notes=[
            "the hierarchy's constraint is why XML sorting is "
            "fundamentally easier than flat sorting (Theorem 4.4)",
        ],
    )
    for _n, _k, structured, flat, _ratio in rows:
        assert structured < flat
