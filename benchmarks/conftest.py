"""Benchmark-suite plumbing: print recorded result tables at the end."""

from repro.bench import drain_reports


def pytest_terminal_summary(terminalreporter):
    reports = drain_reports()
    if not reports:
        return
    terminalreporter.section("paper reproduction results")
    for report in reports:
        terminalreporter.write_line("")
        terminalreporter.write_line(report.render())
