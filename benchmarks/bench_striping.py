"""Experiment PD - parallel-disk striping and forecast-driven prefetch.

The paper's experiments run on one disk; :mod:`repro.io.parallel` extends
the cost model to Vitter's parallel-disk setting.  This experiment shows
the two headline effects on the Figure-5 workload:

* **Striping**: the same sort issues the same I/Os on ``D`` disks, but the
  *disk time* (the busiest disk's clock, which bounds wall time once I/O
  overlaps with compute) falls as ``D`` grows.  A 1-disk stripe reproduces
  the serial goldens bit for bit - counters, model seconds, and breakdown.
* **Forecasting**: during a loser-tree merge, prefetching the next block
  of the run whose head key is smallest (the run that drains first) cuts
  consumer stall more than naive round-robin prefetch does, with counters
  identical in all three configurations - prefetch only reorders reads.

Results land in ``BENCH_striping.json`` next to this file; CI's striping
smoke job re-checks the D=1 golden match and the D=4 improvement.
"""

import json
from pathlib import Path

from repro.bench import ascii_chart, bench_scale, record_table
from repro.bench.harness import run_merge_sort, run_nexsort
from repro.generators import level_fanout_events
from repro.merge.engine import MergeOptions

#: Memory for the NEXSORT striping sweep (the Figure-5 mid-range point).
MEMORY_BLOCKS = 24

#: Disk counts swept; D=1 must reproduce the serial device exactly.
DISK_SWEEP = [1, 2, 4, 8]

#: Memory for the prefetch comparison: small enough that the final merge
#: is wide and the merge phase dominates, so stall differences are large.
PREFETCH_MEMORY = 16

#: Disks and window depth for the prefetch-policy comparison.
PREFETCH_DISKS = 4
PREFETCH_DEPTH = 8

_JSON_PATH = Path(__file__).parent / "BENCH_striping.json"


def _events():
    deep = 5 if bench_scale() < 2 else 10
    return level_fanout_events([11, 11, 11, deep], seed=5, pad_bytes=24)


def _run_all():
    golden = run_nexsort(_events, memory_blocks=MEMORY_BLOCKS)
    sweep = [
        (
            disks,
            run_nexsort(_events, memory_blocks=MEMORY_BLOCKS, disks=disks),
        )
        for disks in DISK_SWEEP
    ]

    options = MergeOptions(merge_kernel="loser-tree", embedded_keys=True)
    policies = {}
    for name, depth, policy in (
        ("off", 0, "forecast"),
        ("round-robin", PREFETCH_DEPTH, "round-robin"),
        ("forecast", PREFETCH_DEPTH, "forecast"),
    ):
        policies[name] = run_merge_sort(
            _events,
            memory_blocks=PREFETCH_MEMORY,
            merge_options=options,
            disks=PREFETCH_DISKS,
            prefetch_depth=depth,
            prefetch_policy=policy,
        )
    return golden, sweep, policies


def _row_record(metrics) -> dict:
    return {
        "disks": metrics.detail["disks"],
        "prefetch_depth": metrics.detail["prefetch_depth"],
        "total_ios": metrics.total_ios,
        "simulated_seconds": metrics.simulated_seconds,
        "disk_seconds": round(metrics.detail["disk_seconds"], 6),
        "overlap_seconds": round(metrics.detail["overlap_seconds"], 6),
        "stall_seconds": round(metrics.detail["stall_seconds"], 6),
        "disk_utilization": metrics.detail["disk_utilization"],
        "breakdown": metrics.detail["breakdown"],
        "phases": metrics.detail["phases"],
    }


def test_striping_and_prefetch(benchmark):
    golden, sweep, policies = benchmark.pedantic(
        _run_all, rounds=1, iterations=1
    )

    # --- striping sweep table ------------------------------------------
    table = []
    for disks, metrics in sweep:
        utilization = metrics.detail["disk_utilization"]
        mean_util = (
            sum(float(u) for u in utilization.values()) / len(utilization)
            if utilization
            else 1.0
        )
        table.append(
            [
                disks,
                metrics.total_ios,
                f"{metrics.detail['disk_seconds']:.3f}",
                f"{metrics.detail['overlap_seconds']:.3f}",
                f"{mean_util * 100:.0f}%",
                metrics.simulated_seconds,
            ]
        )

    disk_seconds = [m.detail["disk_seconds"] for _d, m in sweep]
    record_table(
        f"Parallel-disk striping sweep (M = {MEMORY_BLOCKS} blocks, "
        "Figure-5 workload)",
        [
            "disks",
            "total I/Os",
            "disk time (s)",
            "overlap (s)",
            "mean util",
            "model (s)",
        ],
        table,
        chart=ascii_chart(
            DISK_SWEEP,
            {"NEXSORT": disk_seconds},
            y_label="disk time (s) vs disks",
        ),
        notes=[
            "disk time = busiest disk's busy clock; model (s) keeps the "
            "serial single-disk formula for golden comparability",
            "D=1 reproduces the serial device bit for bit",
        ],
    )

    # --- prefetch policy table -----------------------------------------
    record_table(
        f"Forecast prefetch in the final merge (D = {PREFETCH_DISKS}, "
        f"depth = {PREFETCH_DEPTH}, M = {PREFETCH_MEMORY} blocks, "
        "loser-tree mergesort)",
        ["policy", "total I/Os", "merge stall (s)", "disk time (s)"],
        [
            [
                name,
                metrics.total_ios,
                f"{metrics.detail['stall_seconds']:.3f}",
                f"{metrics.detail['disk_seconds']:.3f}",
            ]
            for name, metrics in policies.items()
        ],
        notes=[
            "identical I/O counters in all three rows: prefetch only "
            "reorders the reads the merge was about to issue",
            "forecast = smallest merge head key first (Knuth 5.4.9)",
        ],
    )

    _JSON_PATH.write_text(
        json.dumps(
            {
                "experiment": "striping_and_prefetch",
                "workload": "level_fanout [11,11,11,deep] seed=5 pad=24",
                "memory_blocks": MEMORY_BLOCKS,
                "golden": {
                    "total_ios": golden.total_ios,
                    "simulated_seconds": golden.simulated_seconds,
                    "breakdown": golden.detail["breakdown"],
                },
                "disk_sweep": [_row_record(m) for _d, m in sweep],
                "prefetch": {
                    "memory_blocks": PREFETCH_MEMORY,
                    "disks": PREFETCH_DISKS,
                    "depth": PREFETCH_DEPTH,
                    "rows": {
                        name: _row_record(m) for name, m in policies.items()
                    },
                },
            },
            indent=2,
        )
        + "\n"
    )

    # D=1 stripe is bit-identical to the serial golden.
    one_disk = sweep[0][1]
    assert sweep[0][0] == 1
    assert one_disk.total_ios == golden.total_ios
    assert one_disk.simulated_seconds == golden.simulated_seconds
    assert one_disk.detail["breakdown"] == golden.detail["breakdown"]

    # Every stripe width issues the same I/Os; disk time strictly falls.
    assert all(m.total_ios == golden.total_ios for _d, m in sweep)
    assert all(
        later < earlier
        for earlier, later in zip(disk_seconds, disk_seconds[1:])
    )

    # Prefetch keeps counters identical and forecasting beats round-robin.
    off, rr, fc = (
        policies["off"],
        policies["round-robin"],
        policies["forecast"],
    )
    assert off.total_ios == rr.total_ios == fc.total_ios
    assert (
        off.detail["breakdown"]
        == rr.detail["breakdown"]
        == fc.detail["breakdown"]
    )
    assert fc.detail["stall_seconds"] < rr.detail["stall_seconds"]
    assert rr.detail["stall_seconds"] < off.detail["stall_seconds"]
