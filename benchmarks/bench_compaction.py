"""Ablation - the Section 3.2 XML compaction techniques.

The paper implements "compression of tag names and elimination of end
tags, for both NEXSORT and external merge sort".  This ablation measures
what the techniques buy: stored document size and end-to-end sort cost,
for both algorithms, with compaction on and off.
"""

from repro.bench import (
    load_document,
    record_table,
    run_merge_sort,
    run_nexsort,
)
from repro.generators import level_fanout_events
from repro.xml import CompactionConfig

MEMORY_BLOCKS = 24


def _events():
    return level_fanout_events([11, 11, 11, 5], seed=10, pad_bytes=24)


def _run_all():
    plain_doc = load_document(_events())
    compact_doc = load_document(_events(), compaction=CompactionConfig())
    results = {
        "doc_plain_blocks": plain_doc.block_count,
        "doc_compact_blocks": compact_doc.block_count,
        "nexsort_plain": run_nexsort(_events, MEMORY_BLOCKS),
        "nexsort_compact": run_nexsort(
            _events, MEMORY_BLOCKS, compaction=CompactionConfig()
        ),
        "merge_plain": run_merge_sort(_events, MEMORY_BLOCKS),
        "merge_compact": run_merge_sort(
            _events, MEMORY_BLOCKS, compaction=CompactionConfig()
        ),
    }
    return results


def test_compaction_ablation(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    rows = []
    for algorithm in ("nexsort", "merge"):
        plain = results[f"{algorithm}_plain"]
        compact = results[f"{algorithm}_compact"]
        rows.append(
            [
                algorithm,
                plain.total_ios,
                compact.total_ios,
                f"{(1 - compact.total_ios / plain.total_ios) * 100:.0f}%",
                plain.simulated_seconds,
                compact.simulated_seconds,
            ]
        )

    saved = 1 - results["doc_compact_blocks"] / results["doc_plain_blocks"]
    record_table(
        "Section 3.2 compaction ablation (name dictionary + end-tag "
        "elimination)",
        [
            "algorithm",
            "plain I/Os",
            "compact I/Os",
            "I/O saved",
            "plain (s)",
            "compact (s)",
        ],
        rows,
        notes=[
            f"stored document shrinks {saved * 100:.0f}% "
            f"({results['doc_plain_blocks']} -> "
            f"{results['doc_compact_blocks']} blocks)",
            "the paper enabled these techniques for both algorithms in "
            "all experiments",
        ],
    )

    assert results["doc_compact_blocks"] < results["doc_plain_blocks"]
    for algorithm in ("nexsort", "merge"):
        plain = results[f"{algorithm}_plain"]
        compact = results[f"{algorithm}_compact"]
        assert compact.total_ios < plain.total_ios, algorithm
        assert compact.simulated_seconds < plain.simulated_seconds
