"""Experiment K - the batch-columnar kernel at the paper's real scale.

External merge sort is run twice per workload - ``kernel="scalar"``
versus ``kernel="columnar"`` - on the Figure-5 document shape
``[11, 11, 11, deep]`` (seed 5) at the paper's device geometry: 64 KB
blocks and a 3 MB sort budget (48 blocks), the low end of NEXSORT's
3-32 MB memory sweep.  ``deep`` scales the element count: 75 for 10^5,
750 for 10^6, and 7515 for the 10^7 run (the latter columnar-only
behind the ``slow`` marker - run it with ``pytest
benchmarks/bench_kernel.py -m slow`` - since the scalar kernel would
need ~10 minutes for it).

What this pins down:

* the kernel axis changes *nothing* the simulator can observe - every
  row pair is checked for bit-identical I/O counters, comparison
  charges, token counts, and per-phase breakdown (wall time and RSS are
  the only fields allowed to differ);
* the columnar kernel's wall-clock win at the paper's scale: >= 6x
  over scalar at 10^6 elements is asserted (the measured ratio - about
  10x on an idle machine - lands in the JSON; the assertion floor is
  deliberately below it so machine noise cannot flake the suite);
* 10^7 elements is practical in this simulator: the slow row records
  the columnar wall time and peak RSS at NEXSORT's headline input
  size.

Results land in ``BENCH_kernel.json`` next to this file so the numbers
can be diffed across revisions; the slow run updates its row in place.
"""

import json
from pathlib import Path

import pytest

from repro.bench import record_table
from repro.bench.harness import run_merge_sort, run_nexsort
from repro.generators import level_fanout_events
from repro.merge.engine import MergeOptions

BLOCK_SIZE = 65536
MEMORY_BLOCKS = 48

_JSON_PATH = Path(__file__).parent / "BENCH_kernel.json"

#: Figure-5 shapes: deep fanout -> rough element count.
SCALES = [
    ("1e5", 75),
    ("1e6", 750),
]
# 1331 deep lists x 7515 + 1464 interior elements > 10^7.
SLOW_SCALE = ("1e7", 7515)


def _fig5_factory(deep):
    def events():
        return level_fanout_events(
            [11, 11, 11, deep], seed=5, pad_bytes=24
        )

    return events


def _run(algorithm, deep, kernel):
    runner = run_nexsort if algorithm == "nexsort" else run_merge_sort
    return runner(
        _fig5_factory(deep),
        memory_blocks=MEMORY_BLOCKS,
        block_size=BLOCK_SIZE,
        merge_options=MergeOptions(kernel=kernel),
    )


def _counter_view(metrics):
    """Everything the kernel axis must leave bit-identical.

    Wall time and peak RSS are measurements of the host, not of the
    simulated sort; they are the only detail fields excluded.
    """
    detail = {
        key: value
        for key, value in metrics.detail.items()
        if key != "peak_rss_bytes"
    }
    return {
        "element_count": metrics.element_count,
        "input_blocks": metrics.input_blocks,
        "total_ios": metrics.total_ios,
        "simulated_seconds": metrics.simulated_seconds,
        "detail": detail,
    }


def _row(label, algorithm, deep, kernel, metrics, speedup=None):
    return {
        "workload": f"fig5-{label}",
        "algorithm": algorithm,
        "kernel": kernel,
        "deep_fanout": deep,
        "element_count": metrics.element_count,
        "block_size": BLOCK_SIZE,
        "memory_blocks": MEMORY_BLOCKS,
        "total_ios": metrics.total_ios,
        "simulated_seconds": metrics.simulated_seconds,
        "wall_seconds": round(metrics.wall_seconds, 3),
        "speedup_vs_scalar": (
            round(speedup, 2) if speedup is not None else None
        ),
        "peak_rss_bytes": metrics.detail.get("peak_rss_bytes"),
    }


def _write_json(records):
    _JSON_PATH.write_text(
        json.dumps(
            {
                "experiment": "columnar_kernel_paper_scale",
                "workload": "level_fanout [11,11,11,deep] seed=5",
                "block_size": BLOCK_SIZE,
                "memory_blocks": MEMORY_BLOCKS,
                "rows": records,
            },
            indent=2,
        )
        + "\n"
    )


def _sweep():
    rows = []
    for label, deep in SCALES:
        columnar = _run("merge_sort", deep, "columnar")
        scalar = _run("merge_sort", deep, "scalar")
        rows.append((label, deep, scalar, columnar))
    return rows


def test_kernel_speedup_paper_scale(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    # NEXSORT itself over the kernel axis at 10^5: the kernel contract
    # holds for the paper's algorithm, not just the baseline sorter.
    nex_columnar = _run("nexsort", SCALES[0][1], "columnar")
    nex_scalar = _run("nexsort", SCALES[0][1], "scalar")
    assert _counter_view(nex_columnar) == _counter_view(nex_scalar)

    table = []
    records = []
    speedups = {}
    for label, deep, scalar, columnar in rows:
        assert _counter_view(columnar) == _counter_view(scalar), label
        speedup = scalar.wall_seconds / columnar.wall_seconds
        speedups[label] = speedup
        records.append(_row(label, "merge_sort", deep, "scalar", scalar))
        records.append(
            _row(
                label, "merge_sort", deep, "columnar", columnar,
                speedup=speedup,
            )
        )
        table.append(
            [
                f"fig5-{label}",
                f"{columnar.element_count:,}",
                columnar.total_ios,
                f"{scalar.wall_seconds:.2f}",
                f"{columnar.wall_seconds:.2f}",
                f"{speedup:.1f}x",
            ]
        )
    records.append(
        _row(
            SCALES[0][0], "nexsort", SCALES[0][1], "scalar", nex_scalar
        )
    )
    records.append(
        _row(
            SCALES[0][0],
            "nexsort",
            SCALES[0][1],
            "columnar",
            nex_columnar,
            speedup=nex_scalar.wall_seconds / nex_columnar.wall_seconds,
        )
    )
    _write_json(records)

    record_table(
        "Columnar kernel at paper geometry "
        f"(64 KB blocks, M = {MEMORY_BLOCKS} blocks = 3 MB)",
        [
            "workload",
            "elements",
            "total I/Os",
            "scalar (s)",
            "columnar (s)",
            "speedup",
        ],
        table,
        notes=[
            "counters, charges, and phase breakdowns asserted"
            " bit-identical per pair",
            "peak_rss_bytes is the process-lifetime ru_maxrss, so"
            " later rows inherit earlier peaks",
            "10^7 columnar row: pytest benchmarks/bench_kernel.py -m slow",
            f"full sweep written to {_JSON_PATH.name}",
        ],
    )

    # The acceptance ratio is ~10x on an idle machine; assert a floor
    # with headroom for timer noise on loaded CI hosts.
    assert speedups["1e6"] >= 6.0, speedups


@pytest.mark.slow
def test_kernel_paper_headline_scale(benchmark):
    label, deep = SLOW_SCALE
    columnar = benchmark.pedantic(
        lambda: _run("merge_sort", deep, "columnar"),
        rounds=1,
        iterations=1,
    )
    assert columnar.element_count >= 10_000_000

    row = _row(label, "merge_sort", deep, "columnar", columnar)
    if _JSON_PATH.exists():
        payload = json.loads(_JSON_PATH.read_text())
        rows = [
            existing
            for existing in payload.get("rows", [])
            if not (
                existing["workload"] == row["workload"]
                and existing["kernel"] == "columnar"
                and existing["algorithm"] == "merge_sort"
            )
        ]
        rows.append(row)
        _write_json(rows)
    else:
        _write_json([row])

    record_table(
        "Columnar kernel, NEXSORT headline input size (10^7 elements)",
        ["workload", "elements", "total I/Os", "columnar (s)"],
        [
            [
                f"fig5-{label}",
                f"{columnar.element_count:,}",
                columnar.total_ios,
                f"{columnar.wall_seconds:.2f}",
            ]
        ],
        notes=[f"row merged into {_JSON_PATH.name}"],
    )
