"""Merging sorted XML documents: the application NEXSORT enables."""

from .archive import VERSIONS_ATTRIBUTE, XMLArchive
from .dedup import DedupReport, deduplicate
from .kway import KWayMerger, KWayMergeReport, kway_merge
from .batch import BatchApplier, BatchReport, apply_batch
from .nested_loop import (
    NestedLoopMerger,
    NestedLoopReport,
    nested_loop_merge,
)
from .order_preserving import (
    OrderPreservingReport,
    annotate_sequence_numbers,
    merge_preserving_order,
    strip_sequence_numbers,
)
from .structural import MergeReport, StructuralMerger, structural_merge

__all__ = [
    "BatchApplier",
    "BatchReport",
    "DedupReport",
    "KWayMergeReport",
    "KWayMerger",
    "deduplicate",
    "kway_merge",
    "MergeReport",
    "NestedLoopMerger",
    "NestedLoopReport",
    "OrderPreservingReport",
    "StructuralMerger",
    "VERSIONS_ATTRIBUTE",
    "XMLArchive",
    "annotate_sequence_numbers",
    "apply_batch",
    "merge_preserving_order",
    "nested_loop_merge",
    "strip_sequence_numbers",
    "structural_merge",
]
