"""Merging sorted XML documents, and the run-formation/merge engine.

The engine (:mod:`repro.merge.engine`) is imported eagerly - it is a leaf
module that the low-level merge machinery in :mod:`repro.baselines.merging`
depends on.  The document-merging applications (archive, dedup, k-way,
batch...) sit *above* the core algorithms in the dependency graph, so they
are loaded lazily on first attribute access; importing them eagerly here
would close an import cycle (baselines -> merge -> archive -> core ->
baselines).
"""

from .engine import (
    DEFAULT_MERGE_OPTIONS,
    LoserTree,
    MERGE_KERNELS,
    MergeOptions,
    RUN_FORMATION_MODES,
    RunFormer,
    embed_key,
    embedded_key_of,
    normalized_component_key,
    normalized_path_key,
    sort_with_accounting,
    strip_embedded_key,
)

#: name -> (submodule, attribute) for lazily exported symbols.
_LAZY = {
    "VERSIONS_ATTRIBUTE": ("archive", "VERSIONS_ATTRIBUTE"),
    "XMLArchive": ("archive", "XMLArchive"),
    "DedupReport": ("dedup", "DedupReport"),
    "deduplicate": ("dedup", "deduplicate"),
    "KWayMerger": ("kway", "KWayMerger"),
    "KWayMergeReport": ("kway", "KWayMergeReport"),
    "kway_merge": ("kway", "kway_merge"),
    "BatchApplier": ("batch", "BatchApplier"),
    "BatchReport": ("batch", "BatchReport"),
    "apply_batch": ("batch", "apply_batch"),
    "NestedLoopMerger": ("nested_loop", "NestedLoopMerger"),
    "NestedLoopReport": ("nested_loop", "NestedLoopReport"),
    "nested_loop_merge": ("nested_loop", "nested_loop_merge"),
    "OrderPreservingReport": ("order_preserving", "OrderPreservingReport"),
    "annotate_sequence_numbers": (
        "order_preserving",
        "annotate_sequence_numbers",
    ),
    "merge_preserving_order": ("order_preserving", "merge_preserving_order"),
    "strip_sequence_numbers": ("order_preserving", "strip_sequence_numbers"),
    "MergeReport": ("structural", "MergeReport"),
    "StructuralMerger": ("structural", "StructuralMerger"),
    "structural_merge": ("structural", "structural_merge"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    from importlib import import_module

    value = getattr(import_module(f".{module_name}", __name__), attr)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))


__all__ = [
    "BatchApplier",
    "BatchReport",
    "DEFAULT_MERGE_OPTIONS",
    "DedupReport",
    "KWayMergeReport",
    "KWayMerger",
    "LoserTree",
    "MERGE_KERNELS",
    "MergeOptions",
    "MergeReport",
    "NestedLoopMerger",
    "NestedLoopReport",
    "OrderPreservingReport",
    "RUN_FORMATION_MODES",
    "RunFormer",
    "StructuralMerger",
    "VERSIONS_ATTRIBUTE",
    "XMLArchive",
    "annotate_sequence_numbers",
    "apply_batch",
    "deduplicate",
    "embed_key",
    "embedded_key_of",
    "kway_merge",
    "merge_preserving_order",
    "nested_loop_merge",
    "normalized_component_key",
    "normalized_path_key",
    "sort_with_accounting",
    "strip_embedded_key",
    "structural_merge",
]
