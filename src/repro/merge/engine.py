"""Run-formation and merge kernels: replacement selection, loser trees,
and embedded normalized keys.

The paper fixes load-sort-flush run formation and a heap merge; this module
provides the engineering upgrades that real external sorters use (Arge &
Thorup, "RAM-Efficient External Memory Sorting"), each independently
togglable so the paper-faithful defaults stay bit-identical:

* **replacement selection** (:class:`RunFormer`): run formation keeps a
  byte-bounded min-heap instead of sorting fixed batches, producing runs
  averaging twice the memory capacity on random input - fewer initial runs,
  therefore fewer materialized merge passes and fewer I/Os.
* **loser-tree merging** (:class:`LoserTree`): a tournament tree replaces
  the binary heap in multiway merge passes.  Each record costs at most
  ``ceil(log2 k)`` *actual counted* key comparisons (the heap costs up to
  ``2 log2 k`` real comparisons but is charged the analytic bound), and
  comparisons are recorded as they happen instead of analytically.
* **embedded normalized keys** (:func:`embed_key` and friends): a
  byte-comparable rendering of the sort key is prefixed to each run record
  at formation time, so merge passes compare ``bytes`` directly instead of
  decoding every record on every pass.

Normalized keys are order-faithful: for any two keys built from the same
domain (key-path tuples, ``(atom, position)`` pairs, strings, ints), the
``bytes`` comparison of their normalizations equals the Python comparison
of the originals.  Numbers use the IEEE-754 sign-flip trick; strings are
UTF-8 with NUL escaped as ``00 FF`` and terminated by ``00`` (sound while
the byte following a terminator is below ``FF``, which holds for every
encoding this module emits); a strict tuple prefix is a strict byte prefix
and therefore sorts first, matching tuple semantics.
"""

from __future__ import annotations

import heapq
import struct
from dataclasses import dataclass, field
from math import ceil, log2
from typing import Callable, Iterable, Iterator

from ..errors import SortSpecError
from ..io.compress import CODEC_NAMES, decode_records, encode_records
from ..xml.codec import read_varint, write_varint
from ..xml.tokens import KEY_MISSING, KEY_NUMBER, KEY_STRING

RUN_FORMATION_MODES = ("load-sort", "replacement-selection")
MERGE_KERNELS = ("heap", "loser-tree")
SORT_KERNELS = ("scalar", "columnar")

#: Widest key prefix the columnar kernel will materialize per record.
#: Beyond this, a prefix array stops paying for itself (the full-key
#: tie-break handles the tail either way).
MAX_PREFIX_WIDTH = 256

_DOUBLE = struct.Struct(">d")
_U64 = struct.Struct(">Q")


@dataclass(frozen=True)
class KeyOptions:
    """Knobs of the normalized-key representation.

    Attributes:
        prefix_width: bytes of normalized key the columnar kernel packs
            into its fixed-width prefix array (argsort discriminates on
            the prefix; equal prefixes fall back to full-key comparison).
            Clamped to a multiple of 8 in ``[8, MAX_PREFIX_WIDTH]`` so the
            prefix matrix views cleanly as big-endian u64 columns.
    """

    prefix_width: int = 24

    def __post_init__(self):
        if not isinstance(self.prefix_width, int):
            raise SortSpecError(
                f"prefix_width must be an int, got "
                f"{type(self.prefix_width).__name__}"
            )
        if self.prefix_width < 1:
            raise SortSpecError(
                f"prefix_width must be positive, got {self.prefix_width}"
            )
        # Clamp rather than reject: any positive width is a valid request,
        # the kernel just rounds it to the nearest supported geometry.
        width = min(self.prefix_width, MAX_PREFIX_WIDTH)
        width = ((width + 7) // 8) * 8
        object.__setattr__(self, "prefix_width", width)


DEFAULT_KEY_OPTIONS = KeyOptions()


@dataclass(frozen=True)
class MergeOptions:
    """Knobs of the run-formation / merge engine.

    The defaults reproduce the paper's algorithm bit-for-bit: load-sort
    run formation, ``heapq`` merging, analytic comparison accounting, and
    no key embedding.

    Attributes:
        run_formation: ``load-sort`` (sort a memory-full batch, flush) or
            ``replacement-selection`` (byte-bounded heap, ~2x longer runs).
        merge_kernel: ``heap`` (binary heap, analytic ``ceil(log2 k)``
            comparison charges) or ``loser-tree`` (tournament tree,
            *counted* comparisons - and counted in-memory sorts too).
        embedded_keys: prefix run records with a byte-comparable normalized
            key so merge passes never decode records.
        kernel: ``scalar`` (the element-at-a-time reference path) or
            ``columnar`` (batch kernels over contiguous normalized-key
            buffers, :mod:`repro.core.columnar`).  The kernel choice is an
            *implementation* knob: every I/O, comparison, and token counter
            stays bit-identical between the two.
        keys: normalized-key layout knobs (:class:`KeyOptions`).
        compress: run-compression codec (``container`` or ``zlib``), or
            None to store runs uncompressed.  Compression alone changes
            only byte and CPU counters: the records, comparisons, and
            pass structure stay bit-identical.
        compress_capacity: also compress *pending* run-formation batches,
            so a memory budget holds more records and initial runs get
            longer - fewer runs, potentially fewer merge passes.  This
            legitimately changes comparison counts (bigger in-memory
            sorts), so it is a separate opt-in on top of ``compress``.
    """

    run_formation: str = "load-sort"
    merge_kernel: str = "heap"
    embedded_keys: bool = False
    kernel: str = "scalar"
    keys: KeyOptions = field(default_factory=KeyOptions)
    compress: str | None = None
    compress_capacity: bool = False

    def __post_init__(self):
        if self.run_formation not in RUN_FORMATION_MODES:
            raise SortSpecError(
                f"unknown run formation {self.run_formation!r}; "
                f"choose from {RUN_FORMATION_MODES}"
            )
        if self.merge_kernel not in MERGE_KERNELS:
            raise SortSpecError(
                f"unknown merge kernel {self.merge_kernel!r}; "
                f"choose from {MERGE_KERNELS}"
            )
        if self.kernel not in SORT_KERNELS:
            raise SortSpecError(
                f"unknown sort kernel {self.kernel!r}; "
                f"choose from {SORT_KERNELS}"
            )
        if self.compress is not None and self.compress not in CODEC_NAMES:
            raise SortSpecError(
                f"unknown run compression codec {self.compress!r}; "
                f"choose from {CODEC_NAMES}"
            )
        if self.compress_capacity and self.compress is None:
            raise SortSpecError(
                "compress_capacity requires a compression codec "
                "(set compress='container' or 'zlib')"
            )

    @property
    def replacement_selection(self) -> bool:
        return self.run_formation == "replacement-selection"

    @property
    def loser_tree(self) -> bool:
        return self.merge_kernel == "loser-tree"

    @property
    def counted_comparisons(self) -> bool:
        """Real counted comparisons ride with the loser-tree kernel."""
        return self.loser_tree

    @property
    def columnar(self) -> bool:
        return self.kernel == "columnar"

    @property
    def is_default(self) -> bool:
        return self == DEFAULT_MERGE_OPTIONS


DEFAULT_MERGE_OPTIONS = MergeOptions()


# -- counted comparisons ------------------------------------------------------


class ComparisonCounter:
    """Counts the comparisons a sort actually performs."""

    __slots__ = ("count",)

    def __init__(self):
        self.count = 0


class _CountedKey:
    """Sort-key proxy whose ``<`` increments a shared counter.

    ``list.sort`` only uses ``<`` on keys, so counting there captures every
    comparison of the underlying sort.
    """

    __slots__ = ("value", "counter")

    def __init__(self, value, counter: ComparisonCounter):
        self.value = value
        self.counter = counter

    def __lt__(self, other: "_CountedKey") -> bool:
        self.counter.count += 1
        return self.value < other.value


def sort_with_accounting(
    items: list, key_of: Callable, stats, counted: bool
) -> None:
    """Sort ``items`` in place by ``key_of``, charging comparisons.

    ``counted=False`` charges the analytic ``n * ceil(log2 n)`` bound the
    paper's accounting uses (bit-identical to the seed); ``counted=True``
    records the comparisons the sort actually performed, which for timsort
    is strictly below the analytic bound on non-trivial inputs.
    """
    count = len(items)
    if count <= 1:
        items.sort(key=key_of)
        return
    if counted:
        counter = ComparisonCounter()
        items.sort(key=lambda item: _CountedKey(key_of(item), counter))
        stats.record_comparisons(counter.count)
    else:
        items.sort(key=key_of)
        stats.record_comparisons(count * max(1, ceil(log2(count))))


def sort_keyed_batch(
    batch: list[tuple[object, bytes]], stats, counted: bool
) -> None:
    """Sort a ``(key, payload)`` batch by key with comparison accounting."""
    sort_with_accounting(batch, lambda pair: pair[0], stats, counted)


def dense_ranks(keys: list, order: list[int]) -> list[int]:
    """Map each key to its dense rank given a stable sorted ``order``.

    ``order`` is a stable argsort of ``keys`` (equal keys in original
    position order); the result assigns 0 to the smallest distinct key,
    1 to the next, and so on.  The rank list is order- *and* equality-
    isomorphic to the original keys: ``ranks[i] < ranks[j]`` iff
    ``keys[i] < keys[j]`` and ``ranks[i] == ranks[j]`` iff
    ``keys[i] == keys[j]``.  Any comparison sort run over the ranks
    therefore performs *exactly* the comparison sequence it would have
    performed over the keys - which is what lets the columnar kernel
    batch counted sorts without perturbing the comparison charge.
    """
    ranks = [0] * len(keys)
    rank = -1
    previous = None
    for position in order:
        key = keys[position]
        if rank < 0 or key != previous:
            rank += 1
            previous = key
        ranks[position] = rank
    return ranks


def argsort_counted(ranks: list[int], stats) -> list[int]:
    """Counted stable argsort: indices sorting ``ranks``, charging exactly
    the comparisons timsort performs.

    Sorting ``range(n)`` by counted rank reproduces the comparison
    sequence of sorting the original items by counted key (see
    :func:`dense_ranks`), so the charge matches the scalar per-group
    ``sort_with_accounting(..., counted=True)`` path bit for bit while
    the expensive key derivation stays batched.
    """
    n = len(ranks)
    if n <= 1:
        return list(range(n))
    counter = ComparisonCounter()
    order = sorted(
        range(n), key=lambda i: _CountedKey(ranks[i], counter)
    )
    stats.record_comparisons(counter.count)
    return order


# -- loser-tree k-way merge ---------------------------------------------------


class LoserTree:
    """Tournament (loser) tree over ``k`` sorted sources.

    Each source is a pull function returning ``(key, record)`` or ``None``
    when drained.  Ties break by source index, matching the heap kernel's
    ``(key, index)`` entries, so the merge is stable across kernels.

    Every internal-node match between two live contenders records exactly
    one comparison on ``stats`` (via ``record_merge_comparisons``), so one
    :meth:`pop` costs at most ``ceil(log2 k)`` comparisons - the tournament
    bound - and less near the end of the merge when ways have drained.
    """

    def __init__(
        self,
        pulls: list[Callable[[], tuple | None]],
        stats=None,
        on_exhausted: Callable[[int], None] | None = None,
    ):
        self._pulls = pulls
        self._stats = stats
        self._on_exhausted = on_exhausted
        k = len(pulls)
        p = 1
        while p < max(1, k):
            p *= 2
        self._p = p
        self._keys: list = [None] * p
        self._records: list = [None] * p
        self._alive = [False] * p
        for index in range(k):
            self._refill(index)
        # winner[n] for internal nodes 1..p-1; tree[n] stores the loser.
        self._tree = [0] * max(1, p)
        winner = [0] * (2 * p)
        for index in range(p):
            winner[p + index] = index
        for node in range(p - 1, 0, -1):
            won, lost = self._play(winner[2 * node], winner[2 * node + 1])
            winner[node] = won
            self._tree[node] = lost
        self._tree[0] = winner[1] if p > 1 else 0

    def _refill(self, index: int) -> None:
        item = self._pulls[index]()
        if item is None:
            self._alive[index] = False
            self._keys[index] = None
            self._records[index] = None
            if self._on_exhausted is not None:
                self._on_exhausted(index)
        else:
            self._keys[index], self._records[index] = item
            self._alive[index] = True

    def _play(self, a: int, b: int) -> tuple[int, int]:
        """One match; returns (winner leaf, loser leaf).

        A drained leaf loses without a comparison; two live leaves cost
        one recorded comparison.
        """
        if not self._alive[a]:
            return b, a
        if not self._alive[b]:
            return a, b
        if self._stats is not None:
            self._stats.record_merge_comparisons(1)
        if (self._keys[a], a) <= (self._keys[b], b):
            return a, b
        return b, a

    def pop(self) -> tuple | None:
        """Remove and return the smallest ``(key, record)``, or None."""
        winner = self._tree[0]
        if not self._alive[winner]:
            return None
        key = self._keys[winner]
        record = self._records[winner]
        self._refill(winner)
        node = (self._p + winner) >> 1
        contender = winner
        while node >= 1:
            won, lost = self._play(contender, self._tree[node])
            self._tree[node] = lost
            contender = won
            node >>= 1
        self._tree[0] = contender
        return key, record

    def __iter__(self) -> Iterator[tuple]:
        while True:
            item = self.pop()
            if item is None:
                return
            yield item


# -- run formation ------------------------------------------------------------


class RunFormer:
    """Forms initial sorted runs from a stream of ``(key, payload)`` pairs.

    In ``load-sort`` mode this reproduces the seed behaviour exactly:
    batch until ``capacity_bytes`` of payload accumulate, sort, flush one
    run.  In ``replacement-selection`` mode a byte-bounded min-heap streams
    records out in key order; a record smaller than the last one written is
    deferred to the next run, so runs average twice the capacity on random
    input (and a single run covers any already-sorted input).

    With ``options.embedded_keys`` the caller passes normalized ``bytes``
    keys and the payload written to the run is ``embed_key(key, payload)``.

    Heap accounting charges ``ceil(log2 h)`` comparisons per record sifted
    through a heap of size ``h``, plus one comparison per arriving record
    for the run-assignment test - the replacement-selection analogue of the
    analytic in-memory sort bound.
    """

    def __init__(
        self,
        store,
        capacity_bytes: int,
        options: MergeOptions,
        write_category: str = "run_write",
        tracer=None,
        recovery=None,
    ):
        self.store = store
        self.capacity_bytes = max(1, capacity_bytes)
        self.options = options
        self.write_category = write_category
        self.tracer = tracer
        self.recovery = recovery
        self.run_lengths: list[int] = []
        self._runs: list = []
        self._finished = False
        # load-sort state
        self._batch: list[tuple[object, bytes]] = []
        self._batch_bytes = 0
        # capacity-compression state (compress_capacity): pending batch
        # chunks are container-encoded in memory, so the byte budget is
        # charged the *compressed* footprint and runs grow by roughly the
        # compression ratio.  Keys stay raw (they drive the flush sort).
        self._capacity_mode = bool(
            options.compress_capacity and not options.replacement_selection
        )
        self._chunks: list[tuple[list, bytes, int]] = []
        self._chunk_bytes = 0
        self._chunk_trigger = max(1, self.capacity_bytes // 4)
        # replacement-selection state
        self._heap: list[tuple] = []
        self._heap_bytes = 0
        self._seq = 0
        self._run_index = 0
        self._last_key = None
        self._have_last = False

    def add(self, key, payload: bytes) -> None:
        if self.options.embedded_keys:
            payload = embed_key(key, payload)
        if self.options.replacement_selection:
            self._add_replacement(key, payload)
        elif self._capacity_mode:
            self._batch.append((key, payload))
            self._batch_bytes += len(payload)
            if self._batch_bytes >= self._chunk_trigger:
                self._compress_chunk()
            if self._chunk_bytes + self._batch_bytes >= self.capacity_bytes:
                self._flush_batch()
        else:
            self._batch.append((key, payload))
            self._batch_bytes += len(payload)
            if self._batch_bytes >= self.capacity_bytes:
                self._flush_batch()

    def add_all(self, keyed: Iterable[tuple[object, bytes]]) -> None:
        for key, payload in keyed:
            self.add(key, payload)

    def bulk_adder(self):
        """A per-record add callable with the mode checks hoisted.

        Same behaviour as :meth:`add`; fused scans call this once and
        then feed millions of records through the returned closure, so
        the per-record option lookups are paid once here instead.
        """
        if self.options.replacement_selection:
            if not self.options.embedded_keys:
                return self._add_replacement

            def add_embedded_replacement(key, payload: bytes) -> None:
                self._add_replacement(key, embed_key(key, payload))

            return add_embedded_replacement
        embedded = self.options.embedded_keys
        if self._capacity_mode:

            def add_capacity(key, payload: bytes) -> None:
                if embedded:
                    payload = embed_key(key, payload)
                self._batch.append((key, payload))
                self._batch_bytes += len(payload)
                if self._batch_bytes >= self._chunk_trigger:
                    self._compress_chunk()
                if (
                    self._chunk_bytes + self._batch_bytes
                    >= self.capacity_bytes
                ):
                    self._flush_batch()

            return add_capacity
        capacity = self.capacity_bytes
        batch_append = self._batch.append

        def add(key, payload: bytes) -> None:
            nonlocal batch_append
            if embedded:
                payload = embed_key(key, payload)
            batch_append((key, payload))
            total = self._batch_bytes + len(payload)
            self._batch_bytes = total
            if total >= capacity:
                self._flush_batch()
                batch_append = self._batch.append

        return add

    def finish(self) -> list:
        """Flush whatever is pending; returns the run handles in order."""
        if self._finished:
            return self._runs
        self._finished = True
        if self._batch or self._chunks:
            self._flush_batch()
        self._drain_heap()
        return self._runs

    # -- load-sort ----------------------------------------------------------

    def _compress_chunk(self) -> None:
        """Container-encode the pending batch; keep only keys raw."""
        if not self._batch:
            return
        stats = self.store.device.stats
        keys = [key for key, _payload in self._batch]
        payloads = [payload for _key, payload in self._batch]
        raw_bytes = sum(4 + len(payload) for payload in payloads)
        blob = encode_records(payloads, False, self.options.compress)
        stats.record_compression(raw_bytes, len(blob))
        self._chunks.append((keys, blob, raw_bytes))
        self._chunk_bytes += len(blob)
        self._batch = []
        self._batch_bytes = 0

    def _rehydrate_chunks(self) -> None:
        """Decode compressed pending chunks back into the raw batch."""
        if not self._chunks:
            return
        stats = self.store.device.stats
        restored: list[tuple[object, bytes]] = []
        for keys, blob, raw_bytes in self._chunks:
            payloads = decode_records(blob)
            stats.record_decompression(len(blob), raw_bytes)
            restored.extend(zip(keys, payloads))
        self._chunks = []
        self._chunk_bytes = 0
        self._batch = restored + self._batch
        self._batch_bytes = sum(
            len(payload) for _key, payload in self._batch
        )

    def _flush_batch(self) -> None:
        self._rehydrate_chunks()
        batch = self._batch
        stats = self.store.device.stats
        if (
            self.options.columnar
            and not self.options.counted_comparisons
            and len(batch) > 1
            and type(batch[0][0]) is bytes
        ):
            # Columnar fast path: argsort over the fixed-width normalized
            # key prefixes, full-key tie-break.  Ordering is identical to
            # the scalar sort (keys are order-faithful bytes), and so is
            # the analytic comparison charge.  Counted mode stays on the
            # scalar sort so the recorded count is the one the comparison
            # sequence actually produces.
            from ..core.columnar import argsort_keyed_batch

            batch = argsort_keyed_batch(
                batch, self.options.keys.prefix_width
            )
            count = len(batch)
            stats.record_comparisons(count * max(1, ceil(log2(count))))
        else:
            sort_keyed_batch(
                batch, stats, self.options.counted_comparisons
            )
        writer = self.store.create_writer(self.write_category)
        writer.write_records([payload for _key, payload in batch])
        handle = writer.finish()
        if (
            self.options.columnar
            and batch
            and type(batch[0][0]) is bytes
        ):
            # Key sidecar (host memory only): merge passes over this run
            # can reuse these keys instead of re-parsing every record.
            self.store.key_sidecars[handle.run_id] = [
                key for key, _payload in batch
            ]
        self._runs.append(handle)
        self.run_lengths.append(handle.record_count)
        self._batch = []
        self._batch_bytes = 0
        self._note_run(handle)

    # -- replacement selection ----------------------------------------------

    def _add_replacement(self, key, payload: bytes) -> None:
        stats = self.store.device.stats
        run = self._run_index
        if self._have_last:
            stats.record_comparisons(1)
            if key < self._last_key:
                run += 1
        heapq.heappush(self._heap, (run, key, self._seq, payload))
        self._seq += 1
        self._heap_bytes += len(payload)
        while self._heap_bytes > self.capacity_bytes and self._heap:
            self._emit_minimum()

    def _emit_minimum(self) -> None:
        stats = self.store.device.stats
        size = len(self._heap)
        if size > 1:
            stats.record_comparisons(max(1, ceil(log2(size))))
        run, key, _seq, payload = heapq.heappop(self._heap)
        self._heap_bytes -= len(payload)
        if run != self._run_index or not self._runs_open():
            self._close_open_run()
            self._writer = self.store.create_writer(self.write_category)
            self._writer_records = 0
            self._writer_keys = (
                []
                if self.options.columnar and type(key) is bytes
                else None
            )
            self._run_index = run
        self._writer.write_record(payload)
        self._writer_records += 1
        if self._writer_keys is not None:
            self._writer_keys.append(key)
        self._last_key = key
        self._have_last = True

    def _runs_open(self) -> bool:
        return getattr(self, "_writer", None) is not None

    def _close_open_run(self) -> None:
        writer = getattr(self, "_writer", None)
        if writer is None:
            return
        handle = writer.finish()
        keys = getattr(self, "_writer_keys", None)
        if keys is not None:
            self.store.key_sidecars[handle.run_id] = keys
            self._writer_keys = None
        self._runs.append(handle)
        self.run_lengths.append(handle.record_count)
        self._writer = None
        self._note_run(handle)

    def _note_run(self, handle) -> None:
        if self.tracer is not None:
            self.tracer.event(
                "run-formed",
                run=len(self._runs) - 1,
                records=handle.record_count,
                blocks=handle.block_count,
            )
        if self.recovery is not None:
            # Each formed run is durable: a later fault never has to redo
            # run formation behind the last completed run.
            self.recovery.checkpoint(
                "run-formation", len(self._runs) - 1, run_id=handle.run_id
            )

    def _drain_heap(self) -> None:
        while self._heap:
            self._emit_minimum()
        self._close_open_run()
        self._have_last = False


# -- normalized (byte-comparable) keys ---------------------------------------


def _normalize_atom(out: bytearray, atom: tuple) -> None:
    kind, value = atom
    if kind == KEY_MISSING:
        out.append(0)
        return
    if kind == KEY_NUMBER:
        out.append(1)
        value = float(value)
        if value == 0.0:
            value = 0.0  # collapse -0.0 (equal values, distinct bits)
        bits = _U64.unpack(_DOUBLE.pack(value))[0]
        if bits & (1 << 63):
            bits ^= (1 << 64) - 1  # negative: invert everything
        else:
            bits ^= 1 << 63  # non-negative: flip the sign bit
        out += _U64.pack(bits)
        return
    if kind == KEY_STRING:
        out.append(2)
        _normalize_str(out, value)
        return
    raise SortSpecError(f"cannot normalize key atom kind {kind}")


def _normalize_str(out: bytearray, value: str) -> None:
    out += value.encode("utf-8").replace(b"\x00", b"\x00\xff")
    out.append(0)


def _normalize_int(out: bytearray, value: int) -> None:
    out += _U64.pack(value)


def normalized_component_key(atom: tuple, position: int) -> bytes:
    """Byte-comparable form of one ``(key atom, position)`` pair."""
    out = bytearray()
    _normalize_atom(out, atom)
    _normalize_int(out, position)
    return bytes(out)


def normalized_path_key(path: tuple) -> bytes:
    """Byte-comparable form of a key path (tuple of ``(atom, pos)``).

    A strict tuple prefix becomes a strict byte prefix, so parents still
    sort immediately before their children, exactly as tuple comparison
    orders them.
    """
    out = bytearray()
    for atom, position in path:
        _normalize_atom(out, atom)
        _normalize_int(out, position)
    return bytes(out)


def normalized_string_key(value: str) -> bytes:
    """Byte-comparable form of a plain string key."""
    out = bytearray()
    _normalize_str(out, value)
    return bytes(out)


def normalized_int_key(value: int) -> bytes:
    """Byte-comparable form of a non-negative int key."""
    out = bytearray()
    _normalize_int(out, value)
    return bytes(out)


# -- embedded keys in run records --------------------------------------------


def embed_key(key_bytes: bytes, payload: bytes) -> bytes:
    """Prefix a run record with its normalized key (length-framed)."""
    out = bytearray()
    write_varint(out, len(key_bytes))
    out += key_bytes
    out += payload
    return bytes(out)


def embedded_key_of(record: bytes) -> bytes:
    """The normalized key prefix of an embedded-key record.

    This is the whole point of embedding: a merge pass calls this instead
    of decoding the record, and the returned ``bytes`` compare directly.
    """
    length, pos = read_varint(record, 0)
    return record[pos : pos + length]


def strip_embedded_key(record: bytes) -> bytes:
    """The original payload of an embedded-key record."""
    length, pos = read_varint(record, 0)
    return record[pos + length :]
