"""Duplicate elimination over sorted documents (related work, Section 2).

The NF2 line of work the paper cites (Kuspert/Saake/Wegner, "Duplicate
detection and deletion in the extended NF2 data model") is the classical
consumer of nested sorting: once a document is fully sorted, identical
siblings sit next to each other and one streaming pass removes them -
exactly how sort-based duplicate elimination works on flat files.

:func:`deduplicate` performs that pass bottom-up: duplicates are detected
per child list after the list's own subtrees have been deduplicated, so
two parents that differ only by *internal* duplicates still collapse.
Equality is exact (tag, attributes, text, and the deduplicated children,
order-sensitively); the sort key is compared first as a cheap filter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from ..errors import MergeError
from ..io.stats import StatsSnapshot
from ..keys import KeyEvaluator, SortSpec
from ..xml.document import Document
from ..xml.tokens import EndTag, MISSING_KEY, StartTag, Text, Token


@dataclass
class DedupReport:
    """What one duplicate-elimination pass did."""

    duplicate_subtrees_removed: int = 0
    elements_removed: int = 0
    stats: StatsSnapshot = field(default_factory=StatsSnapshot)

    @property
    def total_ios(self) -> int:
        return self.stats.total_ios

    @property
    def simulated_seconds(self) -> float:
        return self.stats.elapsed_seconds()


class _Frame:
    """One open element: its head tokens and deduplicated children."""

    __slots__ = ("head", "texts", "children")

    def __init__(self, head: StartTag):
        self.head = head
        self.texts: list[str] = []
        # Each child: (key, canonical form string, token list, elements).
        self.children: list[tuple] = []


def deduplicate(
    document: Document, spec: SortSpec
) -> tuple[Document, DedupReport]:
    """Remove adjacent identical sibling subtrees at every level.

    The document should already be sorted under ``spec`` so that all
    duplicates are adjacent (the function works on unsorted input too,
    but then only removes duplicates that happen to touch - the same
    contract as flat sort-based DISTINCT).
    """
    device = document.device
    report = DedupReport()
    before = device.stats.snapshot()

    evaluator = KeyEvaluator(spec)
    stack: list[_Frame] = []
    root_output: list[Token] | None = None

    def close_frame(frame: _Frame, key) -> tuple:
        """Assemble one element's deduplicated token list + identity."""
        tokens: list[Token] = [StartTag(frame.head.tag, frame.head.attrs)]
        text = "".join(frame.texts)
        if text:
            tokens.append(Text(text))
        elements = 1
        parts = []
        previous_form: str | None = None
        for child_key, form, child_tokens, child_elements in frame.children:
            if form == previous_form:
                report.duplicate_subtrees_removed += 1
                report.elements_removed += child_elements
                continue
            previous_form = form
            tokens.extend(child_tokens)
            elements += child_elements
            parts.append(form)
        tokens.append(EndTag(frame.head.tag))
        attrs = ";".join(
            f"{name}\x1f{value}"
            for name, value in sorted(frame.head.attrs)
        )
        form = (
            f"\x02{frame.head.tag}\x1e{attrs}\x1e{text}\x1e"
            + "".join(parts)
            + "\x03"
        )
        actual_key = key if key is not None else MISSING_KEY
        return actual_key, form, tokens, elements

    for event in evaluator.annotate(document.iter_events("dedup_scan")):
        if isinstance(event, StartTag):
            stack.append(_Frame(event))
        elif isinstance(event, Text):
            if stack:
                stack[-1].texts.append(event.text)
        elif isinstance(event, EndTag):
            frame = stack.pop()
            key = (
                frame.head.key
                if frame.head.key is not None
                else event.key
            )
            closed = close_frame(frame, key)
            if stack:
                stack[-1].children.append(closed)
            else:
                root_output = closed[2]
    if root_output is None:
        raise MergeError("document produced no root element")

    result = Document.from_events(
        document.store,
        iter(root_output),
        compaction=document.compaction,
        category="dedup_output",
    )
    report.stats = device.stats.since(before)
    return result, report
