"""Structural merge of sorted XML documents (paper Example 1.1, Figure 1).

The motivating application of NEXSORT: "We first sort both input documents
such that for any company, region, or branch element, the list of child
elements is ordered according to the same criterion for both documents ...
Then, we can perform merge in a single pass over both sorted documents."

This is the XML analogue of sort-merge (outer)join: walk both documents'
child lists in key order, copying one-sided subtrees through and recursing
into pairs with equal keys.  Matching elements contribute the union of
their attributes (the left document wins conflicts) and the union of their
children; the left document's text wins when both have text.

Inputs must be sorted under the *same* ordering criterion; keys are
re-evaluated from content during the merge scan, so sorted documents do not
need to carry keys.  The merge is single-pass: every input block is read
exactly once (checked by tests and the MRG benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..errors import MergeError
from ..io.stats import StatsSnapshot
from ..keys import KeyEvaluator, SortSpec
from ..xml.document import Document
from ..xml.tokens import (
    EndTag,
    MISSING_KEY,
    StartTag,
    Text,
    Token,
)


@dataclass
class MergeReport:
    """What one structural merge did."""

    left_blocks: int = 0
    right_blocks: int = 0
    output_blocks: int = 0
    elements_merged: int = 0
    elements_left_only: int = 0
    elements_right_only: int = 0
    stats: StatsSnapshot = field(default_factory=StatsSnapshot)

    @property
    def total_ios(self) -> int:
        return self.stats.total_ios

    @property
    def simulated_seconds(self) -> float:
        return self.stats.elapsed_seconds()


class _Cursor:
    """Peekable stream of annotated events."""

    __slots__ = ("_events", "_peeked")

    def __init__(self, events: Iterator[Token]):
        self._events = events
        self._peeked: Token | None = None

    def peek(self) -> Token | None:
        if self._peeked is None:
            self._peeked = next(self._events, None)
        return self._peeked

    def next(self) -> Token | None:
        token = self.peek()
        self._peeked = None
        return token


def _key_of(token: StartTag) -> tuple:
    return token.key if token.key is not None else MISSING_KEY


class StructuralMerger:
    """Single-pass merge of two documents sorted under ``spec``.

    ``spec`` must be start-computable: the merge decides matches at start
    tags, before either subtree has been read - the same reason sort-merge
    join compares join keys, not whole tuples.

    ``depth_limit`` mirrors depth-limited sorting (paper Section 3.2): when
    the user knows "a depth below which no overlap of information is
    possible", elements at levels beyond the limit are not matched - a
    merged element at the limit simply receives the left children followed
    by the right children, as the merged employee in Figure 1 keeps
    name/phone before salary/bonus.  Inputs then only need to be sorted to
    the same depth.

    ``attribute_merger``, when given, computes a merged element's
    attributes from the two sides' attribute tuples; the default is union
    with the left side winning conflicts.  The deep-union/nested-merge
    applications of Buneman et al. (related work, Section 2) plug their
    annotation-combining logic in here - see :mod:`repro.merge.archive`.
    """

    def __init__(
        self,
        spec: SortSpec,
        depth_limit: int | None = None,
        attribute_merger=None,
    ):
        if not spec.start_computable:
            raise MergeError(
                "structural merge matches elements at their start tags, "
                "so the ordering criterion must be start-computable"
            )
        self.spec = spec
        self.depth_limit = depth_limit
        self.attribute_merger = attribute_merger or _default_attribute_merger

    def merge(
        self, left: Document, right: Document
    ) -> tuple[Document, MergeReport]:
        """Merge two sorted documents; returns (merged document, report)."""
        if left.store is not right.store:
            raise MergeError("documents must live on the same device")
        device = left.device
        report = MergeReport(
            left_blocks=left.block_count, right_blocks=right.block_count
        )
        before = device.stats.snapshot()

        evaluator = KeyEvaluator(self.spec)
        left_cursor = _Cursor(
            evaluator.annotate(left.iter_events("merge_scan_left"))
        )
        right_evaluator = KeyEvaluator(self.spec)
        right_cursor = _Cursor(
            right_evaluator.annotate(right.iter_events("merge_scan_right"))
        )

        first_left = left_cursor.peek()
        first_right = right_cursor.peek()
        if not isinstance(first_left, StartTag) or not isinstance(
            first_right, StartTag
        ):
            raise MergeError("documents must begin with a root element")
        if first_left.tag != first_right.tag:
            raise MergeError(
                f"root tags differ: <{first_left.tag}> vs "
                f"<{first_right.tag}>"
            )

        events = self._merge_elements(left_cursor, right_cursor, report, 1)
        merged = Document.from_events(
            left.store,
            events,
            compaction=left.compaction,
            category="merge_output",
        )
        report.output_blocks = merged.block_count
        report.stats = device.stats.since(before)
        return merged, report

    # -- recursion over matched elements --------------------------------

    def _merge_elements(
        self, left: _Cursor, right: _Cursor, report: MergeReport, level: int
    ) -> Iterator[Token]:
        start_left = left.next()
        start_right = right.next()
        assert isinstance(start_left, StartTag)
        assert isinstance(start_right, StartTag)
        report.elements_merged += 1

        attrs = self.attribute_merger(start_left.attrs, start_right.attrs)
        yield StartTag(start_left.tag, attrs)

        left_text = self._collect_text(left)
        right_text = self._collect_text(right)
        if left_text:
            yield Text(left_text)
        elif right_text:
            yield Text(right_text)

        if self.depth_limit is not None and level > self.depth_limit:
            # Below the merge depth there is no overlap: concatenate the
            # left children followed by the right children, both in their
            # original order (Figure 1's merged employee).
            while isinstance(left.peek(), StartTag):
                yield from self._copy_subtree(left, report, "left")
            while isinstance(right.peek(), StartTag):
                yield from self._copy_subtree(right, report, "right")
            self._expect_end(left, start_left.tag)
            self._expect_end(right, start_right.tag)
            yield EndTag(start_left.tag)
            return

        while True:
            next_left = left.peek()
            next_right = right.peek()
            left_open = isinstance(next_left, StartTag)
            right_open = isinstance(next_right, StartTag)
            if left_open and right_open:
                key_left = _key_of(next_left)
                key_right = _key_of(next_right)
                if key_left < key_right:
                    yield from self._copy_subtree(left, report, "left")
                elif key_right < key_left:
                    yield from self._copy_subtree(right, report, "right")
                elif next_left.tag == next_right.tag:
                    yield from self._merge_elements(
                        left, right, report, level + 1
                    )
                else:
                    # Same key, different tags: both survive, left first.
                    yield from self._copy_subtree(left, report, "left")
                    yield from self._copy_subtree(right, report, "right")
            elif left_open:
                yield from self._copy_subtree(left, report, "left")
            elif right_open:
                yield from self._copy_subtree(right, report, "right")
            else:
                break

        self._expect_end(left, start_left.tag)
        self._expect_end(right, start_right.tag)
        yield EndTag(start_left.tag)

    @staticmethod
    def _collect_text(cursor: _Cursor) -> str:
        parts = []
        while isinstance(cursor.peek(), Text):
            parts.append(cursor.next().text)
        return "".join(parts)

    @staticmethod
    def _copy_subtree(
        cursor: _Cursor, report: MergeReport, side: str
    ) -> Iterator[Token]:
        depth = 0
        while True:
            token = cursor.next()
            if token is None:
                raise MergeError("unexpected end of input while copying")
            if isinstance(token, StartTag):
                depth += 1
                if side == "left":
                    report.elements_left_only += 1
                else:
                    report.elements_right_only += 1
                yield StartTag(token.tag, token.attrs)
            elif isinstance(token, Text):
                yield Text(token.text)
            elif isinstance(token, EndTag):
                depth -= 1
                yield EndTag(token.tag)
                if depth == 0:
                    return
            else:  # pragma: no cover - defensive
                raise MergeError(f"unexpected token {token!r}")

    @staticmethod
    def _expect_end(cursor: _Cursor, tag: str) -> None:
        token = cursor.next()
        if not isinstance(token, EndTag) or token.tag != tag:
            raise MergeError(
                f"expected </{tag}>, found {token!r}; are both inputs "
                f"sorted under the same criterion?"
            )


def _default_attribute_merger(
    left_attrs: tuple, right_attrs: tuple
) -> tuple:
    """Attribute union; the left document wins conflicts."""
    attrs = dict(left_attrs)
    for name, value in right_attrs:
        attrs.setdefault(name, value)
    return tuple(attrs.items())


def structural_merge(
    left: Document,
    right: Document,
    spec: SortSpec,
    depth_limit: int | None = None,
) -> tuple[Document, MergeReport]:
    """Convenience wrapper: merge two sorted documents."""
    return StructuralMerger(spec, depth_limit).merge(left, right)
