"""Archiving document versions with nested merge (related work, §2).

Buneman et al. archive XML scientific data "by merging new versions of a
document into an archive document using the Nested Merge operation, which
needs to sort the input documents at every level.  Our work complements
theirs by providing an I/O-efficient sort that supports more scalable
merge operations."

This module is that application, built on NEXSORT + structural merge:

* an **archive** is a fully sorted document where every element carries a
  ``versions`` attribute - the comma-separated version ids in which the
  element (identified by its key path) appeared;
* :meth:`XMLArchive.add_version` sorts the incoming version, annotates it,
  and nested-merges it into the archive (one sort + one single-pass merge
  per version - the scalability NEXSORT buys);
* :meth:`XMLArchive.snapshot` reconstructs any archived version by
  filtering on the annotation.
"""

from __future__ import annotations

from typing import Iterator

from ..core.nexsort import nexsort
from ..errors import MergeError
from ..keys import SortSpec
from ..xml.document import Document
from ..xml.tokens import EndTag, StartTag, Token
from .structural import StructuralMerger

#: The annotation attribute on archived elements.
VERSIONS_ATTRIBUTE = "versions"


def _merge_version_sets(left_attrs: tuple, right_attrs: tuple) -> tuple:
    """Attribute union that combines the two sides' version sets."""
    attrs = dict(left_attrs)
    for name, value in right_attrs:
        if name == VERSIONS_ATTRIBUTE and name in attrs:
            combined = _parse_versions(attrs[name]) | _parse_versions(value)
            attrs[name] = _format_versions(combined)
        else:
            attrs.setdefault(name, value)
    return tuple(attrs.items())


def _parse_versions(value: str) -> set[int]:
    return {int(part) for part in value.split(",") if part}


def _format_versions(versions: set[int]) -> str:
    return ",".join(str(v) for v in sorted(versions))


class XMLArchive:
    """An archive document accumulating versions via nested merge."""

    def __init__(self, spec: SortSpec, memory_blocks: int = 16):
        if not spec.start_computable:
            raise MergeError(
                "archiving merges at start tags; the criterion must be "
                "start-computable"
            )
        self.spec = spec
        self.memory_blocks = memory_blocks
        self.document: Document | None = None
        self.version_ids: list[int] = []

    # -- building ----------------------------------------------------------

    def add_version(self, document: Document, version_id: int) -> None:
        """Merge one document version into the archive.

        Costs one NEXSORT of the incoming version plus one single-pass
        structural merge against the current archive.
        """
        if version_id in self.version_ids:
            raise MergeError(f"version {version_id} already archived")
        annotated = self._annotate(document, version_id)
        sorted_version, _report = nexsort(
            annotated, self.spec, memory_blocks=self.memory_blocks
        )
        if self.document is None:
            self.document = sorted_version
        else:
            merger = StructuralMerger(
                self.spec, attribute_merger=_merge_version_sets
            )
            self.document, _merge_report = merger.merge(
                self.document, sorted_version
            )
        self.version_ids.append(version_id)

    def _annotate(self, document: Document, version_id: int) -> Document:
        def annotated(events) -> Iterator[Token]:
            for event in events:
                if isinstance(event, StartTag):
                    yield StartTag(
                        event.tag,
                        event.attrs
                        + ((VERSIONS_ATTRIBUTE, str(version_id)),),
                    )
                else:
                    yield event

        return Document.from_events(
            document.store,
            annotated(document.iter_events("archive_annotate")),
            compaction=document.compaction,
            category="archive_annotate",
        )

    # -- queries -----------------------------------------------------------

    def snapshot(self, version_id: int) -> Document:
        """Reconstruct one archived version (annotation stripped)."""
        if self.document is None or version_id not in self.version_ids:
            raise MergeError(f"version {version_id} is not in the archive")

        def filtered(events) -> Iterator[Token]:
            # Depth below an excluded element; 0 means "emitting".
            skip_depth = 0
            for event in events:
                if isinstance(event, StartTag):
                    if skip_depth:
                        skip_depth += 1
                        continue
                    versions = _parse_versions(
                        event.attr(VERSIONS_ATTRIBUTE) or ""
                    )
                    if version_id not in versions:
                        skip_depth = 1
                        continue
                    yield StartTag(
                        event.tag,
                        tuple(
                            (name, value)
                            for name, value in event.attrs
                            if name != VERSIONS_ATTRIBUTE
                        ),
                    )
                elif isinstance(event, EndTag):
                    if skip_depth:
                        skip_depth -= 1
                        continue
                    yield event
                else:
                    if not skip_depth:
                        yield event

        return Document.from_events(
            self.document.store,
            filtered(self.document.iter_events("archive_snapshot")),
            compaction=self.document.compaction,
            category="archive_snapshot",
        )

    def element_versions(self) -> dict[tuple, set[int]]:
        """Map every archived element's key path to its version set."""
        if self.document is None:
            return {}
        mapping: dict[tuple, set[int]] = {}
        tree = self.document.to_element()

        def walk(element, path: tuple) -> None:
            key = self.spec.key_of_element(element)
            here = path + (key,)
            mapping[here] = _parse_versions(
                element.attrs.get(VERSIONS_ATTRIBUTE, "")
            )
            for child in element.children:
                walk(child, here)

        walk(tree, ())
        return mapping
