"""Batch updates to a sorted document (paper Section 1).

"Another application of sorting is processing batch updates to an existing
XML document.  Assume that the existing document is already sorted.  We
first sort the batch of updates according to the same ordering criterion as
the existing document.  Then, we can process the batched updates in a way
similar to merging them with the existing document.  The result document
remains sorted."

A batch is itself an XML document whose elements mirror the target's
structure; each leaf-level element carries an ``op`` attribute:

* ``op="upsert"`` (or no ``op``) - insert the subtree, or merge it into the
  matching element (new attributes and children are added; text replaces).
* ``op="delete"`` - remove the matching element and its subtree.

Interior batch elements just navigate: they match by key and recurse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..core.nexsort import nexsort
from ..errors import MergeError
from ..io.stats import StatsSnapshot
from ..keys import KeyEvaluator, SortSpec
from ..xml.document import Document
from ..xml.tokens import EndTag, MISSING_KEY, StartTag, Text, Token

#: Attribute naming the operation on a batch element.
OP_ATTRIBUTE = "op"


@dataclass
class BatchReport:
    """What one batch application did."""

    upserts: int = 0
    deletes: int = 0
    missed_deletes: int = 0
    stats: StatsSnapshot = field(default_factory=StatsSnapshot)

    @property
    def total_ios(self) -> int:
        return self.stats.total_ios

    @property
    def simulated_seconds(self) -> float:
        return self.stats.elapsed_seconds()


class _Cursor:
    __slots__ = ("_events", "_peeked")

    def __init__(self, events: Iterator[Token]):
        self._events = events
        self._peeked: Token | None = None

    def peek(self) -> Token | None:
        if self._peeked is None:
            self._peeked = next(self._events, None)
        return self._peeked

    def next(self) -> Token | None:
        token = self.peek()
        self._peeked = None
        return token


def _key_of(token: StartTag) -> tuple:
    return token.key if token.key is not None else MISSING_KEY


def _op_of(token: StartTag) -> str:
    return token.attr(OP_ATTRIBUTE) or "upsert"


def _clean_attrs(token: StartTag) -> tuple[tuple[str, str], ...]:
    return tuple(
        (name, value)
        for name, value in token.attrs
        if name != OP_ATTRIBUTE
    )


class BatchApplier:
    """Applies a sorted batch to a sorted document in one merge pass."""

    def __init__(self, spec: SortSpec, memory_blocks: int = 16):
        if not spec.start_computable:
            raise MergeError(
                "batch application matches elements at start tags; the "
                "criterion must be start-computable"
            )
        self.spec = spec
        self.memory_blocks = memory_blocks

    def apply(
        self,
        document: Document,
        batch: Document,
        batch_is_sorted: bool = False,
    ) -> tuple[Document, BatchReport]:
        """Apply ``batch`` to ``document`` (both end up/stay sorted).

        ``document`` must already be sorted under the spec.  The batch is
        sorted first with NEXSORT unless ``batch_is_sorted`` says it
        already is - exactly the paper's recipe.
        """
        if document.store is not batch.store:
            raise MergeError("documents must live on the same device")
        device = document.device
        report = BatchReport()
        before = device.stats.snapshot()

        if not batch_is_sorted:
            batch, _sort_report = nexsort(
                batch, self.spec, memory_blocks=self.memory_blocks
            )

        doc_cursor = _Cursor(
            KeyEvaluator(self.spec).annotate(
                document.iter_events("merge_scan_left")
            )
        )
        batch_cursor = _Cursor(
            KeyEvaluator(self.spec).annotate(
                batch.iter_events("merge_scan_right")
            )
        )
        root_doc = doc_cursor.peek()
        root_batch = batch_cursor.peek()
        if not isinstance(root_doc, StartTag) or not isinstance(
            root_batch, StartTag
        ):
            raise MergeError("both inputs must have a root element")
        if root_doc.tag != root_batch.tag:
            raise MergeError(
                f"batch root <{root_batch.tag}> does not match document "
                f"root <{root_doc.tag}>"
            )

        events = self._apply_element(doc_cursor, batch_cursor, report)
        result = Document.from_events(
            document.store,
            events,
            compaction=document.compaction,
            category="merge_output",
        )
        report.stats = device.stats.since(before)
        return result, report

    def _apply_element(
        self, doc: _Cursor, batch: _Cursor, report: BatchReport
    ) -> Iterator[Token]:
        start_doc = doc.next()
        start_batch = batch.next()
        assert isinstance(start_doc, StartTag)
        assert isinstance(start_batch, StartTag)

        attrs = dict(start_doc.attrs)
        for name, value in _clean_attrs(start_batch):
            attrs[name] = value
        yield StartTag(start_doc.tag, tuple(attrs.items()))

        doc_text = _collect_text(doc)
        batch_text = _collect_text(batch)
        text = batch_text or doc_text
        if text:
            yield Text(text)

        while True:
            next_doc = doc.peek()
            next_batch = batch.peek()
            doc_open = isinstance(next_doc, StartTag)
            batch_open = isinstance(next_batch, StartTag)
            if doc_open and batch_open:
                key_doc = _key_of(next_doc)
                key_batch = _key_of(next_batch)
                if key_doc < key_batch:
                    yield from _copy_subtree(doc)
                elif key_batch < key_doc:
                    yield from self._insert_or_skip(batch, report)
                else:
                    op = _op_of(next_batch)
                    if op == "delete":
                        _skip_subtree(doc)
                        _skip_subtree(batch)
                        report.deletes += 1
                    else:
                        report.upserts += 1
                        yield from self._apply_element(doc, batch, report)
            elif doc_open:
                yield from _copy_subtree(doc)
            elif batch_open:
                yield from self._insert_or_skip(batch, report)
            else:
                break

        _expect_end(doc, start_doc.tag)
        _expect_end(batch, start_batch.tag)
        yield EndTag(start_doc.tag)

    def _insert_or_skip(
        self, batch: _Cursor, report: BatchReport
    ) -> Iterator[Token]:
        """A batch element with no match: insert upserts, drop deletes."""
        head = batch.peek()
        assert isinstance(head, StartTag)
        if _op_of(head) == "delete":
            _skip_subtree(batch)
            report.missed_deletes += 1
            return
        report.upserts += 1
        depth = 0
        while True:
            token = batch.next()
            if token is None:
                raise MergeError("unexpected end of batch while inserting")
            if isinstance(token, StartTag):
                depth += 1
                yield StartTag(token.tag, _clean_attrs(token))
            elif isinstance(token, Text):
                yield Text(token.text)
            elif isinstance(token, EndTag):
                depth -= 1
                yield EndTag(token.tag)
                if depth == 0:
                    return


def _collect_text(cursor: _Cursor) -> str:
    parts = []
    while isinstance(cursor.peek(), Text):
        parts.append(cursor.next().text)
    return "".join(parts)


def _copy_subtree(cursor: _Cursor) -> Iterator[Token]:
    depth = 0
    while True:
        token = cursor.next()
        if token is None:
            raise MergeError("unexpected end of input while copying")
        if isinstance(token, StartTag):
            depth += 1
            yield StartTag(token.tag, token.attrs)
        elif isinstance(token, Text):
            yield Text(token.text)
        elif isinstance(token, EndTag):
            depth -= 1
            yield EndTag(token.tag)
            if depth == 0:
                return


def _expect_end(cursor: _Cursor, tag: str) -> None:
    token = cursor.next()
    if not isinstance(token, EndTag) or token.tag != tag:
        raise MergeError(
            f"expected </{tag}>, found {token!r}; are both inputs sorted "
            f"under the same criterion?"
        )


def _skip_subtree(cursor: _Cursor) -> None:
    depth = 0
    while True:
        token = cursor.next()
        if token is None:
            raise MergeError("unexpected end of input while skipping")
        if isinstance(token, StartTag):
            depth += 1
        elif isinstance(token, EndTag):
            depth -= 1
            if depth == 0:
                return


def apply_batch(
    document: Document,
    batch: Document,
    spec: SortSpec,
    memory_blocks: int = 16,
    batch_is_sorted: bool = False,
) -> tuple[Document, BatchReport]:
    """Convenience wrapper: apply a batch of updates to a sorted document."""
    applier = BatchApplier(spec, memory_blocks)
    return applier.apply(document, batch, batch_is_sorted=batch_is_sorted)
