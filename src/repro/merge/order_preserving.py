"""Order-preserving merge (paper Section 1, Example 1.1).

"This approach also can be adapted to preserve the original document
ordering (by recording an additional sequence number attribute for each
child element and performing a final sort according to this sequence
number)."

The recipe, exactly as stated: annotate every element of both inputs with
a sequence-number attribute (its sibling index; the right document's
numbers are offset past the left's so unmatched right children land after
the left children of the same parent), sort both under the merge
criterion, merge in one pass, re-sort the result by the sequence numbers,
and strip the annotation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..core.nexsort import nexsort
from ..io.stats import StatsSnapshot
from ..keys import ByAttribute, SortSpec
from ..xml.document import Document
from ..xml.tokens import EndTag, StartTag, Token
from .structural import structural_merge

#: The temporary attribute carrying sibling positions.
SEQUENCE_ATTRIBUTE = "__seq"

#: Right-document sequence numbers start here, placing unmatched right
#: children after all left children of the same parent.
RIGHT_OFFSET = 1_000_000


@dataclass
class OrderPreservingReport:
    """What one order-preserving merge did."""

    elements_merged: int = 0
    stats: StatsSnapshot = field(default_factory=StatsSnapshot)

    @property
    def total_ios(self) -> int:
        return self.stats.total_ios

    @property
    def simulated_seconds(self) -> float:
        return self.stats.elapsed_seconds()


def annotate_sequence_numbers(
    document: Document, offset: int = 0, category: str = "seq_annotate"
) -> Document:
    """Copy a document, adding each element's sibling index as an
    attribute (the paper's 'additional sequence number attribute')."""

    def annotated(events) -> Iterator[Token]:
        counters: list[int] = []
        for event in events:
            if isinstance(event, StartTag):
                if counters:
                    sequence = counters[-1]
                    counters[-1] += 1
                else:
                    sequence = 0
                counters.append(0)
                yield StartTag(
                    event.tag,
                    event.attrs
                    + ((SEQUENCE_ATTRIBUTE, str(offset + sequence)),),
                )
            elif isinstance(event, EndTag):
                counters.pop()
                yield event
            else:
                yield event

    return Document.from_events(
        document.store,
        annotated(document.iter_events(category)),
        compaction=document.compaction,
        category=category,
    )


def strip_sequence_numbers(
    document: Document, category: str = "seq_strip"
) -> Document:
    """Copy a document, removing the sequence-number attribute."""

    def stripped(events) -> Iterator[Token]:
        for event in events:
            if isinstance(event, StartTag):
                yield StartTag(
                    event.tag,
                    tuple(
                        (name, value)
                        for name, value in event.attrs
                        if name != SEQUENCE_ATTRIBUTE
                    ),
                )
            else:
                yield event

    return Document.from_events(
        document.store,
        stripped(document.iter_events(category)),
        compaction=document.compaction,
        category=category,
    )


def merge_preserving_order(
    left: Document,
    right: Document,
    spec: SortSpec,
    memory_blocks: int = 16,
    depth_limit: int | None = None,
) -> tuple[Document, OrderPreservingReport]:
    """Merge two documents, keeping the left document's child ordering.

    The inputs need not be sorted.  Merged children appear where the left
    document had them; right-only children follow, in the right
    document's order.  Costs four sorts plus one merge pass, all counted.
    """
    device = left.device
    report = OrderPreservingReport()
    before = device.stats.snapshot()

    left_annotated = annotate_sequence_numbers(left, offset=0)
    right_annotated = annotate_sequence_numbers(right, offset=RIGHT_OFFSET)

    sorted_left, _ = nexsort(
        left_annotated, spec, memory_blocks=memory_blocks,
        depth_limit=depth_limit,
    )
    sorted_right, _ = nexsort(
        right_annotated, spec, memory_blocks=memory_blocks,
        depth_limit=depth_limit,
    )
    merged, merge_report = structural_merge(
        sorted_left, sorted_right, spec, depth_limit=depth_limit
    )
    report.elements_merged = merge_report.elements_merged

    # "performing a final sort according to this sequence number":
    sequence_spec = SortSpec(default=ByAttribute(SEQUENCE_ATTRIBUTE))
    restored, _ = nexsort(
        merged, sequence_spec, memory_blocks=memory_blocks,
        depth_limit=depth_limit,
    )
    result = strip_sequence_numbers(restored)
    report.stats = device.stats.since(before)
    return result, report
