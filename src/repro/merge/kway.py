"""K-way structural merge: combine many sorted documents in one pass.

The paper's merge operates on two documents; the natural generalization -
useful for the archiving and batch-update applications when many inputs
accumulate - merges any number of sorted documents simultaneously, still
reading every input block exactly once.  Semantics extend the two-way
merge: at each level, the child sequences advance together in key order;
children sharing a key (and tag) across several inputs merge recursively,
with attributes folded left-to-right (earlier inputs win conflicts) and
the first non-empty text surviving.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..errors import MergeError
from ..io.stats import StatsSnapshot
from ..keys import KeyEvaluator, SortSpec
from ..xml.document import Document
from ..xml.tokens import EndTag, MISSING_KEY, StartTag, Text, Token
from .engine import DEFAULT_MERGE_OPTIONS, MergeOptions
from .structural import _Cursor, _default_attribute_merger


@dataclass
class KWayMergeReport:
    """What one k-way merge did."""

    input_count: int = 0
    input_blocks: int = 0
    output_blocks: int = 0
    elements_merged: int = 0
    stats: StatsSnapshot = field(default_factory=StatsSnapshot)

    @property
    def total_ios(self) -> int:
        return self.stats.total_ios

    @property
    def simulated_seconds(self) -> float:
        return self.stats.elapsed_seconds()

    @property
    def merge_comparisons(self) -> int:
        """Key comparisons charged during head selection.

        Charged with the same analytic rule under either merge kernel
        option, so the counter is comparable across configurations."""
        return self.stats.merge_comparisons


def _key_of(token: StartTag) -> tuple:
    return token.key if token.key is not None else MISSING_KEY


class KWayMerger:
    """Single-pass merge of any number of sorted documents."""

    def __init__(
        self,
        spec: SortSpec,
        depth_limit: int | None = None,
        attribute_merger=None,
        merge_options: MergeOptions | None = None,
    ):
        if not spec.start_computable:
            raise MergeError(
                "structural merge matches elements at their start tags, "
                "so the ordering criterion must be start-computable"
            )
        self.spec = spec
        self.depth_limit = depth_limit
        self.attribute_merger = attribute_merger or _default_attribute_merger
        self.merge_options = merge_options or DEFAULT_MERGE_OPTIONS
        self._stats = None

    def merge(
        self, documents: list[Document]
    ) -> tuple[Document, KWayMergeReport]:
        if not documents:
            raise MergeError("nothing to merge")
        store = documents[0].store
        if any(doc.store is not store for doc in documents):
            raise MergeError("documents must live on the same device")
        device = store.device
        report = KWayMergeReport(
            input_count=len(documents),
            input_blocks=sum(doc.block_count for doc in documents),
        )
        # Head selection always charges its comparisons: previously only
        # the loser-tree option did, which made ``merge_comparisons``
        # silently read 0 under the default kernel.
        self._stats = device.stats
        before = device.stats.snapshot()

        cursors = []
        for index, doc in enumerate(documents):
            evaluator = KeyEvaluator(self.spec)
            cursors.append(
                _Cursor(
                    evaluator.annotate(
                        doc.iter_events(f"merge_scan_{index}")
                    )
                )
            )
        roots = [cursor.peek() for cursor in cursors]
        if not all(isinstance(root, StartTag) for root in roots):
            raise MergeError("every document needs a root element")
        tags = {root.tag for root in roots}
        if len(tags) != 1:
            raise MergeError(f"root tags differ: {sorted(tags)}")

        events = self._merge_group(cursors, report, 1)
        merged = Document.from_events(
            store,
            events,
            compaction=documents[0].compaction,
            category="merge_output",
        )
        report.output_blocks = merged.block_count
        report.stats = device.stats.since(before)
        return merged, report

    def _merge_group(
        self, cursors: list[_Cursor], report: KWayMergeReport, level: int
    ) -> Iterator[Token]:
        starts = [cursor.next() for cursor in cursors]
        assert all(isinstance(start, StartTag) for start in starts)
        report.elements_merged += 1

        attrs = starts[0].attrs
        for other in starts[1:]:
            attrs = self.attribute_merger(attrs, other.attrs)
        yield StartTag(starts[0].tag, attrs)

        texts = [self._collect_text(cursor) for cursor in cursors]
        text = next((t for t in texts if t), "")
        if text:
            yield Text(text)

        if self.depth_limit is not None and level > self.depth_limit:
            for cursor in cursors:
                while isinstance(cursor.peek(), StartTag):
                    yield from self._copy_subtree(cursor)
            for cursor, start in zip(cursors, starts):
                self._expect_end(cursor, start.tag)
            yield EndTag(starts[0].tag)
            return

        while True:
            # Cursors whose next child exists, with that child's key.
            heads = []
            for cursor in cursors:
                head = cursor.peek()
                if isinstance(head, StartTag):
                    heads.append((cursor, head))
            if not heads:
                break
            minimum = min(_key_of(head) for _cursor, head in heads)
            at_minimum = [
                (cursor, head)
                for cursor, head in heads
                if _key_of(head) == minimum
            ]
            if self._stats is not None and len(heads) > 1:
                # min() costs k-1 comparisons, the equality filter k more.
                self._stats.record_merge_comparisons(2 * len(heads) - 1)
            # Group by tag; the first tag in input order goes first.
            lead_tag = at_minimum[0][1].tag
            group = [
                cursor
                for cursor, head in at_minimum
                if head.tag == lead_tag
            ]
            if len(group) == 1:
                yield from self._copy_subtree(group[0])
            else:
                yield from self._merge_group(group, report, level + 1)

        for cursor, start in zip(cursors, starts):
            self._expect_end(cursor, start.tag)
        yield EndTag(starts[0].tag)

    @staticmethod
    def _collect_text(cursor: _Cursor) -> str:
        parts = []
        while isinstance(cursor.peek(), Text):
            parts.append(cursor.next().text)
        return "".join(parts)

    @staticmethod
    def _copy_subtree(cursor: _Cursor) -> Iterator[Token]:
        depth = 0
        while True:
            token = cursor.next()
            if token is None:
                raise MergeError("unexpected end of input while copying")
            if isinstance(token, StartTag):
                depth += 1
                yield StartTag(token.tag, token.attrs)
            elif isinstance(token, Text):
                yield Text(token.text)
            elif isinstance(token, EndTag):
                depth -= 1
                yield EndTag(token.tag)
                if depth == 0:
                    return

    @staticmethod
    def _expect_end(cursor: _Cursor, tag: str) -> None:
        token = cursor.next()
        if not isinstance(token, EndTag) or token.tag != tag:
            raise MergeError(
                f"expected </{tag}>, found {token!r}; are all inputs "
                f"sorted under the same criterion?"
            )


def kway_merge(
    documents: list[Document],
    spec: SortSpec,
    depth_limit: int | None = None,
    merge_options: MergeOptions | None = None,
) -> tuple[Document, KWayMergeReport]:
    """Convenience wrapper: merge many sorted documents in one pass."""
    return KWayMerger(spec, depth_limit, merge_options=merge_options).merge(
        documents
    )
