"""Nested-loop merge - the naive baseline of Example 1.1.

"A naive approach corresponds to the nested-loop join method.  For each
employee element, we find the matching element in the other document by
traversing through the matching region and branch elements ... when dealing
with large XML documents, this approach performs poorly because it
generates element access patterns that do not at all correspond to the
natural depth-first element ordering of disk-resident XML documents.  For
example, looking for a particular branch in a region requires scanning half
of the region subtree on average, unless there is an additional index."

This module implements exactly that access pattern against the simulated
device: the left document is streamed once; for every left child, the right
parent's children region is re-scanned from its beginning until a key match
is found (every block touched is a counted read).  Unmatched right children
are appended by one more scan per region.  The resulting I/O count blows up
with document size, which is what the MRG benchmark demonstrates against
sort + single-pass structural merge.

Inputs do NOT need to be sorted.  Only plain-stored (non-compacted)
documents are supported - the naive algorithm predates any clever encoding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..errors import MergeError
from ..io.stats import StatsSnapshot
from ..keys import SortSpec
from ..xml.codec import TokenCodec
from ..xml.document import Document
from ..xml.tokens import EndTag, MISSING_KEY, StartTag, Text, Token


@dataclass
class NestedLoopReport:
    """What one nested-loop merge did."""

    left_blocks: int = 0
    right_blocks: int = 0
    right_rescans: int = 0
    stats: StatsSnapshot = field(default_factory=StatsSnapshot)

    @property
    def total_ios(self) -> int:
        return self.stats.total_ios

    @property
    def simulated_seconds(self) -> float:
        return self.stats.elapsed_seconds()


@dataclass(frozen=True)
class _RightChild:
    """Location of one child subtree inside the right document's run."""

    key: tuple
    tag: str
    attrs: tuple
    start_offset: int
    content_offset: int
    end_offset: int


class NestedLoopMerger:
    """The naive merge, with its honest random-access I/O pattern."""

    def __init__(self, spec: SortSpec):
        if not spec.start_computable:
            raise MergeError(
                "nested-loop merge matches elements at start tags; the "
                "criterion must be start-computable"
            )
        self.spec = spec

    def merge(
        self, left: Document, right: Document
    ) -> tuple[Document, NestedLoopReport]:
        if left.store is not right.store:
            raise MergeError("documents must live on the same device")
        if (
            left.compaction is not None
            and left.compaction.eliminate_end_tags
        ) or (
            right.compaction is not None
            and right.compaction.eliminate_end_tags
        ):
            raise MergeError(
                "nested-loop merge supports plain-stored documents only"
            )
        device = left.device
        report = NestedLoopReport(
            left_blocks=left.block_count, right_blocks=right.block_count
        )
        before = device.stats.snapshot()
        self._right = right
        self._codec = TokenCodec(
            right.compaction.names if right.compaction else None
        )
        self._report = report

        left_events = left.iter_events("nested_left")
        root_left = next(left_events)
        if not isinstance(root_left, StartTag):
            raise MergeError("left document must begin with a root element")
        root_right, right_content = self._read_right_root()
        if root_left.tag != root_right.tag:
            raise MergeError(
                f"root tags differ: <{root_left.tag}> vs <{root_right.tag}>"
            )

        events = self._merge_region(
            root_left,
            left_events,
            root_right,
            right_content,
            right.handle.stream_bytes,
        )
        merged = Document.from_events(
            left.store,
            events,
            compaction=left.compaction,
            category="merge_output",
        )
        report.stats = device.stats.since(before)
        return merged, report

    # -- right-document access (offset-addressed, every read counted) -----

    def _read_right_root(self) -> tuple[StartTag, int]:
        reader = self._right.store.open_reader(
            self._right.handle, category="nested_right"
        )
        record = reader.read_record()
        token = self._codec.decode(record)
        if not isinstance(token, StartTag):
            raise MergeError("right document must begin with a root element")
        return token, reader.tell()

    def _scan_right_children(
        self, content_offset: int, end_offset: int
    ) -> Iterator[_RightChild]:
        """Scan one right region's children, yielding their locations.

        Every scan opens a fresh reader at the region start: this is the
        "scanning half of the region subtree on average" cost.
        """
        self._report.right_rescans += 1
        reader = self._right.store.open_reader(
            self._right.handle,
            offset=content_offset,
            category="nested_right",
        )
        depth = 0
        child_start = -1
        child_content = -1
        child_token: StartTag | None = None
        while reader.tell() < end_offset:
            offset = reader.tell()
            record = reader.read_record()
            if record is None:
                break
            token = self._codec.decode(record)
            if isinstance(token, StartTag):
                depth += 1
                if depth == 1:
                    child_start = offset
                    child_token = token
                    child_content = reader.tell()
            elif isinstance(token, EndTag):
                depth -= 1
                if depth == 0:
                    assert child_token is not None
                    rule = self.spec.rule_for(child_token.tag)
                    yield _RightChild(
                        key=rule.key_from_start(child_token),
                        tag=child_token.tag,
                        attrs=child_token.attrs,
                        start_offset=child_start,
                        content_offset=child_content,
                        end_offset=reader.tell(),
                    )

    def _read_right_text(
        self, content_offset: int, end_offset: int
    ) -> str:
        """The right element's own leading text (reads are counted)."""
        reader = self._right.store.open_reader(
            self._right.handle,
            offset=content_offset,
            category="nested_right",
        )
        parts: list[str] = []
        while reader.tell() < end_offset:
            record = reader.read_record()
            if record is None:
                break
            token = self._codec.decode(record)
            if isinstance(token, Text):
                parts.append(token.text)
            else:
                break
        return "".join(parts)

    def _copy_right_subtree(
        self, start_offset: int, end_offset: int
    ) -> Iterator[Token]:
        reader = self._right.store.open_reader(
            self._right.handle,
            offset=start_offset,
            category="nested_right",
        )
        while reader.tell() < end_offset:
            record = reader.read_record()
            if record is None:
                break
            yield self._codec.decode(record)

    # -- the nested loops ------------------------------------------------

    def _merge_region(
        self,
        start_left: StartTag,
        left_events: Iterator[Token],
        start_right: StartTag,
        right_content: int,
        right_end: int,
    ) -> Iterator[Token]:
        attrs = dict(start_left.attrs)
        for name, value in start_right.attrs:
            attrs.setdefault(name, value)
        yield StartTag(start_left.tag, tuple(attrs.items()))

        matched_offsets: set[int] = set()
        pending_text: list[str] = []
        right_text = self._read_right_text(right_content, right_end)
        emitted_text = False

        while True:
            event = next(left_events)
            if isinstance(event, Text):
                pending_text.append(event.text)
                continue
            if isinstance(event, EndTag):
                break
            assert isinstance(event, StartTag)
            if not emitted_text:
                text = "".join(pending_text) or right_text
                if text:
                    yield Text(text)
                emitted_text = True
                pending_text.clear()
            # Nested loop: scan the right region for this child's key.
            rule = self.spec.rule_for(event.tag)
            key = rule.key_from_start(event)
            match: _RightChild | None = None
            if key != MISSING_KEY:
                for candidate in self._scan_right_children(
                    right_content, right_end
                ):
                    if (
                        candidate.key == key
                        and candidate.tag == event.tag
                        and candidate.start_offset not in matched_offsets
                    ):
                        match = candidate
                        break
            if match is None:
                yield event
                yield from self._copy_left_subtree(left_events)
            else:
                matched_offsets.add(match.start_offset)
                yield from self._merge_region(
                    event,
                    left_events,
                    StartTag(match.tag, match.attrs),
                    match.content_offset,
                    match.end_offset,
                )
        if not emitted_text:
            text = "".join(pending_text) or right_text
            if text:
                yield Text(text)

        # One more scan for right-only children.
        for candidate in self._scan_right_children(right_content, right_end):
            if candidate.start_offset not in matched_offsets:
                yield from self._copy_right_subtree(
                    candidate.start_offset, candidate.end_offset
                )
        yield EndTag(start_left.tag)

    @staticmethod
    def _copy_left_subtree(left_events: Iterator[Token]) -> Iterator[Token]:
        depth = 1
        while depth:
            event = next(left_events)
            if isinstance(event, StartTag):
                depth += 1
            elif isinstance(event, EndTag):
                depth -= 1
            yield event


def nested_loop_merge(
    left: Document, right: Document, spec: SortSpec
) -> tuple[Document, NestedLoopReport]:
    """Convenience wrapper: naive merge of two (unsorted) documents."""
    return NestedLoopMerger(spec).merge(left, right)
