"""Ordering by IDREF-resolved keys (the paper's future work, Section 3.2).

"The above approach does not work ... if the ordering expression
references data other than e's descendents and ancestors (e.g., an XPath
expression that follows IDREFs).  We plan to investigate such ordering
expressions as future work."

This module implements that future work with the classic external-memory
semi-join, never holding the ID space in memory:

1. one scan extracts two record streams: ``(id value, key atom)`` for
   every element carrying the ID attribute, and ``(position, idref
   value)`` for every element whose ordering follows a reference;
2. both streams are sorted by id (run formation + multiway merge, all
   counted I/O) and merge-joined into ``(position, resolved key)``;
3. the join result is re-sorted by position, giving a key stream aligned
   with document order;
4. a second scan rewrites the document, attaching each resolved key as a
   temporary attribute; the rewritten document then sorts with ordinary
   NEXSORT, and the attribute is stripped from the output.

Total extra cost: two extra passes over the document plus the (much
smaller) sorts of the reference streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..baselines.merging import merge_to_stream
from ..errors import SortSpecError
from ..io.runs import RunHandle, RunStore
from ..keys import ByAttribute, KeyRule, SortSpec
from ..obs.tracer import Tracer, maybe_span
from ..merge.engine import (
    DEFAULT_MERGE_OPTIONS,
    MergeOptions,
    RunFormer,
    embedded_key_of,
    normalized_int_key,
    normalized_string_key,
    strip_embedded_key,
)
from ..xml.codec import (
    decode_key_atom,
    encode_key_atom,
    read_varint,
    write_varint,
)
from ..xml.document import Document
from ..xml.tokens import KeyAtom, MISSING_KEY, StartTag, Token
from .nexsort import NexsortReport, nexsort

#: Temporary attribute carrying resolved keys through the sort.
RESOLVED_ATTRIBUTE = "__resolved"


def sortable_atom_string(atom: KeyAtom) -> str:
    """Render a key atom as a string whose lexicographic order matches
    the atom order (missing < numbers < strings; numbers numerically).

    Numbers use the IEEE-754 order-preserving bit trick: flip the sign
    bit for non-negatives, all bits for negatives, and hex-encode.
    """
    import struct

    kind, value = atom
    if kind == 0:
        return "0"
    if kind == 1:
        value = float(value)
        if value == 0.0:
            value = 0.0  # normalize -0.0 (equal values, distinct bits)
        bits = struct.unpack(">Q", struct.pack(">d", value))[0]
        if bits & (1 << 63):
            bits ^= (1 << 64) - 1  # negative: invert everything
        else:
            bits ^= 1 << 63  # non-negative: flip the sign bit
        return f"1{bits:016x}"
    return f"2{value}"


@dataclass(frozen=True)
class ByIdRef(KeyRule):
    """Order elements by a key looked up through an IDREF.

    Args:
        reference_attribute: the IDREF attribute on the ordered elements
            (e.g. ``managerRef``).
        id_attribute: the ID attribute on the referenced elements
            (e.g. ``id``).
        target_rule: how to key a referenced element (defaults to its
            ``name`` attribute).

    Not evaluable in a single pass (the reference may point anywhere in
    the document), so plain NEXSORT rejects it; use
    :func:`nexsort_with_idrefs`.
    """

    reference_attribute: str
    id_attribute: str = "id"
    target_rule: KeyRule | None = None
    start_computable = False

    def resolved_target_rule(self) -> KeyRule:
        return self.target_rule or ByAttribute("name")

    def key_of_element(self, element) -> KeyAtom:
        raise SortSpecError(
            "ByIdRef keys need the document-wide resolution pass; "
            "sort with nexsort_with_idrefs()"
        )


# -- record encodings ---------------------------------------------------------


def _encode_id_key(identifier: str, key: KeyAtom) -> bytes:
    out = bytearray()
    data = identifier.encode("utf-8")
    write_varint(out, len(data))
    out += data
    encode_key_atom(out, key)
    return bytes(out)


def _decode_id_key(record: bytes) -> tuple[str, KeyAtom]:
    length, pos = read_varint(record, 0)
    identifier = record[pos : pos + length].decode("utf-8")
    key, _ = decode_key_atom(record, pos + length)
    return identifier, key


def _encode_pos_ref(position: int, reference: str) -> bytes:
    out = bytearray()
    write_varint(out, position)
    data = reference.encode("utf-8")
    write_varint(out, len(data))
    out += data
    return bytes(out)


def _decode_pos_ref(record: bytes) -> tuple[int, str]:
    position, pos = read_varint(record, 0)
    length, pos = read_varint(record, pos)
    return position, record[pos : pos + length].decode("utf-8")


def _encode_pos_key(position: int, key: KeyAtom) -> bytes:
    out = bytearray()
    write_varint(out, position)
    encode_key_atom(out, key)
    return bytes(out)


def _decode_pos_key(record: bytes) -> tuple[int, KeyAtom]:
    position, pos = read_varint(record, 0)
    key, _ = decode_key_atom(record, pos)
    return position, key


def _id_of(record: bytes) -> str:
    return _decode_id_key(record)[0]


def _ref_of(record: bytes) -> str:
    return _decode_pos_ref(record)[1]


def _pos_of(record: bytes) -> int:
    return _decode_pos_key(record)[0]


# -- the resolution passes ----------------------------------------------------


def _sorted_run(
    store: RunStore,
    records: Iterator[bytes],
    key_of,
    capacity_bytes: int,
    fan_in: int,
    options: MergeOptions,
    normalize=None,
    tracer: Tracer | None = None,
    label: str = "idref",
) -> list[RunHandle]:
    """Form sorted runs of a record stream under the memory budget.

    With ``options.embedded_keys`` the ``normalize`` callable renders each
    key into byte-comparable form, which is both the formation sort key
    and the prefix embedded into the run records.
    """
    former = RunFormer(
        store, capacity_bytes, options, write_category="idref_sort",
        tracer=tracer,
    )
    embedded = options.embedded_keys
    with maybe_span(tracer, "run-formation", stream=label) as span:
        for record in records:
            key = key_of(record)
            if embedded:
                key = normalize(key)
            former.add(key, record)
        runs = former.finish()
        if span is not None:
            span.set(runs=len(runs))
    return runs


def _merged_stream(
    store: RunStore,
    runs: list[RunHandle],
    key_of,
    fan_in: int,
    options: MergeOptions,
    tracer: Tracer | None = None,
) -> Iterator[bytes]:
    """Merge id/ref/pos runs into one stream of *plain* records."""
    merge_key = embedded_key_of if options.embedded_keys else key_of
    stream, _passes, _width = merge_to_stream(
        store,
        runs,
        merge_key,
        fan_in,
        "idref_merge",
        "idref_sort",
        options=options,
        tracer=tracer,
    )
    if options.embedded_keys:
        return (strip_embedded_key(record) for record in stream)
    return stream


def _normalize_str(value: str) -> bytes:
    return normalized_string_key(value)


def _normalize_pos(value: int) -> bytes:
    return normalized_int_key(value)


def resolve_idref_keys(
    document: Document,
    spec: SortSpec,
    memory_blocks: int = 16,
    merge_options: MergeOptions | None = None,
    tracer: Tracer | None = None,
) -> Document:
    """Rewrite a document so ByIdRef keys become plain attributes.

    Every element whose rule is :class:`ByIdRef` gains a
    ``__resolved`` attribute holding the referenced element's key
    (stringified); dangling references resolve to an empty value that
    sorts first, like any missing key.
    """
    idref_rules = {
        tag: rule
        for tag, rule in spec.rules.items()
        if isinstance(rule, ByIdRef)
    }
    if isinstance(spec.default, ByIdRef):
        raise SortSpecError(
            "ByIdRef must be a per-tag rule (a default would make every "
            "element a reference)"
        )
    if not idref_rules:
        return document
    store = document.store
    device = store.device
    capacity = max(1, memory_blocks - 2) * device.block_size
    fan_in = max(2, memory_blocks - 1)
    options = merge_options or DEFAULT_MERGE_OPTIONS

    # Pass 1: extract (id -> key) and (position -> idref) streams.
    def extract() -> Iterator[tuple[str, bytes]]:
        position = -1
        for event in document.iter_events("idref_scan"):
            if not isinstance(event, StartTag):
                continue
            position += 1
            for rule in idref_rules.values():
                identifier = event.attr(rule.id_attribute)
                if identifier is not None:
                    key = rule.resolved_target_rule().key_from_start(event)
                    yield "id", _encode_id_key(identifier, key)
            rule = idref_rules.get(event.tag)
            if rule is not None:
                reference = event.attr(rule.reference_attribute)
                if reference is not None:
                    yield "ref", _encode_pos_ref(position, reference)

    with maybe_span(
        tracer, "idref-resolve", rules=len(idref_rules)
    ) as resolve_span:
        id_records: list[bytes] = []
        ref_records: list[bytes] = []
        for kind, record in extract():
            (id_records if kind == "id" else ref_records).append(record)
            device.stats.record_tokens(1)
        if resolve_span is not None:
            resolve_span.set(
                ids=len(id_records), refs=len(ref_records)
            )

        # Sort both streams by id (externally, counted).
        id_runs = _sorted_run(
            store, iter(id_records), _id_of, capacity, fan_in, options,
            _normalize_str, tracer=tracer, label="id-keys",
        )
        ref_runs = _sorted_run(
            store, iter(ref_records), _ref_of, capacity, fan_in, options,
            _normalize_str, tracer=tracer, label="references",
        )
        resolved: list[bytes] = []
        if id_runs and ref_runs:
            id_stream = _merged_stream(
                store, id_runs, _id_of, fan_in, options, tracer=tracer
            )
            ref_stream = _merged_stream(
                store, ref_runs, _ref_of, fan_in, options, tracer=tracer
            )
            # Merge-join the two id-sorted streams.
            current_id: str | None = None
            current_key: KeyAtom = MISSING_KEY
            id_iter = iter(id_stream)
            pending = next(id_iter, None)
            for record in ref_stream:
                position, reference = _decode_pos_ref(record)
                while pending is not None:
                    identifier, key = _decode_id_key(pending)
                    if identifier > reference:
                        break
                    current_id, current_key = identifier, key
                    pending = next(id_iter, None)
                key = (
                    current_key
                    if current_id == reference
                    else MISSING_KEY
                )
                resolved.append(_encode_pos_key(position, key))
                device.stats.record_comparisons(1)

        # Re-sort the join result by document position.
        key_by_position: dict[int, KeyAtom] = {}
        if resolved:
            pos_runs = _sorted_run(
                store, iter(resolved), _pos_of, capacity, fan_in, options,
                _normalize_pos, tracer=tracer, label="positions",
            )
            pos_stream = _merged_stream(
                store, pos_runs, _pos_of, fan_in, options, tracer=tracer
            )
            # Pass 2 consumes this stream in document order; buffering the
            # (position, key) pairs models a co-scan of the annotation run.
            for record in pos_stream:
                position, key = _decode_pos_key(record)
                key_by_position[position] = key

        # Pass 2: rewrite the document with the resolved keys attached.
        def annotated() -> Iterator[Token]:
            position = -1
            for event in document.iter_events("idref_scan"):
                if isinstance(event, StartTag):
                    position += 1
                    key = key_by_position.get(position)
                    if key is not None:
                        rendered = sortable_atom_string(key)
                        yield StartTag(
                            event.tag,
                            event.attrs + ((RESOLVED_ATTRIBUTE, rendered),),
                        )
                        continue
                yield event

        return Document.from_events(
            store,
            annotated(),
            compaction=document.compaction,
            category="idref_rewrite",
        )


def strip_resolved_keys(
    document: Document, tracer: Tracer | None = None
) -> Document:
    """Remove the temporary resolution attribute (one counted pass)."""

    def stripped() -> Iterator[Token]:
        for event in document.iter_events("idref_strip"):
            if isinstance(event, StartTag):
                yield StartTag(
                    event.tag,
                    tuple(
                        (name, value)
                        for name, value in event.attrs
                        if name != RESOLVED_ATTRIBUTE
                    ),
                )
            else:
                yield event

    with maybe_span(tracer, "idref-strip"):
        return Document.from_events(
            document.store,
            stripped(),
            compaction=document.compaction,
            category="idref_strip",
        )


def nexsort_with_idrefs(
    document: Document,
    spec: SortSpec,
    memory_blocks: int,
    **options,
) -> tuple[Document, NexsortReport]:
    """Sort a document whose spec contains :class:`ByIdRef` rules.

    Resolution (two extra document passes + reference-stream sorts) runs
    first; the rewritten document sorts with ordinary NEXSORT on the
    resolved attribute; the temporary attribute is stripped from the
    output.  All I/O is counted on the document's device.
    """
    resolved = resolve_idref_keys(
        document, spec, memory_blocks,
        merge_options=options.get("merge_options"),
        tracer=options.get("tracer"),
    )
    effective_rules = {
        tag: (
            ByAttribute(RESOLVED_ATTRIBUTE, numeric_coercion=False)
            if isinstance(rule, ByIdRef)
            else rule
        )
        for tag, rule in spec.rules.items()
    }
    effective = SortSpec(default=spec.default, rules=effective_rules)
    sorted_document, report = nexsort(
        resolved, effective, memory_blocks=memory_blocks, **options
    )
    return (
        strip_resolved_keys(sorted_document, tracer=options.get("tracer")),
        report,
    )
