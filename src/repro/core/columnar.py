"""Batch-columnar kernels for the record hot path (ROADMAP item 5).

The reference ("scalar") implementation moves one record at a time through
tokenize -> key-evaluate -> encode -> form-runs -> merge -> decode, which is
bit-faithful to the paper's accounting but pays Python interpreter overhead
per element - the reproduction topped out around 10^6 elements.  This
module provides the batch kernels behind ``MergeOptions(kernel="columnar")``:

* :class:`ColumnarBatch` - a run-formation batch held column-wise: one
  contiguous fixed-width array of normalized-key *prefixes* (numpy
  ``uint8`` matrix when numpy is importable, ``bytearray`` otherwise),
  plus offset/payload arrays (:mod:`array`/``bytes``), so the formation
  sort is an argsort over machine integers instead of a million tuple
  comparisons;
* :func:`argsort_normalized` - prefix argsort with a full-key tie-break
  on equal prefixes, producing exactly the order - including stability -
  of the scalar ``list.sort`` over the same keys;
* :func:`fast_path_key` - normalized key bytes straight from an encoded
  key-path record, parsing only the path prefix (merge passes never
  decode tags/attributes/text);
* :func:`record_puller` / :func:`batched_pulls` - block-drain batched run
  reading for the heap and loser-tree merge kernels;
* :func:`form_runs_columnar` / :func:`emit_output_columnar` - fused block
  encode/decode of the token format for the external merge sort scan and
  output phases, covering plain, dictionary-coded, and end-tag-eliminated
  (level-annotated) storage;
* :func:`argsort_groups` / :func:`sort_subtree_records` - NEXSORT's
  in-memory subtree sorts as batch kernels: sibling groups are gathered
  into one prefixed key batch and ordered with a single stable argsort,
  and a popped subtree's raw data-stack records are parsed, sorted, and
  re-serialized by byte splicing without ever materializing tokens.

**Parity guarantee.**  Every kernel here is counter-transparent: device
accesses are issued in the same per-stream order at the same consumption
points as the scalar path (draining an already-buffered block is free in
the device model either way), comparison charges use the same analytic
formulas (and counted mode keeps the scalar counting sort), and token
charges are batched sums of the same per-record units.  Normalized keys
are order- and equality-faithful (:mod:`repro.merge.engine`), so every
comparison *outcome* - and therefore every sort order, tie-break, run
boundary, and merge pop sequence - is identical.  The accounting-parity
suite pins this across the full MergeOptions grid.
"""

from __future__ import annotations

import struct
from array import array
from math import ceil, log2
from typing import Callable, Iterable

try:  # pragma: no cover - exercised via both-backends tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from ..errors import CodecError, RunError, SortSpecError
from ..merge.engine import (
    DEFAULT_KEY_OPTIONS,
    argsort_counted,
    dense_ranks,
    embedded_key_of,
)
from ..xml.codec import (
    TYPE_END,
    TYPE_POINTER,
    TYPE_START,
    TYPE_TEXT,
    encode_key_atom,
    encode_varint,
    read_varint,
    write_varint,
)
from ..xml.tokens import StartTag

_DOUBLE_LE = struct.Struct("<d")
_DOUBLE_BE = struct.Struct(">d")
_U64 = struct.Struct(">Q")
_U32 = struct.Struct(">I")

#: Keep the start-key memo bounded on high-cardinality documents.
_MEMO_LIMIT = 1 << 16

#: Single-byte varints, indexed by value.
_VARINT1 = [bytes([value]) for value in range(128)]

#: Batches smaller than this sort faster with the pure-Python stable
#: sort (memcmp-based timsort) than with the numpy prefix argsort,
#: whose per-call cost is dominated by building the padded prefix
#: buffer; the vectorized path pulls ahead on merge-pass-sized inputs.
_SMALL_ARGSORT = 1 << 16


def have_numpy() -> bool:
    """True when the vectorized argsort backend is active."""
    return _np is not None


# -- small codec helpers ------------------------------------------------------


def varint_bytes(value: int) -> bytes:
    return encode_varint(value)


def _read_varint_fast(data: bytes, pos: int) -> tuple[int, int]:
    """Inline-friendly LEB128 read (single-byte fast path)."""
    value = data[pos]
    pos += 1
    if value < 0x80:
        return value, pos
    value &= 0x7F
    shift = 7
    while True:
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if byte < 0x80:
            return value, pos
        shift += 7


def normalized_atom_bytes(atom: tuple) -> bytes:
    """Byte-comparable form of one key atom (engine normalization)."""
    from ..merge.engine import _normalize_atom

    out = bytearray()
    _normalize_atom(out, atom)
    return bytes(out)


def encoded_atom_bytes(atom: tuple) -> bytes:
    """Codec encoding of one key atom (as stored in key-path records)."""
    out = bytearray()
    encode_key_atom(out, atom)
    return bytes(out)


def _normalize_number(value: float) -> bytes:
    if value == 0.0:
        value = 0.0  # collapse -0.0, as engine normalization does
    (bits,) = _U64.unpack(_DOUBLE_BE.pack(value))
    if bits & (1 << 63):
        bits ^= (1 << 64) - 1
    else:
        bits ^= 1 << 63
    return b"\x01" + _U64.pack(bits)


def fast_path_key(record: bytes) -> bytes:
    """Normalized sort key of an encoded key-path record, path-only parse.

    Equivalent to ``normalized_path_key(decode_record(record).sort_key())``
    but skips the tag/attribute/text payload entirely - this is what merge
    passes call per record per pass when keys are not embedded.  Works for
    element and pointer records, with or without a name dictionary (path
    atoms are dictionary-independent).  Varint reads are inlined: this
    runs once per record per merge pass, the hottest loop in the sort.
    """
    byte = record[1]
    pos = 2
    if byte < 0x80:
        depth = byte
    else:
        depth, pos = _read_varint_fast(record, 1)
    parts = []
    append = parts.append
    for _ in range(depth):
        kind = record[pos]
        pos += 1
        if kind == 2:  # string atom
            length = record[pos]
            pos += 1
            if length >= 0x80:
                length, pos = _read_varint_fast(record, pos - 1)
            end = pos + length
            raw = record[pos:end]
            pos = end
            if b"\x00" in raw:
                raw = raw.replace(b"\x00", b"\x00\xff")
            append(b"\x02" + raw + b"\x00")
        elif kind == 1:  # number atom
            append(_normalize_number(_DOUBLE_LE.unpack_from(record, pos)[0]))
            pos += 8
        elif kind == 0:  # missing atom
            append(b"\x00")
        else:
            raise CodecError(f"unknown key atom kind {kind}")
        position = record[pos]
        pos += 1
        if position >= 0x80:
            position &= 0x7F
            shift = 7
            while True:
                byte = record[pos]
                pos += 1
                position |= (byte & 0x7F) << shift
                if byte < 0x80:
                    break
                shift += 7
        append(position.to_bytes(8, "big"))
    return b"".join(parts)


def batch_path_keys(records: list[bytes]) -> list[bytes]:
    """:func:`fast_path_key` of every record in a drained block."""
    key = fast_path_key
    return [key(record) for record in records]


def batch_embedded_keys(records: list[bytes]) -> list[bytes]:
    """Embedded normalized-key prefixes of a drained block of records."""
    out = []
    append = out.append
    for record in records:
        length = record[0]
        if length < 0x80:
            append(record[1 : 1 + length])
        else:
            length, pos = _read_varint_fast(record, 0)
            append(record[pos : pos + length])
    return out


# -- columnar batches and the prefix argsort ----------------------------------


class ColumnarBatch:
    """Normalized keys and payloads of one batch, held column-wise.

    Layout (``n`` records, prefix width ``W``):

    * ``prefix`` - one contiguous ``n x W`` byte buffer of key prefixes
      (after stripping the batch-wide common key prefix), zero-padded;
      a numpy ``uint8`` matrix when available, else a ``bytearray``;
    * ``keys`` - the full normalized key of every record (tie-break and
      fallback comparisons);
    * ``payload`` / ``offsets`` - record payloads packed into one blob
      with an ``array('Q')`` offset column.
    """

    __slots__ = ("keys", "payload", "offsets", "prefix", "width", "strip")

    def __init__(self, keys: list[bytes], payloads: list[bytes],
                 prefix_width: int | None = None):
        width = (
            prefix_width
            if prefix_width is not None
            else DEFAULT_KEY_OPTIONS.prefix_width
        )
        self.keys = keys
        self.width = width
        self.strip = _common_prefix_length(keys)
        blob = bytearray()
        offsets = array("Q", [0]) if payloads else array("Q")
        for payload in payloads:
            blob += payload
            offsets.append(len(blob))
        self.payload = bytes(blob)
        self.offsets = offsets
        self.prefix = _prefix_buffer(keys, self.strip, width)

    def __len__(self) -> int:
        return len(self.keys)

    def record(self, index: int) -> bytes:
        return self.payload[self.offsets[index] : self.offsets[index + 1]]

    def compare(self, a: int, b: int) -> int:
        """-1/0/1 ordering of two rows (full-key comparison)."""
        ka, kb = self.keys[a], self.keys[b]
        return -1 if ka < kb else (0 if ka == kb else 1)

    def argsort(self) -> list[int]:
        """Row order sorting the batch by full normalized key, stably."""
        return argsort_normalized(
            self.keys, self.width, strip=self.strip, prefix=self.prefix
        )

    def sorted_records(self) -> list[bytes]:
        record = self.record
        return [record(index) for index in self.argsort()]


def _common_prefix_length(keys: list[bytes]) -> int:
    """Length of the byte prefix shared by every key in the batch.

    Stripping it before building the prefix array keeps the fixed-width
    window over the *discriminating* bytes - key paths share their root
    component, which would otherwise waste most of the window.
    """
    if not keys:
        return 0
    prefix = keys[0]
    for key in keys:
        if key.startswith(prefix):
            continue
        limit = min(len(prefix), len(key))
        i = 0
        while i < limit and prefix[i] == key[i]:
            i += 1
        prefix = prefix[:i]
        if not prefix:
            return 0
    return len(prefix)


def _prefix_buffer(keys: list[bytes], strip: int, width: int):
    """The contiguous zero-padded prefix matrix (numpy or bytearray)."""
    end = strip + width
    if _np is None:
        padded = b"".join(
            key[strip:end].ljust(width, b"\x00") for key in keys
        )
        return bytearray(padded)
    # numpy's S-dtype constructor truncates long entries and NUL-pads
    # short ones - exactly the ljust window above, built in C.
    trimmed = [key[strip:end] for key in keys] if strip else keys
    rows = _np.array(trimmed, dtype=f"S{width}")
    return rows.view(_np.uint8).reshape(len(keys), width)


def argsort_normalized(
    keys: list[bytes],
    prefix_width: int | None = None,
    strip: int | None = None,
    prefix=None,
) -> list[int]:
    """Stable argsort of normalized-key bytes via the prefix matrix.

    With numpy: the zero-padded prefix matrix is viewed as one
    fixed-width bytes (``S<width>``) column and ordered with a single
    stable ``argsort`` - numpy's bytes comparison is memcmp with
    lowest-ranked implicit trailing NULs, exactly the order of the
    zero-padded prefixes; groups of rows with identical padded prefixes
    are then re-ordered by their full keys with a stable Python sort.
    Without numpy
    the whole argsort falls back to a stable sort on the full keys.
    Either way the result equals the order a stable scalar sort of the
    keys produces, which is what keeps the columnar kernel's run
    contents bit-identical.
    """
    n = len(keys)
    if n <= 1:
        return list(range(n))
    if _np is None or (n < _SMALL_ARGSORT and prefix is None):
        # Below a few hundred rows the fixed numpy dispatch overhead
        # (buffer build, argsort setup) loses to a straight stable sort
        # of the bytes keys; the order is identical either way.
        return sorted(range(n), key=keys.__getitem__)
    width = (
        prefix_width
        if prefix_width is not None
        else DEFAULT_KEY_OPTIONS.prefix_width
    )
    if strip is None:
        strip = _common_prefix_length(keys)
    if prefix is None:
        prefix = _prefix_buffer(keys, strip, width)
    rows = prefix.view(f"S{width}").ravel()
    order = rows.argsort(kind="stable")
    # Tie-break equal padded prefixes on the full key.  The argsort is
    # stable, so rows inside a tie group arrive in ascending original
    # index; the stable Python sort below therefore preserves input
    # order on fully equal keys, exactly like the scalar timsort.
    sorted_rows = rows[order]
    changed = sorted_rows[1:] != sorted_rows[:-1]
    order = order.tolist()
    if not changed.all():
        starts = [0] + [int(i) + 1 for i in _np.flatnonzero(changed)]
        starts.append(n)
        out: list[int] = []
        for begin, end in zip(starts, starts[1:]):
            group = order[begin:end]
            if len(group) > 1:
                group.sort(key=keys.__getitem__)
            out.extend(group)
        return out
    return order


def argsort_keyed_batch(
    batch: list[tuple[bytes, bytes]], prefix_width: int | None = None
) -> list[tuple[bytes, bytes]]:
    """Sort a run-formation ``(normalized key, payload)`` batch.

    Drop-in for the scalar ``sort_keyed_batch`` ordering (the caller
    charges comparisons); returns a new sorted list.
    """
    keys = [key for key, _payload in batch]
    order = argsort_normalized(keys, prefix_width)
    return [batch[index] for index in order]


#: Sibling groups at least this large get a dedicated argsort call;
#: smaller groups are concatenated into one prefixed batch so a subtree
#: with thousands of small sibling lists pays one sort dispatch, not
#: thousands.
_GROUP_SOLO = 4096


def argsort_groups(
    groups: list[list[bytes]], prefix_width: int | None = None
) -> list[list[int]]:
    """Per-group stable argsorts of many key lists, batched into one call.

    Semantically ``[argsort_normalized(g) for g in groups]`` - this is
    how NEXSORT's sibling-group sorts run as a batch kernel.  Small
    groups are concatenated with a fixed-width big-endian *group-index
    prefix* and ordered with a single stable :func:`argsort_normalized`:
    the distinct ascending prefixes keep each group's rows contiguous in
    the output (groups never interleave), so slicing the global order
    back apart and rebasing indices recovers every group's local order,
    including stability (equal keys inside a group keep their relative
    input order because the global sort is stable and their prefixed
    keys are adjacent duplicates).
    """
    orders: list[list[int] | None] = [None] * len(groups)
    batch: list[tuple[int, int, int]] = []  # (group index, base, n)
    batch_keys: list[bytes] = []
    base = 0
    for index, keys in enumerate(groups):
        n = len(keys)
        if n <= 1:
            orders[index] = list(range(n))
        elif n >= _GROUP_SOLO:
            orders[index] = argsort_normalized(keys, prefix_width)
        else:
            batch.append((index, base, n))
            batch_keys.extend(keys)
            base += n
    if len(batch) == 1:
        index, _base, _n = batch[0]
        orders[index] = argsort_normalized(batch_keys, prefix_width)
    elif batch:
        pack = _U32.pack
        prefixed: list[bytes] = []
        extend = prefixed.extend
        for slot, (_index, lo, n) in enumerate(batch):
            tag = pack(slot)
            extend([tag + key for key in batch_keys[lo : lo + n]])
        order = argsort_normalized(prefixed, prefix_width)
        for _slot, (index, lo, n) in enumerate(batch):
            orders[index] = [order[lo + i] - lo for i in range(n)]
    return orders


# -- batched run reading ------------------------------------------------------


def record_puller(reader) -> Callable[[], bytes | None]:
    """Record-at-a-time pull over a RunReader with block-drain batching.

    Serves every record of the currently buffered block from one batched
    parse; the record that needs the next block is fetched through
    ``read_record`` so the block load happens at exactly the pull index a
    scalar reader would issue it - the property merge prefetchers, pool
    eviction order, and interleaved-stream seek judgments depend on.
    """
    queue: list[bytes] = []
    index = 0

    def pull() -> bytes | None:
        nonlocal queue, index
        if index >= len(queue):
            queue = reader.read_available_records()
            index = 0
            if not queue:
                return reader.read_record()
        record = queue[index]
        index += 1
        return record

    return pull


def batched_pulls(readers) -> list[Callable[[], bytes | None]]:
    """Block-drain pull functions for a bank of merge input readers.

    The loser tree refills leaves through these, so its sift pulls come
    from batch-parsed blocks ("loser-tree sift in batches") while the
    tournament itself - and its counted comparisons - is untouched.
    """
    return [record_puller(reader) for reader in readers]


def batch_keys_for(key_of) -> Callable[[list[bytes]], list]:
    """The batched form of a merge key function.

    The two key functions the columnar sorter installs have dedicated
    batch kernels; anything else (custom key functions from NEXSORT's
    degeneration mode) is wrapped, which still amortizes the pull
    machinery even though the key calls stay element-wise.
    """
    if key_of is fast_path_key:
        return batch_path_keys
    if key_of is embedded_key_of:
        return batch_embedded_keys

    def generic(records: list[bytes]) -> list:
        return [key_of(record) for record in records]

    return generic


def keyed_puller(reader, batch_keys, sidecar=None) -> Callable[[], tuple | None]:
    """Like :func:`record_puller`, but yields ``(key, record)`` pairs.

    Keys for a drained block are computed in one ``batch_keys`` call -
    this is where the merge passes' per-record key cost collapses into a
    batch kernel.  With a key ``sidecar`` (the run's normalized keys in
    record order, captured when the run was written) keys are not even
    recomputed, just indexed.  Block-load timing is the same as the
    scalar reader's (see :func:`record_puller`).
    """
    queue: list[bytes] = []
    keys: list = []
    index = 0
    consumed = 0

    if sidecar is not None:

        def pull() -> tuple | None:
            nonlocal queue, index, consumed
            if index >= len(queue):
                queue = reader.read_available_records()
                if not queue:
                    record = reader.read_record()
                    if record is None:
                        return None
                    queue = [record]
                index = 0
            entry = (sidecar[consumed], queue[index])
            index += 1
            consumed += 1
            return entry

        return pull

    def pull() -> tuple | None:
        nonlocal queue, keys, index
        if index >= len(queue):
            queue = reader.read_available_records()
            if not queue:
                record = reader.read_record()
                if record is None:
                    return None
                queue = [record]
            keys = batch_keys(queue)
            index = 0
        entry = (keys[index], queue[index])
        index += 1
        return entry

    return pull


def run_sidecar(store, run, key_of):
    """The run's key sidecar if it is valid for ``key_of``, else None.

    A sidecar holds the normalized key bytes of a run's records in record
    order, captured host-side when the run was written.  It only stands
    in for ``key_of`` when that function *is* one of the two normalized-
    bytes key functions - custom key functions (NEXSORT's degeneration
    merges) have different key semantics and must be evaluated.
    """
    if key_of is not fast_path_key and key_of is not embedded_key_of:
        return None
    keys = store.key_sidecars.get(run.run_id)
    if keys is not None and len(keys) != run.record_count:
        return None
    return keys


def merge_sidecars(store, runs, key_of) -> list[list] | None:
    """Key sidecars for every run of a merge group, or None if any miss."""
    sidecars = []
    for run in runs:
        keys = run_sidecar(store, run, key_of)
        if keys is None:
            return None
        sidecars.append(keys)
    return sidecars


def _replay_order(runs, sidecars, prefix_width):
    """(concatenated keys, merged order, run index per merged record).

    A k-way merge of sorted runs with the heap's ``(key, run index)``
    tie-break is exactly a *stable sort* of the runs' concatenation in
    run order.  The concatenation is a sequence of ``w`` presorted
    ascending runs - timsort's best case: it detects each run and
    galloping-merges them in near-linear memcmp comparisons, which
    measures several times faster here than the prefix argsort (the
    argsort cannot exploit presortedness).  ``prefix_width`` is kept
    for callers but unused on this path.
    """
    all_keys: list[bytes] = []
    for keys in sidecars:
        all_keys.extend(keys)
    order = sorted(range(len(all_keys)), key=all_keys.__getitem__)
    counts = [len(keys) for keys in sidecars]
    if _np is not None:
        run_of = _np.repeat(
            _np.arange(len(runs), dtype=_np.int64), counts
        )[_np.asarray(order, dtype=_np.int64)].tolist()
    else:
        ids: list[int] = []
        for index, count in enumerate(counts):
            ids.extend([index] * count)
        run_of = [ids[j] for j in order]
    return all_keys, order, run_of


def _replay_heads(readers):
    """Initial head record of every reader, pulled in index order.

    Matches the scalar heap's heapify-time reads: one ``read_record``
    per reader, loading each run's first block in run order.  Returns
    (heads, queues, indices) - the inlined drain state the replay loops
    advance without closure calls.
    """
    heads: list = []
    queues: list = []
    indices: list[int] = []
    for reader in readers:
        queue = reader.read_available_records()
        if queue:
            heads.append(queue[0])
            queues.append(queue)
            indices.append(1)
        else:
            heads.append(reader.read_record())
            queues.append(())
            indices.append(0)
    return heads, queues, indices


def replay_merge(
    store,
    runs,
    readers,
    sidecars,
    comparisons_per_record: int,
    keyed: bool = False,
    prefix_width: int | None = None,
):
    """Heap-kernel merge pass replayed from precomputed key sidecars.

    With every run's normalized keys already in memory
    (:func:`_replay_order`), the merge just *replays* record pulls in
    the merged order.  No per-record key evaluation, no heap ops.

    Counter parity with the scalar heap kernel:

    * records are pulled from each run strictly sequentially, and the
      *global* interleaving of pulls across runs is the merged order -
      identical to the heap's, so the shared merge-read stream sees the
      same access sequence (same seq/random judgments, same pool
      evictions, same fault trigger points); each run's next block load
      still fires right after its current record is emitted, exactly
      when the heap would refill;
    * runs are freed at the pull that discovers their exhaustion, never
      at init, matching the heap (empty runs are never freed by either);
    * the analytic ``ceil(log2 w)`` charge per emitted record is flushed
      incrementally on exit, so a device fault or early close mid-merge
      leaves exactly the scalar charge total.
    """
    all_keys, order, run_of = _replay_order(runs, sidecars, prefix_width)
    heads, queues, indices = _replay_heads(readers)
    stats = store.device.stats
    free = store.free
    yielded = 0
    try:
        steps = zip(order, run_of) if keyed else run_of
        for step in steps:
            if keyed:
                j, r = step
            else:
                r = step
            record = heads[r]
            if record is None:
                raise RunError(
                    "merge key sidecar out of sync with run contents"
                )
            yielded += 1
            if keyed:
                yield all_keys[j], record
            else:
                yield record
            index = indices[r]
            queue = queues[r]
            if index < len(queue):
                heads[r] = queue[index]
                indices[r] = index + 1
            else:
                reader = readers[r]
                queue = reader.read_available_records()
                if queue:
                    heads[r] = queue[0]
                    queues[r] = queue
                    indices[r] = 1
                else:
                    head = reader.read_record()
                    heads[r] = head
                    if head is None:
                        free(runs[r])
    finally:
        if comparisons_per_record and yielded:
            stats.record_merge_comparisons(
                comparisons_per_record * yielded
            )
    stats.record_tokens(sum(run.record_count for run in runs))


def replay_merge_to_writer(
    store,
    runs,
    readers,
    sidecars,
    comparisons_per_record: int,
    writer,
    chunk_records: int,
    prefix_width: int | None = None,
) -> list[bytes]:
    """Materialized merge pass, fully replayed into grouped writer calls.

    The no-pool, no-recovery fast path of a materialized heap-kernel
    merge: observationally identical to consuming :func:`replay_merge`
    through ``chunk_records``-sized ``write_records`` groups, minus the
    generator machinery.  Returns the output run's key sidecar (the
    merged key order) - no per-record key collection needed.
    """
    all_keys, order, run_of = _replay_order(runs, sidecars, prefix_width)
    heads, queues, indices = _replay_heads(readers)
    stats = store.device.stats
    free = store.free
    write_records = writer.write_records
    out: list[bytes] = []
    append = out.append
    emitted = 0
    try:
        for r in run_of:
            record = heads[r]
            if record is None:
                raise RunError(
                    "merge key sidecar out of sync with run contents"
                )
            emitted += 1
            append(record)
            if len(out) >= chunk_records:
                write_records(out)
                out = []
                append = out.append
            index = indices[r]
            queue = queues[r]
            if index < len(queue):
                heads[r] = queue[index]
                indices[r] = index + 1
            else:
                reader = readers[r]
                queue = reader.read_available_records()
                if queue:
                    heads[r] = queue[0]
                    queues[r] = queue
                    indices[r] = 1
                else:
                    head = reader.read_record()
                    heads[r] = head
                    if head is None:
                        free(runs[r])
        if out:
            write_records(out)
    finally:
        if comparisons_per_record and emitted:
            stats.record_merge_comparisons(
                comparisons_per_record * emitted
            )
    stats.record_tokens(sum(run.record_count for run in runs))
    return [all_keys[j] for j in order]


# -- fused scan: stored tokens -> key-path records -> run formation -----------


class _StartKeyCache:
    """Memoized start-tag key evaluation over raw ``tag+attrs`` bytes.

    The memo key is the encoded tag+attributes slice of the stored start
    token, which is exactly the information a start-computable rule may
    use - so one cache serves every rule shape with the evaluator's exact
    semantics (including numeric coercion and missing-attribute
    fallbacks).  Entries hold the normalized and codec-encoded atom
    bytes, never token objects.
    """

    __slots__ = ("spec", "names", "memo")

    def __init__(self, spec, names=None):
        self.spec = spec
        self.names = names
        self.memo: dict[bytes, tuple[bytes, bytes]] = {}

    def key_for(self, tag_attrs: bytes) -> tuple[bytes, bytes]:
        entry = self.memo.get(tag_attrs)
        if entry is not None:
            return entry
        tag, attrs = _decode_tag_attrs(tag_attrs, self.names)
        atom = self.spec.rule_for(tag).key_from_start(
            StartTag(tag, attrs)
        )
        entry = (normalized_atom_bytes(atom), encoded_atom_bytes(atom))
        if len(self.memo) >= _MEMO_LIMIT:
            self.memo.clear()
        self.memo[tag_attrs] = entry
        return entry


class ScanSpliceCache:
    """Memoized splice pieces for the fused NEXSORT document scan.

    Keyed like :class:`_StartKeyCache` by the raw ``tag+attrs`` slice of
    a stored start record, but holding the pieces the scanning phase
    splices onto the data stack: the codec-*encoded* key atom (the
    annotated start carries the atom itself, not a normalized key) and
    the encoded name field (an end-tag record's name is exactly the
    tag+attrs prefix, in either name dialect).
    """

    __slots__ = ("spec", "names", "names_coded", "memo")

    def __init__(self, spec, names=None):
        self.spec = spec
        self.names = names
        self.names_coded = names is not None
        self.memo: dict[bytes, tuple[bytes, bytes]] = {}

    def pieces_for(self, tag_attrs: bytes) -> tuple[bytes, bytes]:
        entry = self.memo.get(tag_attrs)
        if entry is not None:
            return entry
        tag, attrs = _decode_tag_attrs(tag_attrs, self.names)
        atom = self.spec.rule_for(tag).key_from_start(
            StartTag(tag, attrs)
        )
        name_field = tag_attrs[
            : _name_field_end(tag_attrs, 0, self.names_coded)
        ]
        entry = (encoded_atom_bytes(atom), name_field)
        if len(self.memo) >= _MEMO_LIMIT:
            self.memo.clear()
        self.memo[tag_attrs] = entry
        return entry


def _decode_tag_attrs(
    data: bytes, names=None
) -> tuple[str, tuple[tuple[str, str], ...]]:
    """Decode a tag+attrs byte slice (plain or dictionary-coded names)."""
    if names is not None:
        tag_id, pos = _read_varint_fast(data, 0)
        count, pos = _read_varint_fast(data, pos)
        ids = [tag_id]
        values = []
        for _ in range(count):
            name_id, pos = _read_varint_fast(data, pos)
            ids.append(name_id)
            length, pos = _read_varint_fast(data, pos)
            end = pos + length
            values.append(data[pos:end].decode("utf-8"))
            pos = end
        resolved = names.names_of(ids)
        return resolved[0], tuple(zip(resolved[1:], values))
    length, pos = _read_varint_fast(data, 0)
    end = pos + length
    tag = data[pos:end].decode("utf-8")
    count, pos = _read_varint_fast(data, end)
    attrs = []
    for _ in range(count):
        length, pos = _read_varint_fast(data, pos)
        end = pos + length
        name = data[pos:end].decode("utf-8")
        length, pos = _read_varint_fast(data, end)
        end = pos + length
        attrs.append((name, data[pos:end].decode("utf-8")))
        pos = end
    return tag, tuple(attrs)


def _encode_tag_attrs(tag: str, attrs, names=None) -> bytes:
    out = bytearray()
    if names is not None:
        out += names.intern_frame(tag)
        write_varint(out, len(attrs))
        for name, value in attrs:
            out += names.intern_frame(name)
            encoded = value.encode("utf-8")
            write_varint(out, len(encoded))
            out += encoded
        return bytes(out)
    encoded = tag.encode("utf-8")
    write_varint(out, len(encoded))
    out += encoded
    write_varint(out, len(attrs))
    for name, value in attrs:
        encoded = name.encode("utf-8")
        write_varint(out, len(encoded))
        out += encoded
        encoded = value.encode("utf-8")
        write_varint(out, len(encoded))
        out += encoded
    return bytes(out)


def _skip_frame(data: bytes, pos: int) -> int:
    """End offset of a length-framed field starting at ``pos``."""
    length = data[pos]
    pos += 1
    if length >= 0x80:
        length, pos = _read_varint_fast(data, pos - 1)
    return pos + length


def _skip_varint(data: bytes, pos: int) -> int:
    while data[pos] >= 0x80:
        pos += 1
    return pos + 1


def _name_field_end(data: bytes, pos: int, names_coded: bool) -> int:
    """End offset of one encoded name (id varint or string frame)."""
    if names_coded:
        return _skip_varint(data, pos)
    return _skip_frame(data, pos)


def _skip_tag_attrs(data: bytes, pos: int, names_coded: bool) -> int:
    """End offset of a record's tag+attributes fields starting at ``pos``."""
    if names_coded:
        pos = _skip_varint(data, pos)  # tag id
        count, pos = _read_varint_fast(data, pos)
        for _ in range(count):
            pos = _skip_varint(data, pos)  # attr name id
            pos = _skip_frame(data, pos)  # attr value
        return pos
    pos = _skip_frame(data, pos)  # tag
    count, pos = _read_varint_fast(data, pos)
    for _ in range(count):
        pos = _skip_frame(data, pos)  # attr name
        pos = _skip_frame(data, pos)  # attr value
    return pos


def _skip_atom(data: bytes, pos: int) -> int:
    """End offset of one codec-encoded key atom starting at ``pos``."""
    kind = data[pos]
    pos += 1
    if kind == 0:
        return pos
    if kind == 1:
        return pos + 8
    if kind == 2:
        return _skip_frame(data, pos)
    raise CodecError(f"unknown key atom kind {kind}")


def _normalize_encoded_atom(data: bytes, pos: int) -> tuple[bytes, int]:
    """(normalized key bytes, end offset) of a codec-encoded key atom.

    Same normalization as the merge engine's ``_normalize_atom``, driven
    straight off the encoded bytes (no atom tuple is built).
    """
    kind = data[pos]
    pos += 1
    if kind == 2:
        length = data[pos]
        pos += 1
        if length >= 0x80:
            length, pos = _read_varint_fast(data, pos - 1)
        end = pos + length
        raw = data[pos:end]
        if b"\x00" in raw:
            raw = raw.replace(b"\x00", b"\x00\xff")
        return b"\x02" + raw + b"\x00", end
    if kind == 1:
        return (
            _normalize_number(_DOUBLE_LE.unpack_from(data, pos)[0]),
            pos + 8,
        )
    if kind == 0:
        return b"\x00", pos
    raise CodecError(f"unknown key atom kind {kind}")


_ELEMENT_HEADS = [b"\x01" + varint_bytes(depth) for depth in range(64)]


def _element_head(depth: int) -> bytes:
    if depth < 64:
        return _ELEMENT_HEADS[depth]
    return b"\x01" + varint_bytes(depth)


def form_runs_columnar(document, spec, former, device) -> bool:
    """Fused scan of a stored document into run formation.

    One loop replaces ``iter_events -> KeyEvaluator.annotate ->
    records_from_annotated_events -> encode_record``: stored token records
    are drained block-wise, key-path records are assembled by splicing the
    already-encoded tag/attribute/text bytes, and the former receives
    normalized ``bytes`` keys.  Emission order (element end-tag order),
    record bytes, token charges, and input-scan block reads are identical
    to the scalar pipeline.

    Every storage dialect is covered: plain, dictionary-coded names
    (tag+attrs slices splice verbatim - key-path records use the same
    name encoding), and end-tag-eliminated streams (a dedicated loop
    synthesizes element closes from level transitions with
    ``restore_end_tags``' exact rules).  Returns False - caller must run
    the scalar path - only for non-start-computable specs.  Raises the
    scalar path's own error for streams it rejects (annotated pointers,
    unbalanced nesting).
    """
    if not spec.start_computable:
        return False
    compaction = document.compaction
    names = compaction.names if compaction is not None else None
    if compaction is not None and compaction.eliminate_end_tags:
        return _form_runs_compact(document, spec, former, device, names)
    reader = document.store.open_reader(
        document.handle, category="input_scan"
    )
    read_available = reader.read_available_records
    read_one = reader.read_record
    cache = _StartKeyCache(spec, names)
    key_for = cache.key_for
    add = former.bulk_adder()
    join = b"".join

    # Per-open-element stacks.  norm/enc hold the *cumulative* path of
    # the open element (parent path + own component), so closing an
    # element never re-derives ancestors.
    norm_stack: list[bytes] = [b""]
    enc_stack: list[bytes] = [b""]
    ta_stack: list[bytes] = []
    text_stack: list = []
    next_pos = 0
    records = 0

    while True:
        # Drain the buffered block in one batched parse; the record that
        # needs the next block goes through read_record so the block
        # load fires at the identical pull index (see record_puller).
        chunk = read_available()
        if not chunk:
            record = read_one()
            if record is None:
                break
            chunk = (record,)
        for record in chunk:
            token_type = record[0]
            if token_type == TYPE_START:
                if record[1]:
                    # Annotated start (rare outside compaction): decode, then
                    # re-encode the bare tag+attrs the record layout needs.
                    token = document.codec.decode(record)
                    tag_attrs = _encode_tag_attrs(token.tag, token.attrs, names)
                else:
                    tag_attrs = record[2:]
                pos = next_pos
                next_pos += 1
                norm_atom, enc_atom = key_for(tag_attrs)
                if pos < 0x80:
                    pos_varint = _VARINT1[pos]
                else:
                    value = pos
                    encoded = bytearray()
                    while value >= 0x80:
                        encoded.append(value & 0x7F | 0x80)
                        value >>= 7
                    encoded.append(value)
                    pos_varint = bytes(encoded)
                norm_stack.append(
                    norm_stack[-1] + norm_atom + pos.to_bytes(8, "big")
                )
                enc_stack.append(enc_stack[-1] + enc_atom + pos_varint)
                ta_stack.append(tag_attrs)
                text_stack.append(None)
            elif token_type == TYPE_END:
                if not ta_stack:
                    raise CodecError("unbalanced end tag during columnar scan")
                tag_attrs = ta_stack.pop()
                pending = text_stack.pop()
                norm = norm_stack.pop()
                enc = enc_stack.pop()
                if pending is None:
                    text_frame = b"\x00"
                elif type(pending) is list:
                    joined = join(
                        [_frame_payload(frame) for frame in pending]
                    )
                    text_frame = varint_bytes(len(joined)) + joined
                else:
                    text_frame = pending
                depth = len(ta_stack) + 1
                add(
                    norm,
                    join(
                        (_element_head(depth), enc, tag_attrs, text_frame)
                    ),
                )
                records += 1
            elif token_type == TYPE_TEXT:
                if record[1]:
                    token = document.codec.decode(record)
                    frame = _frame_string(token.text)
                else:
                    frame = record[2:]
                if text_stack:
                    pending = text_stack[-1]
                    if pending is None:
                        text_stack[-1] = frame
                    elif type(pending) is list:
                        pending.append(frame)
                    else:
                        text_stack[-1] = [pending, frame]
            elif token_type == TYPE_POINTER:
                # Scalar scan rejects pointers too (KeyEvaluator.annotate).
                raise SortSpecError(
                    "unexpected run pointer in a document scan"
                )
            else:
                raise CodecError(f"unknown token type byte {token_type}")
    if ta_stack:
        raise CodecError("unbalanced event stream during columnar scan")
    device.stats.record_tokens(records)
    return True


def _form_runs_compact(document, spec, former, device, names) -> bool:
    """Fused scan of an end-tag-eliminated document into run formation.

    The compacted twin of the plain loop in :func:`form_runs_columnar`:
    there are no stored end tags, so element closes are synthesized from
    level transitions with ``restore_end_tags``' exact rules (a start or
    pointer at level ``l`` closes opens at levels ``>= l``; a text at
    level ``l`` closes opens deeper than ``l``; end of stream closes
    everything).  Emission order, record bytes, and token charges match
    the scalar ``restore_end_tags -> annotate -> records -> encode``
    pipeline.
    """
    names_coded = names is not None
    reader = document.store.open_reader(
        document.handle, category="input_scan"
    )
    read_available = reader.read_available_records
    read_one = reader.read_record
    cache = _StartKeyCache(spec, names)
    key_for = cache.key_for
    add = former.bulk_adder()
    join = b"".join

    norm_stack: list[bytes] = [b""]
    enc_stack: list[bytes] = [b""]
    ta_stack: list[bytes] = []
    text_stack: list = []
    open_levels: list[int] = []
    next_pos = 0
    records = 0

    def close_top() -> None:
        nonlocal records
        tag_attrs = ta_stack.pop()
        pending = text_stack.pop()
        if pending is None:
            text_frame = b"\x00"
        elif type(pending) is list:
            joined = join([_frame_payload(frame) for frame in pending])
            text_frame = varint_bytes(len(joined)) + joined
        else:
            text_frame = pending
        depth = len(ta_stack) + 1
        norm = norm_stack.pop()
        enc = enc_stack.pop()
        add(norm, join((_element_head(depth), enc, tag_attrs, text_frame)))
        open_levels.pop()
        records += 1

    while True:
        chunk = read_available()
        if not chunk:
            record = read_one()
            if record is None:
                break
            chunk = (record,)
        for record in chunk:
            token_type = record[0]
            if token_type == TYPE_START:
                flags = record[1]
                if flags == 4:  # level-annotated start, the stored form
                    end = _skip_tag_attrs(record, 2, names_coded)
                    tag_attrs = record[2:end]
                    level, _ = _read_varint_fast(record, end)
                else:
                    token = document.codec.decode(record)
                    if token.level is None:
                        raise CodecError(
                            "compacted stream contains a start without a level"
                        )
                    tag_attrs = _encode_tag_attrs(
                        token.tag, token.attrs, names
                    )
                    level = token.level
                while open_levels and open_levels[-1] >= level:
                    close_top()
                pos = next_pos
                next_pos += 1
                norm_atom, enc_atom = key_for(tag_attrs)
                if pos < 0x80:
                    pos_varint = _VARINT1[pos]
                else:
                    value = pos
                    encoded = bytearray()
                    while value >= 0x80:
                        encoded.append(value & 0x7F | 0x80)
                        value >>= 7
                    encoded.append(value)
                    pos_varint = bytes(encoded)
                norm_stack.append(
                    norm_stack[-1] + norm_atom + pos.to_bytes(8, "big")
                )
                enc_stack.append(enc_stack[-1] + enc_atom + pos_varint)
                ta_stack.append(tag_attrs)
                text_stack.append(None)
                open_levels.append(level)
            elif token_type == TYPE_TEXT:
                if record[1] & 4:
                    end = _skip_frame(record, 2)
                    frame = record[2:end]
                    level, _ = _read_varint_fast(record, end)
                    while open_levels and open_levels[-1] > level:
                        close_top()
                else:
                    frame = record[2:]
                if text_stack:
                    pending = text_stack[-1]
                    if pending is None:
                        text_stack[-1] = frame
                    elif type(pending) is list:
                        pending.append(frame)
                    else:
                        text_stack[-1] = [pending, frame]
            elif token_type == TYPE_END:
                raise CodecError(
                    "compacted stream already contains end tags"
                )
            elif token_type == TYPE_POINTER:
                raise SortSpecError(
                    "unexpected run pointer in a document scan"
                )
            else:
                raise CodecError(f"unknown token type byte {token_type}")
    while open_levels:
        close_top()
    device.stats.record_tokens(records)
    return True


def _frame_payload(frame: bytes) -> bytes:
    """Strip the varint length header of a string frame."""
    _, pos = _read_varint_fast(frame, 0)
    return frame[pos:]


def _frame_string(text: str) -> bytes:
    encoded = text.encode("utf-8")
    return varint_bytes(len(encoded)) + encoded


# -- fused internal subtree sorts ----------------------------------------------


class _RawNode:
    """One element (or collapsed pointer) of a subtree, from raw records.

    The analogue of ``subtree._Node`` that never materializes tokens:
    ``tag_attrs`` keeps the record's encoded tag+attributes slice
    verbatim (None for pointers), ``body`` keeps a pointer's
    run_id/element_count/payload_bytes varint slice (None for elements),
    ``atom`` the encoded key atom slice (None = missing), and ``texts``
    collects encoded string frames (None / one frame / list of frames).
    """

    __slots__ = ("tag_attrs", "body", "texts", "children", "atom", "pos")

    def __init__(self, tag_attrs, body, atom, pos):
        self.tag_attrs = tag_attrs
        self.body = body
        self.texts = None
        self.children: list[_RawNode] = []
        self.atom = atom
        self.pos = pos


def _attach_raw_text(node: _RawNode, frame: bytes) -> None:
    pending = node.texts
    if pending is None:
        node.texts = frame
    elif type(pending) is list:
        pending.append(frame)
    else:
        node.texts = [pending, frame]


def _attach_raw_node(node, root, stack):
    """build_subtree's attach rule: parent, else root, else error."""
    if stack:
        stack[-1].children.append(node)
        return root
    if root is None:
        return node
    raise CodecError("subtree tokens have two roots")


def _raw_pointer(record: bytes) -> tuple[_RawNode, int]:
    """(_RawNode, element_count) of an encoded RunPointer record."""
    flags = record[1]
    pos = _skip_varint(record, 2)  # run_id
    count, pos = _read_varint_fast(record, pos)  # element_count
    pos = _skip_varint(record, pos)  # payload_bytes
    body = record[2:pos]
    atom = None
    position = 0
    if flags & 1:
        end = _skip_atom(record, pos)
        atom = record[pos:end]
        pos = end
    if flags & 2:
        position, pos = _read_varint_fast(record, pos)
    return _RawNode(None, body, atom, position), count


def _parse_subtree_plain(
    records: list[bytes], names_coded: bool
) -> tuple[_RawNode, int, int]:
    """(root, units, real elements) of a plain-mode record subtree."""
    root: _RawNode | None = None
    stack: list[_RawNode] = []
    units = 0
    real = 0
    for record in records:
        token_type = record[0]
        if token_type == TYPE_START:
            flags = record[1]
            end = _skip_tag_attrs(record, 2, names_coded)
            tag_attrs = record[2:end]
            atom = None
            position = 0
            if flags & 1:
                stop = _skip_atom(record, end)
                atom = record[end:stop]
                end = stop
            if flags & 2:
                position, end = _read_varint_fast(record, end)
            node = _RawNode(tag_attrs, None, atom, position)
            root = _attach_raw_node(node, root, stack)
            stack.append(node)
            units += 1
            real += 1
        elif token_type == TYPE_END:
            if not stack:
                raise CodecError("subtree tokens are unbalanced")
            node = stack.pop()
            flags = record[1]
            end = _name_field_end(record, 2, names_coded)
            # End tags may carry the element's key/pos (subtree-evaluated
            # criteria); they override the start's, as build_subtree does.
            if flags & 1:
                stop = _skip_atom(record, end)
                node.atom = record[end:stop]
                end = stop
            if flags & 2:
                node.pos, end = _read_varint_fast(record, end)
        elif token_type == TYPE_TEXT:
            if stack:
                flags = record[1]
                if flags & 4:
                    _attach_raw_text(
                        stack[-1], record[2 : _skip_frame(record, 2)]
                    )
                else:
                    _attach_raw_text(stack[-1], record[2:])
        elif token_type == TYPE_POINTER:
            node, count = _raw_pointer(record)
            root = _attach_raw_node(node, root, stack)
            units += 1
            real += count
        else:
            raise CodecError(f"unknown token type byte {token_type}")
    if stack:
        raise CodecError("subtree tokens are unbalanced")
    if root is None:
        raise CodecError("subtree tokens contain no element")
    return root, units, real


def _parse_subtree_compact(
    records: list[bytes], names_coded: bool
) -> tuple[_RawNode, int, int]:
    """(root, units, real elements) of a compacted-mode record subtree."""
    root: _RawNode | None = None
    stack: list[_RawNode] = []
    levels: list[int] = []
    units = 0
    real = 0
    for record in records:
        token_type = record[0]
        if token_type == TYPE_TEXT:
            flags = record[1]
            if flags & 4:
                end = _skip_frame(record, 2)
                frame = record[2:end]
                level, _ = _read_varint_fast(record, end)
                while levels and levels[-1] > level:
                    levels.pop()
                    stack.pop()
            else:
                frame = record[2:]
            if stack:
                _attach_raw_text(stack[-1], frame)
            continue
        if token_type == TYPE_START:
            flags = record[1]
            end = _skip_tag_attrs(record, 2, names_coded)
            tag_attrs = record[2:end]
            atom = None
            position = 0
            if flags & 1:
                stop = _skip_atom(record, end)
                atom = record[end:stop]
                end = stop
            if flags & 2:
                position, end = _read_varint_fast(record, end)
            if not flags & 4:
                raise CodecError("compacted token without level")
            level, _ = _read_varint_fast(record, end)
            while levels and levels[-1] >= level:
                levels.pop()
                stack.pop()
            node = _RawNode(tag_attrs, None, atom, position)
            root = _attach_raw_node(node, root, stack)
            stack.append(node)
            levels.append(level)
            units += 1
            real += 1
        elif token_type == TYPE_POINTER:
            flags = record[1]
            if not flags & 4:
                raise CodecError("compacted token without level")
            node, count = _raw_pointer(record)
            # Pointer level: the last annotation field; skip key/pos by flags.
            pos = 2 + len(node.body)
            if flags & 1:
                pos = _skip_atom(record, pos)
            if flags & 2:
                pos = _skip_varint(record, pos)
            level, _ = _read_varint_fast(record, pos)
            while levels and levels[-1] >= level:
                levels.pop()
                stack.pop()
            root = _attach_raw_node(node, root, stack)
            units += 1
            real += count
        else:
            raise CodecError(
                f"unexpected token in compact subtree records: "
                f"type byte {token_type}"
            )
    if root is None:
        raise CodecError("subtree tokens contain no element")
    return root, units, real


def sort_raw_tree(
    root: _RawNode,
    sort_levels: int | None,
    stats,
    prefix_width: int | None = None,
    counted: bool = False,
) -> None:
    """Sort every sibling list of a raw-record subtree, batched.

    The batch form of ``subtree.sort_node_tree``: one DFS gathers every
    sibling group that the scalar path would sort (``n > 1``, level
    within ``sort_levels``), group keys are the engine-normalized
    ``atom + 8-byte position`` bytes (order- and equality-faithful to
    the scalar ``(key, pos)`` tuple compare), and :func:`argsort_groups`
    orders all groups in one batched stable argsort.  The analytic
    ``n * ceil(log2 n)`` comparison charge per group is identical to the
    scalar path's; charge *order* inside the surrounding subtree-sort
    span is not observable, so the total is recorded in one call.

    ``counted=True`` (comparison-charging mode) keys each group down to
    dense ranks via the batched order and replays a counted timsort over
    the rank ints (:func:`~repro.merge.engine.argsort_counted`).  Because
    the rank lists are order- and equality-isomorphic to the scalar
    ``(key, pos)`` tuples, the replay performs - and charges - exactly
    the comparison sequence of the scalar per-group counted sort, while
    key derivation and the heavy lifting stay batched.
    """
    groups: list[list[_RawNode]] = []
    group_keys: list[list[bytes]] = []
    memo: dict[bytes, bytes] = {}
    pack_pos = _U64.pack
    work: list[tuple[_RawNode, int]] = [(root, 1)]
    while work:
        node, level = work.pop()
        children = node.children
        if (sort_levels is None or level <= sort_levels) and len(children) > 1:
            keys = []
            append = keys.append
            for child in children:
                atom = child.atom
                if atom is None:
                    norm = b"\x00"
                else:
                    norm = memo.get(atom)
                    if norm is None:
                        norm, _ = _normalize_encoded_atom(atom, 0)
                        memo[atom] = norm
                append(norm + pack_pos(child.pos))
            groups.append(children)
            group_keys.append(keys)
        for child in children:
            if child.body is None:  # pointers are leaves
                work.append((child, level + 1))
    if not groups:
        return
    if counted:
        # Charge per group, in DFS gather order, exactly as the scalar
        # path charges per sibling-group sort.
        for children, keys, order in zip(
            groups, group_keys, argsort_groups(group_keys, prefix_width)
        ):
            ranks = dense_ranks(keys, order)
            replay = argsort_counted(ranks, stats)
            children[:] = [children[i] for i in replay]
        return
    comparisons = 0
    for children, order in zip(groups, argsort_groups(group_keys, prefix_width)):
        children[:] = [children[i] for i in order]
        n = len(children)
        comparisons += n * max(1, ceil(log2(n)))
    stats.record_comparisons(comparisons)


def _serialize_raw_tree(
    root: _RawNode, base_level: int, compact: bool, names_coded: bool
) -> list[bytes]:
    """Encoded run records of a sorted raw subtree (annotations stripped).

    Byte-for-byte what ``serialize_node_tree`` + ``codec.encode`` emit:
    run tokens carry no keys or positions; starts/texts/pointers carry
    levels only in compacted mode; plain mode appends end tags.
    """
    out: list[bytes] = []
    append = out.append
    level_tails: dict[int, bytes] = {}
    join = b"".join
    work: list = [(root, base_level)]
    while work:
        item = work.pop()
        if type(item) is bytes:  # pre-built end record
            append(item)
            continue
        node, level = item
        if compact:
            tail = level_tails.get(level)
            if tail is None:
                tail = varint_bytes(level)
                level_tails[level] = tail
        if node.body is not None:  # pointer
            if compact:
                append(b"\x04\x04" + node.body + tail)
            else:
                append(b"\x04\x00" + node.body)
            continue
        tag_attrs = node.tag_attrs
        if compact:
            append(b"\x01\x04" + tag_attrs + tail)
        else:
            append(b"\x01\x00" + tag_attrs)
        texts = node.texts
        if texts is not None:
            if type(texts) is list:
                joined = join([_frame_payload(frame) for frame in texts])
                frame = varint_bytes(len(joined)) + joined
            else:
                frame = texts
            if compact:
                append(b"\x02\x04" + frame + tail)
            else:
                append(b"\x02\x00" + frame)
        if not compact:
            work.append(
                b"\x03\x00" + tag_attrs[: _name_field_end(tag_attrs, 0, names_coded)]
            )
        children = node.children
        if children:
            next_level = level + 1
            for child in reversed(children):
                work.append((child, next_level))
    return out


def subtree_root_summary(
    records: list[bytes], compact: bool, names_coded: bool
) -> tuple[bytes | None, int]:
    """(encoded root key atom or None, root position) of a subtree.

    Reproduces ``SubtreeSorter.sort_tokens``' root-key rule exactly: the
    root's start annotations, falling back - in plain mode, when the
    start's key is missing - to the key/pos the final end tag carries
    (subtree-evaluated criteria).
    """
    first = records[0]
    if first[0] != TYPE_START and first[0] != TYPE_POINTER:
        raise CodecError("subtree records do not begin with an element")
    flags = first[1]
    if first[0] == TYPE_POINTER:
        pos = _skip_varint(first, 2)
        pos = _skip_varint(first, pos)
        pos = _skip_varint(first, pos)
    else:
        pos = _skip_tag_attrs(first, 2, names_coded)
    atom = None
    position = 0
    if flags & 1:
        end = _skip_atom(first, pos)
        atom = first[pos:end]
        pos = end
    if flags & 2:
        position, pos = _read_varint_fast(first, pos)
    if not compact and (atom is None or atom[0] == 0):
        last = records[-1]
        if last[0] == TYPE_END and last[1] & 1:
            lpos = _name_field_end(last, 2, names_coded)
            lend = _skip_atom(last, lpos)
            atom = last[lpos:lend]
            if last[1] & 2:
                position, _ = _read_varint_fast(last, lend)
    return atom, position


def sort_subtree_records(
    records: list[bytes],
    compact: bool,
    names_coded: bool,
    base_level: int,
    sort_levels: int | None,
    stats,
    prefix_width: int | None = None,
    counted: bool = False,
) -> tuple[list[bytes], int, int]:
    """Fused internal subtree sort over raw encoded data-stack records.

    ``build_subtree -> sort_node_tree -> serialize_node_tree -> encode``
    without decoding a single token: records are parsed into a raw node
    tree by field offsets, sibling groups are ordered with one batched
    argsort (:func:`sort_raw_tree`), and output records are spliced from
    the input's own encoded slices.  Returns ``(out_records, units,
    real_elements)``; output bytes, order, and the comparison charge are
    identical to the scalar internal path (``counted=True`` replays the
    counted comparison sequence exactly - see :func:`sort_raw_tree`).
    """
    if compact:
        root, units, real = _parse_subtree_compact(records, names_coded)
    else:
        root, units, real = _parse_subtree_plain(records, names_coded)
    sort_raw_tree(root, sort_levels, stats, prefix_width, counted=counted)
    out = _serialize_raw_tree(root, base_level, compact, names_coded)
    return out, units, real


# -- fused output: sorted records -> stored output tokens ---------------------


def emit_output_columnar(
    stream: Iterable[bytes],
    writer,
    device,
    strip_embedded: bool = False,
    chunk_records: int = 0,
    names_coded: bool = False,
    emit_ends: bool = True,
) -> None:
    """Fused output phase: path-sorted records back to stored tokens.

    Turns path-sorted element records back into the stored token stream by
    splicing: the output start/text/end token encodings are byte slices of
    the record plus constant headers, so no token objects, string decodes,
    or re-encodes happen.  Token counts and the emitted byte stream are
    identical to ``tokens_from_sorted_records`` + ``codec.encode``.

    ``names_coded`` switches tag/attribute-name parsing to dictionary id
    varints (the spliced slices stay dialect-consistent end to end);
    ``emit_ends=False`` is end-tag-eliminated output - no end records,
    depth tracking only (``tokens_from_sorted_records`` with
    ``emit_end_tags=False``).

    ``chunk_records > 0`` additionally groups writer calls (safe only when
    no buffer pool or recovery context is attached - grouping reorders
    writes relative to the final merge's reads, which a shared pool would
    observe); 0 writes token-at-a-time, preserving the exact global
    device-access interleaving.
    """
    stats = device.stats
    open_tags: list[bytes] = []
    out: list[bytes] = []
    append = out.append
    pending_tokens = 0

    def flush() -> None:
        nonlocal pending_tokens
        if out:
            # write_records frames the payloads synchronously, so the
            # list can be reused (keeps `append` a stable bound method).
            writer.write_records(out)
            stats.record_tokens(pending_tokens)
            out.clear()
            pending_tokens = 0

    level_tails: dict[int, bytes] = {}
    for record in stream:
        if strip_embedded:
            length = record[0]
            if length < 0x80:
                record = record[1 + length :]
            else:
                length, pos = _read_varint_fast(record, 0)
                record = record[pos + length :]
        if record[0] != 1:  # element records only on this path
            raise CodecError(
                "columnar output emit expects element key-path records"
            )
        depth = record[1]
        pos = 2
        if depth >= 0x80:
            depth, pos = _read_varint_fast(record, 1)
        if depth == 0:
            raise CodecError("key-path record with empty path")
        # Skip the (atom, position) path components; varints inlined -
        # this loop runs once per output element.
        for _ in range(depth):
            kind = record[pos]
            pos += 1
            if kind == 2:
                length = record[pos]
                pos += 1
                if length >= 0x80:
                    length, pos = _read_varint_fast(record, pos - 1)
                pos += length
            elif kind == 1:
                pos += 8
            elif kind != 0:
                raise CodecError(f"unknown key atom kind {kind}")
            while record[pos] >= 0x80:
                pos += 1
            pos += 1
        tag_start = pos
        if names_coded:
            while record[pos] >= 0x80:  # tag id varint
                pos += 1
            pos += 1
            tag_frame = record[tag_start:pos]
            count = record[pos]
            pos += 1
            if count >= 0x80:
                count, pos = _read_varint_fast(record, pos - 1)
            for _ in range(count):
                while record[pos] >= 0x80:  # attr name id varint
                    pos += 1
                pos += 1
                length = record[pos]  # attr value frame
                pos += 1
                if length >= 0x80:
                    length, pos = _read_varint_fast(record, pos - 1)
                pos += length
        else:
            length = record[pos]
            pos += 1
            if length >= 0x80:
                length, pos = _read_varint_fast(record, pos - 1)
            pos += length
            tag_frame = record[tag_start:pos]
            count = record[pos]
            pos += 1
            if count >= 0x80:
                count, pos = _read_varint_fast(record, pos - 1)
            for _ in range(2 * count):
                length = record[pos]
                pos += 1
                if length >= 0x80:
                    length, pos = _read_varint_fast(record, pos - 1)
                pos += length
        tag_attrs = record[tag_start:pos]
        text_frame = record[pos:]

        while len(open_tags) >= depth:
            tag = open_tags.pop()
            if emit_ends:
                append(b"\x03\x00" + tag)
                pending_tokens += 1
        if len(open_tags) != depth - 1:
            raise CodecError(
                "key-path records out of order: jumped from depth "
                f"{len(open_tags)} to {depth}"
            )
        # Output starts carry their absolute level (base level 1 ->
        # level == depth), exactly as tokens_from_sorted_records emits.
        tail = level_tails.get(depth)
        if tail is None:
            tail = varint_bytes(depth)
            level_tails[depth] = tail
        append(b"\x01\x04" + tag_attrs + tail)
        pending_tokens += 1
        if text_frame != b"\x00":
            append(b"\x02\x00" + text_frame)
            pending_tokens += 1
        open_tags.append(tag_frame)

        if chunk_records:
            if len(out) >= chunk_records:
                flush()
        else:
            flush()
    while open_tags:
        tag = open_tags.pop()
        if emit_ends:
            append(b"\x03\x00" + tag)
            pending_tokens += 1
    flush()
