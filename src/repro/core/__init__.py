"""NEXSORT core: the paper's primary contribution."""

from .idref import (
    ByIdRef,
    nexsort_with_idrefs,
    resolve_idref_keys,
    sortable_atom_string,
)
from .nexsort import NexSorter, NexsortOptions, nexsort
from .output import output_phase
from .report import NexsortReport, SubtreeSortInfo
from .subtree import SubtreeResult, SubtreeSorter

__all__ = [
    "ByIdRef",
    "NexSorter",
    "nexsort_with_idrefs",
    "resolve_idref_keys",
    "sortable_atom_string",
    "NexsortOptions",
    "NexsortReport",
    "SubtreeResult",
    "SubtreeSorter",
    "SubtreeSortInfo",
    "nexsort",
    "output_phase",
]
