"""NEXSORT's output phase (Figure 4, Lines 13-21).

After the sorting phase, the document is a tree of sorted runs connected by
run pointers (Figure 3).  The output phase performs a depth-first traversal
of that tree, implemented - as in the paper - with an explicit *output
location stack* rather than recursion, "because we wish to control I/Os
explicitly in the rare case that the call stack grows bigger than the
internal memory".

When a pointer is encountered, the current position within the current run
is pushed and reading jumps to the nested run; when a run ends, the saved
position is popped and reading resumes there - re-reading the block that
holds the resume offset, which is exactly the ``1 + p(b)`` accesses per run
block that Lemma 4.12 counts.

Non-pointer records are copied byte-for-byte into the output document (the
tokens inside runs already carry no sorting annotations).
"""

from __future__ import annotations

from ..errors import RunError
from ..io.runs import RunHandle, RunStore
from ..io.stacks import ExternalStack
from ..xml.codec import (
    TokenCodec,
    is_pointer_record,
    read_varint,
    write_varint,
)
from ..xml.tokens import RunPointer


def output_phase(
    store: RunStore, root_pointer: RunPointer
) -> tuple[RunHandle, int, int]:
    """Expand the tree of sorted runs into the final output document.

    Returns (output run handle, output-location-stack page-ins, page-outs).
    The output-location stack uses one block of memory; nested run
    descents deeper than that spill, which is the Lemma 4.13 cost.
    """
    device = store.device
    codec = TokenCodec()  # only used to decode pointer records
    location_stack = ExternalStack(device, 1, "output_stack")
    writer = store.create_writer("output")

    current = store.get(root_pointer.run_id)
    reader = store.open_reader(current, category="run_read")
    finished_runs = []

    while True:
        record = reader.read_record()
        if record is None:
            finished_runs.append(current)
            if location_stack.is_empty:
                break
            run_id, offset = _decode_location(location_stack.pop())
            current = store.get(run_id)
            # Resuming mid-run re-reads the block holding the offset.
            reader = store.open_reader(
                current, offset=offset, category="run_read"
            )
            continue
        if is_pointer_record(record):
            pointer = codec.decode(record)
            if not isinstance(pointer, RunPointer):  # pragma: no cover
                raise RunError("corrupt run: bad pointer record")
            location_stack.push(
                _encode_location(current.run_id, reader.tell())
            )
            current = store.get(pointer.run_id)
            reader = store.open_reader(current, category="run_read")
            continue
        writer.write_record(record)
        device.stats.record_tokens(1)

    handle = writer.finish()
    for run in finished_runs:
        store.free(run)
    return handle, location_stack.page_ins, location_stack.page_outs


def _encode_location(run_id: int, offset: int) -> bytes:
    out = bytearray()
    write_varint(out, run_id)
    write_varint(out, offset)
    return bytes(out)


def _decode_location(data: bytes) -> tuple[int, int]:
    run_id, pos = read_varint(data, 0)
    offset, _ = read_varint(data, pos)
    return run_id, offset
