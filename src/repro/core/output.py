"""NEXSORT's output phase (Figure 4, Lines 13-21).

After the sorting phase, the document is a tree of sorted runs connected by
run pointers (Figure 3).  The output phase performs a depth-first traversal
of that tree, implemented - as in the paper - with an explicit *output
location stack* rather than recursion, "because we wish to control I/Os
explicitly in the rare case that the call stack grows bigger than the
internal memory".

When a pointer is encountered, the current position within the current run
is pushed and reading jumps to the nested run; when a run ends, the saved
position is popped and reading resumes there - re-reading the block that
holds the resume offset, which is exactly the ``1 + p(b)`` accesses per run
block that Lemma 4.12 counts.

When the store has a :class:`~repro.io.bufferpool.BufferPool` attached, the
block holding each saved resume offset is *pinned* for the duration of the
nested descent, so the resume re-read is a guaranteed cache hit: the
``p(b)`` re-reads of Lemma 4.12 stop costing device I/O.  With no pool the
phase behaves exactly as before.

Non-pointer records are copied byte-for-byte into the output document (the
tokens inside runs already carry no sorting annotations).
"""

from __future__ import annotations

from ..errors import RunError
from ..io.runs import _LEN, RunHandle, RunStore
from ..io.stacks import ExternalStack
from ..xml.codec import (
    TokenCodec,
    is_pointer_record,
    read_varint,
    write_varint,
)
from ..xml.tokens import RunPointer


def output_phase(
    store: RunStore, root_pointer: RunPointer, tracer=None,
    columnar: bool = False,
) -> tuple[RunHandle, int, int]:
    """Expand the tree of sorted runs into the final output document.

    Returns (output run handle, output-location-stack page-ins, page-outs).
    The output-location stack uses one block of memory; nested run
    descents deeper than that spill, which is the Lemma 4.13 cost.
    A tracer records a summary event when the walk completes (the caller
    owns the enclosing ``output-walk`` span).

    ``columnar=True`` copies block-drained record batches with one
    grouped writer call instead of one ``write_record`` per token -
    device-sequence-identical (same framed output stream, so blocks
    fill and flush at the same offsets; reads fire at the same pull
    indices), just less interpreter work per record.
    """
    device = store.device
    pool = store.pool
    codec = TokenCodec()  # only used to decode pointer records
    location_stack = ExternalStack(store.io_target, 1, "output_stack")
    writer = store.create_writer("output")

    # Readahead is explicitly off: the traversal jumps between runs, so
    # prefetched blocks would be evicted before they are consumed.  The
    # pool still serves the resume re-reads (pinned below) from cache.
    current = store.get(root_pointer.run_id)
    reader = store.open_reader(current, category="run_read", readahead=0)
    finished_runs = []
    # Parallel to the location stack: the pinned resume block per open
    # descent (None where pinning was not possible / no pool).
    pinned: list[int | None] = []

    def resume_parent() -> bool:
        """Pop back to the saved parent position; False at walk end."""
        nonlocal current, reader
        finished_runs.append(current)
        if location_stack.is_empty:
            return False
        run_id, offset = _decode_location(location_stack.pop())
        if pinned:
            pinned_block = pinned.pop()
            if pinned_block is not None:
                pool.unpin(pinned_block)
        current = store.get(run_id)
        # Resuming mid-run re-reads the block holding the offset.
        reader = store.open_reader(
            current, offset=offset, category="run_read", readahead=0
        )
        return True

    def descend(pointer_record: bytes, offset: int) -> None:
        """Jump into a nested run, saving the post-pointer offset."""
        nonlocal current, reader
        pointer = codec.decode(pointer_record)
        if not isinstance(pointer, RunPointer):  # pragma: no cover
            raise RunError("corrupt run: bad pointer record")
        location_stack.push(_encode_location(current.run_id, offset))
        if pool is not None:
            pinned.append(_pin_resume_block(pool, current, offset))
        current = store.get(pointer.run_id)
        reader = store.open_reader(
            current, category="run_read", readahead=0
        )

    if columnar:
        header = _LEN.size
        while True:
            chunk = reader.read_available_records()
            if not chunk:
                record = reader.read_record()
                if record is None:
                    if not resume_parent():
                        break
                    continue
                chunk = [record]
            # Copy records up to the first pointer with one grouped
            # call; on a pointer, descend.  Drained records past the
            # pointer are abandoned with the reader - the resume
            # re-reads their block, exactly the scalar walk's
            # ``1 + p(b)`` accounting (Lemma 4.12).
            jump = -1
            for index, record in enumerate(chunk):
                if is_pointer_record(record):
                    jump = index
                    break
            if jump < 0:
                writer.write_records(chunk)
                device.stats.record_tokens(len(chunk))
                continue
            if jump:
                writer.write_records(chunk[:jump])
                device.stats.record_tokens(jump)
            # Framed-stream offset just past the pointer record: the
            # drain already advanced the reader past the whole chunk,
            # so subtract the abandoned tail.
            offset = reader.tell() - sum(
                header + len(record) for record in chunk[jump + 1 :]
            )
            descend(chunk[jump], offset)
    else:
        while True:
            record = reader.read_record()
            if record is None:
                if not resume_parent():
                    break
                continue
            if is_pointer_record(record):
                descend(record, reader.tell())
                continue
            writer.write_record(record)
            device.stats.record_tokens(1)

    handle = writer.finish()
    for run in finished_runs:
        store.free(run)
    if tracer is not None:
        tracer.event(
            "output-walk-done",
            runs=len(finished_runs),
            output_blocks=handle.block_count,
            stack_page_ins=location_stack.page_ins,
            stack_page_outs=location_stack.page_outs,
        )
    return handle, location_stack.page_ins, location_stack.page_outs


def _pin_resume_block(pool, run: RunHandle, offset: int) -> int | None:
    """Pin the block a nested descent will resume from; None if not cached."""
    if not run.block_ids:
        return None
    index = run.physical_index_for(offset, pool.block_size)
    block_id = run.block_ids[index]
    if pool.pin(block_id):
        return block_id
    return None


def _encode_location(run_id: int, offset: int) -> bytes:
    out = bytearray()
    write_varint(out, run_id)
    write_varint(out, offset)
    return bytes(out)


def _decode_location(data: bytes) -> tuple[int, int]:
    run_id, pos = read_varint(data, 0)
    offset, _ = read_varint(data, pos)
    return run_id, offset
