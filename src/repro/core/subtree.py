"""Sorting one complete subtree (Figure 4, Line 11).

When NEXSORT pops a complete subtree off the data stack it must sort it and
write the result to a sorted run.  "Depending on the actual size of the
subtree, sorting on Line 11 may use either an internal-memory algorithm or
an external-memory algorithm, e.g., internal-memory recursive sort or
key-path external merge sort" (Section 3.1).  Both paths live here:

* **internal** - build the node tree, recursively sort every child list by
  ``(key, position)``, serialize depth-first into a run.
* **external** - the subtree exceeds the sorter's memory: generate its
  key-path records (paths relative to the subtree root), form runs of
  memory size, merge, and decode into the run.  This is the path taken when
  a subtree approaches the ``k * t`` size bound of Section 3.

Tokens inside a finished run carry no keys or positions (they are never
sorted again; only the RunPointer pushed back on the data stack keeps the
root's key), which is itself a small compaction.

Depth-limited sorting (Section 3.2): only the top ``sort_levels`` relative
levels have their child lists reordered; deeper levels keep document order.
The external path implements this by masking the keys of too-deep elements
to MISSING so their position tie-break preserves the original order.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from math import ceil, log2
from typing import Iterable, Iterator

from ..baselines.keypath import (
    decode_record,
    encode_record,
    records_from_annotated_events,
    tokens_from_sorted_records,
)
from ..baselines.merging import merge_to_stream
from ..errors import CodecError, DeviceFault
from ..io.runs import RunHandle, RunStore
from ..obs.tracer import Tracer, maybe_span
from ..merge.engine import (
    DEFAULT_MERGE_OPTIONS,
    MergeOptions,
    RunFormer,
    argsort_counted,
    dense_ranks,
    embedded_key_of,
    normalized_path_key,
    sort_with_accounting,
    strip_embedded_key,
)
from ..xml.codec import TokenCodec, decode_key_atom
from ..xml.compact import restore_end_tags
from .columnar import (
    argsort_groups,
    fast_path_key,
    normalized_atom_bytes,
    sort_subtree_records,
    subtree_root_summary,
)
from ..xml.tokens import (
    EndTag,
    MISSING_KEY,
    RunPointer,
    StartTag,
    Text,
    Token,
)


class _Node:
    """One element (or collapsed pointer) in a subtree being sorted."""

    __slots__ = ("start", "pointer", "texts", "children", "key", "pos")

    def __init__(
        self,
        start: StartTag | None = None,
        pointer: RunPointer | None = None,
    ):
        self.start = start
        self.pointer = pointer
        self.texts: list[str] = []
        self.children: list[_Node] = []
        token = start if start is not None else pointer
        self.key = token.key if token.key is not None else MISSING_KEY
        self.pos = token.pos if token.pos is not None else 0

    @property
    def is_pointer(self) -> bool:
        return self.pointer is not None

    def order_key(self) -> tuple:
        return (self.key, self.pos)


@dataclass(frozen=True)
class SubtreeResult:
    """Outcome of one subtree sort."""

    run: RunHandle
    units: int
    real_elements: int
    payload_bytes: int
    root_key: tuple
    root_pos: int
    internal: bool


def build_subtree(tokens: list[Token], compact: bool) -> _Node:
    """Assemble the node tree of a popped subtree.

    In plain mode the tokens are matched Start/End pairs; keys may travel
    on either (end tags for subtree-evaluated criteria).  In compacted mode
    there are no end tags and nesting is recovered from levels.
    """
    root: _Node | None = None
    stack: list[_Node] = []
    if compact:
        levels: list[int] = []
        for token in tokens:
            if isinstance(token, Text):
                if token.level is not None:
                    while levels and levels[-1] > token.level:
                        levels.pop()
                        stack.pop()
                if stack:
                    stack[-1].texts.append(token.text)
                continue
            if isinstance(token, (StartTag, RunPointer)):
                level = token.level
                if level is None:
                    raise CodecError("compacted token without level")
                while levels and levels[-1] >= level:
                    levels.pop()
                    stack.pop()
                node = (
                    _Node(start=token)
                    if isinstance(token, StartTag)
                    else _Node(pointer=token)
                )
                if stack:
                    stack[-1].children.append(node)
                elif root is None:
                    root = node
                else:
                    raise CodecError("subtree tokens have two roots")
                if isinstance(token, StartTag):
                    stack.append(node)
                    levels.append(level)
            else:
                raise CodecError(f"unexpected token in compact subtree: "
                                 f"{token!r}")
    else:
        for token in tokens:
            if isinstance(token, StartTag):
                node = _Node(start=token)
                if stack:
                    stack[-1].children.append(node)
                elif root is None:
                    root = node
                else:
                    raise CodecError("subtree tokens have two roots")
                stack.append(node)
            elif isinstance(token, Text):
                if stack:
                    stack[-1].texts.append(token.text)
            elif isinstance(token, EndTag):
                node = stack.pop()
                if token.key is not None:
                    node.key = token.key
                if token.pos is not None:
                    node.pos = token.pos
            elif isinstance(token, RunPointer):
                node = _Node(pointer=token)
                if stack:
                    stack[-1].children.append(node)
                elif root is None:
                    root = node
                else:
                    raise CodecError("subtree tokens have two roots")
            else:  # pragma: no cover - defensive
                raise CodecError(f"unexpected token {token!r}")
        if stack:
            raise CodecError("subtree tokens are unbalanced")
    if root is None:
        raise CodecError("subtree tokens contain no element")
    return root


_POS = struct.Struct(">Q")


def sort_node_tree(
    root: _Node,
    sort_levels: int | None,
    device_stats,
    counted: bool = False,
    kernel: str = "scalar",
) -> None:
    """Recursively sort every child list (iteratively, stack-safe).

    ``sort_levels`` limits sorting to the top levels of the subtree
    (None = all levels); comparisons are charged to the CPU model -
    analytically (``n * ceil(log2 n)``, the seed behaviour) by default,
    or as actually counted when ``counted`` is set.

    ``kernel="columnar"`` gathers every sibling group the scalar path
    would sort and orders all of them with one batched stable argsort
    over engine-normalized ``key + position`` bytes
    (:func:`repro.core.columnar.argsort_groups`); the resulting orders
    and the analytic comparison total are identical to the scalar
    per-group ``list.sort``.  Counted mode batches too: each group's
    keys collapse to dense ranks via the batched order, and a counted
    timsort replay over the rank ints charges exactly the comparison
    sequence the scalar per-group sort performs (the ranks are order-
    and equality-isomorphic to the ``(key, pos)`` tuples).
    """
    if kernel == "columnar":
        _sort_node_tree_columnar(
            root, sort_levels, device_stats, counted=counted
        )
        return
    work: list[tuple[_Node, int]] = [(root, 1)]
    while work:
        node, level = work.pop()
        if sort_levels is None or level <= sort_levels:
            n = len(node.children)
            if n > 1:
                if counted:
                    sort_with_accounting(
                        node.children, _Node.order_key, device_stats, True
                    )
                else:
                    node.children.sort(key=_Node.order_key)
                    device_stats.record_comparisons(
                        n * max(1, ceil(log2(n)))
                    )
        for child in node.children:
            if not child.is_pointer:
                work.append((child, level + 1))


def _sort_node_tree_columnar(
    root: _Node,
    sort_levels: int | None,
    device_stats,
    prefix_width: int | None = None,
    counted: bool = False,
) -> None:
    """Batched sibling-group form of :func:`sort_node_tree`."""
    groups: list[list[_Node]] = []
    group_keys: list[list[bytes]] = []
    memo: dict[tuple, bytes] = {}
    pack_pos = _POS.pack
    work: list[tuple[_Node, int]] = [(root, 1)]
    while work:
        node, level = work.pop()
        children = node.children
        if (
            (sort_levels is None or level <= sort_levels)
            and len(children) > 1
        ):
            keys = []
            append = keys.append
            for child in children:
                norm = memo.get(child.key)
                if norm is None:
                    norm = normalized_atom_bytes(child.key)
                    memo[child.key] = norm
                append(norm + pack_pos(child.pos))
            groups.append(children)
            group_keys.append(keys)
        for child in children:
            if not child.is_pointer:
                work.append((child, level + 1))
    if not groups:
        return
    if counted:
        for children, keys, order in zip(
            groups, group_keys, argsort_groups(group_keys, prefix_width)
        ):
            ranks = dense_ranks(keys, order)
            replay = argsort_counted(ranks, device_stats)
            children[:] = [children[i] for i in replay]
        return
    comparisons = 0
    for children, order in zip(
        groups, argsort_groups(group_keys, prefix_width)
    ):
        children[:] = [children[i] for i in order]
        n = len(children)
        comparisons += n * max(1, ceil(log2(n)))
    device_stats.record_comparisons(comparisons)


def serialize_node_tree(
    root: _Node, base_level: int, compact: bool
) -> Iterator[Token]:
    """Emit the sorted subtree as clean run tokens (annotations stripped)."""
    work: list[tuple[str, _Node, int]] = [("node", root, base_level)]
    while work:
        kind, node, level = work.pop()
        if kind == "end":
            yield EndTag(node.start.tag)
            continue
        if node.is_pointer:
            pointer = node.pointer
            yield RunPointer(
                run_id=pointer.run_id,
                level=level if compact else None,
                element_count=pointer.element_count,
                payload_bytes=pointer.payload_bytes,
            )
            continue
        yield StartTag(
            node.start.tag,
            node.start.attrs,
            level=level if compact else None,
        )
        if node.texts:
            yield Text("".join(node.texts), level=level if compact else None)
        if not compact:
            work.append(("end", node, level))
        for child in reversed(node.children):
            work.append(("node", child, level + 1))


def count_units(tokens: Iterable[Token]) -> tuple[int, int]:
    """(units, real elements) of a token sequence.

    A unit is one element as seen by *this* sort: a start tag or a pointer
    (the paper's ``s_i`` counts collapsed subtrees as single elements).
    Real elements expand pointers to what their runs contain.
    """
    units = 0
    real = 0
    for token in tokens:
        if isinstance(token, StartTag):
            units += 1
            real += 1
        elif isinstance(token, RunPointer):
            units += 1
            real += token.element_count
    return units, real


def annotate_starts_from_ends(tokens: list[Token]) -> list[Token]:
    """Move keys from end tags onto the matching start tags.

    The external (key-path) sorting path needs keys on starts; for
    subtree-evaluated criteria NEXSORT's scan put them on the end tags.
    The popped subtree is fully available here, so the fix-up is a single
    in-memory pass.
    """
    fixed = list(tokens)
    stack: list[int] = []
    for index, token in enumerate(fixed):
        if isinstance(token, StartTag):
            stack.append(index)
        elif isinstance(token, EndTag):
            start_index = stack.pop()
            start = fixed[start_index]
            if start.key is None or start.pos is None:
                fixed[start_index] = start.with_annotations(
                    key=token.key, pos=token.pos
                )
    return fixed


def mask_keys_below(tokens: list[Token], sort_levels: int) -> list[Token]:
    """Mask keys of elements deeper than ``sort_levels`` to MISSING.

    With a MISSING key, the position tie-break keeps those siblings in
    document order - exactly depth-limited semantics under key-path sort.
    Relative levels are computed from the token stream (root = 1).
    """
    masked: list[Token] = []
    depth = 0
    for token in tokens:
        if isinstance(token, StartTag):
            depth += 1
            if depth > sort_levels:
                token = StartTag(
                    token.tag,
                    token.attrs,
                    key=MISSING_KEY,
                    pos=token.pos,
                    level=token.level,
                )
            masked.append(token)
        elif isinstance(token, EndTag):
            if depth > sort_levels:
                token = EndTag(token.tag, key=MISSING_KEY, pos=token.pos)
            masked.append(token)
            depth -= 1
        elif isinstance(token, RunPointer):
            if depth + 1 > sort_levels:
                token = RunPointer(
                    run_id=token.run_id,
                    key=MISSING_KEY,
                    pos=token.pos,
                    level=token.level,
                    element_count=token.element_count,
                    payload_bytes=token.payload_bytes,
                )
            masked.append(token)
        else:
            masked.append(token)
    return masked


class SubtreeSorter:
    """Sorts popped subtrees into runs, choosing internal vs. external."""

    def __init__(
        self,
        store: RunStore,
        codec: TokenCodec,
        compact: bool,
        capacity_bytes: int,
        fan_in: int,
        options: MergeOptions | None = None,
        tracer: Tracer | None = None,
        recovery=None,
    ):
        self.store = store
        self.codec = codec
        self.compact = compact
        self.capacity_bytes = capacity_bytes
        self.fan_in = fan_in
        self.options = options or DEFAULT_MERGE_OPTIONS
        self.tracer = tracer
        self.recovery = recovery
        #: Record counts of every formation run written by external
        #: subtree sorts (run-length reporting rides on this).
        self.run_lengths: list[int] = []
        self._sorted_subtrees = 0

    def sort_tokens(
        self,
        tokens: list[Token],
        payload_bytes: int,
        base_level: int,
        sort_levels: int | None,
    ) -> SubtreeResult:
        """Sort one complete subtree and write it as a run.

        Args:
            tokens: the subtree's tokens, in document order.
            payload_bytes: their total encoded size (known from the stack).
            base_level: absolute level of the subtree root (``d_s``).
            sort_levels: how many top relative levels to sort (None = all;
                0 = none, the subtree is written through unsorted).
        """
        units, real = count_units(tokens)
        root_token = tokens[0]
        root_key = (
            root_token.key if root_token.key is not None else MISSING_KEY
        )
        root_pos = root_token.pos if root_token.pos is not None else 0
        if root_key == MISSING_KEY and not self.compact:
            # Subtree-evaluated criteria put the root's key on its end tag.
            last = tokens[-1]
            if isinstance(last, EndTag) and last.key is not None:
                root_key = last.key
                root_pos = last.pos if last.pos is not None else root_pos

        internal = payload_bytes <= self.capacity_bytes
        run, written = self._sort_recoverably(
            tokens, base_level, sort_levels, internal
        )
        return SubtreeResult(
            run=run,
            units=units,
            real_elements=real,
            payload_bytes=written,
            root_key=root_key,
            root_pos=root_pos,
            internal=internal,
        )

    def _sort_recoverably(
        self,
        tokens: list[Token],
        base_level: int,
        sort_levels: int | None,
        internal: bool,
    ) -> tuple[RunHandle, int]:
        """Run one subtree sort, restarting it on transient faults.

        A subtree sort regenerates everything from the in-memory token
        list, so no device hold is needed; a restart only has to clean up
        what the failed attempt left behind - runs it registered (the
        external path's formation/merge intermediates) and their
        ``run_lengths`` entries.
        """
        sorter = (
            self._sort_internal if internal else self._sort_external
        )
        return self._run_recoverably(
            lambda: sorter(tokens, base_level, sort_levels)
        )

    def _run_recoverably(self, attempt) -> tuple[RunHandle, int]:
        """Run one subtree-sort attempt under the recovery protocol."""
        unit = self._sorted_subtrees
        self._sorted_subtrees += 1
        if self.recovery is None:
            return attempt()

        runs_before = self.store.live_run_ids()
        lengths_before = len(self.run_lengths)

        def attempt_once() -> tuple[RunHandle, int]:
            try:
                return attempt()
            except DeviceFault:
                for run_id in self.store.live_run_ids() - runs_before:
                    self.store.free(run_id)
                del self.run_lengths[lengths_before:]
                raise

        run, written = self.recovery.attempt(
            "subtree-sort", unit, attempt_once
        )
        self.recovery.checkpoint("subtree-sort", unit, run_id=run.run_id)
        return run, written

    # -- fused raw-record path (columnar kernel) -----------------------------

    def sort_records(
        self,
        records: list[bytes],
        payload_bytes: int,
        base_level: int,
        sort_levels: int | None,
    ) -> SubtreeResult:
        """Sort one subtree straight from its encoded data-stack records.

        The columnar analogue of :meth:`sort_tokens`: when the subtree
        fits in memory the records are parsed by field offsets, sibling
        groups are ordered with one batched argsort, and run records are
        spliced from the input's own encoded slices
        (:func:`repro.core.columnar.sort_subtree_records`) - no token is
        ever materialized.  Output bytes, counters, and the RunPointer
        key are identical to the scalar path (counted-comparison mode
        replays the scalar comparison sequence over dense ranks - see
        :func:`repro.core.columnar.sort_raw_tree`).  External-sized
        subtrees decode and fall back to :meth:`sort_tokens`.
        """
        internal = payload_bytes <= self.capacity_bytes
        if not internal:
            return self.sort_tokens(
                self.codec.decode_batch(records),
                payload_bytes,
                base_level,
                sort_levels,
            )
        names_coded = self.codec.names is not None
        atom, root_pos = subtree_root_summary(
            records, self.compact, names_coded
        )
        root_key = (
            decode_key_atom(atom, 0)[0] if atom is not None else MISSING_KEY
        )
        stats = self.store.device.stats
        counts: list[tuple[int, int]] = []
        prefix_width = self.options.keys.prefix_width

        def attempt() -> tuple[RunHandle, int]:
            out, units, real = sort_subtree_records(
                records,
                self.compact,
                names_coded,
                base_level,
                sort_levels,
                stats,
                prefix_width,
                counted=self.options.counted_comparisons,
            )
            counts.append((units, real))
            writer = self.store.create_writer("run_write")
            count = 0
            try:
                for record in out:
                    writer.write_record(record)
                    count += 1
            except DeviceFault:
                writer.abandon()
                raise
            stats.record_tokens(count)
            handle = writer.finish()
            return handle, handle.payload_bytes

        run, written = self._run_recoverably(attempt)
        units, real = counts[-1]
        return SubtreeResult(
            run=run,
            units=units,
            real_elements=real,
            payload_bytes=written,
            root_key=root_key,
            root_pos=root_pos,
            internal=True,
        )

    # -- internal-memory path ----------------------------------------------

    def _sort_internal(
        self,
        tokens: list[Token],
        base_level: int,
        sort_levels: int | None,
    ) -> tuple[RunHandle, int]:
        stats = self.store.device.stats
        root = build_subtree(tokens, self.compact)
        sort_node_tree(
            root,
            sort_levels,
            stats,
            self.options.counted_comparisons,
            kernel=self.options.kernel,
        )
        writer = self.store.create_writer("run_write")
        count = 0
        try:
            for token in serialize_node_tree(root, base_level, self.compact):
                writer.write_record(self.codec.encode(token))
                count += 1
        except DeviceFault:
            writer.abandon()
            raise
        stats.record_tokens(count)
        handle = writer.finish()
        return handle, handle.payload_bytes

    # -- external-memory (key-path) path -------------------------------------

    def _sort_external(
        self,
        tokens: list[Token],
        base_level: int,
        sort_levels: int | None,
    ) -> tuple[RunHandle, int]:
        device = self.store.device
        names = self.codec.names
        prepared: Iterable[Token]
        if self.compact:
            prepared = list(restore_end_tags(tokens))
        else:
            prepared = annotate_starts_from_ends(tokens)
        if sort_levels is not None:
            prepared = mask_keys_below(list(prepared), sort_levels)

        # Run formation under the sorter's memory capacity.
        options = self.options
        embedded = options.embedded_keys
        former = RunFormer(
            self.store, self.capacity_bytes, options, tracer=self.tracer,
            recovery=self.recovery,
        )
        with maybe_span(
            self.tracer, "run-formation", mode=options.run_formation
        ) as span:
            for record in records_from_annotated_events(iter(prepared)):
                encoded = encode_record(record, names)
                sort_key = record.sort_key()
                key = normalized_path_key(sort_key) if embedded else sort_key
                device.stats.record_tokens(1)
                former.add(key, encoded)
            runs = former.finish()
            if span is not None:
                span.set(runs=len(runs))
        self.run_lengths.extend(former.run_lengths)

        if embedded:
            key_of = embedded_key_of
        elif options.columnar:
            # Path-only parse into normalized bytes: same ordering as
            # the decoded tuple key, no tag/attr/text decode (exactly
            # the baseline's columnar merge keying).
            key_of = fast_path_key
        else:

            def key_of(encoded: bytes) -> tuple:
                return decode_record(encoded, names).sort_key()

        stream, _passes, _width = merge_to_stream(
            self.store, runs, key_of, self.fan_in, options=options,
            tracer=self.tracer, recovery=self.recovery,
        )
        if embedded:
            decoded = (
                decode_record(strip_embedded_key(record), names)
                for record in stream
            )
        else:
            decoded = (decode_record(record, names) for record in stream)
        writer = self.store.create_writer("run_write")
        count = 0
        try:
            for token in tokens_from_sorted_records(
                decoded, base_level=base_level, emit_end_tags=not self.compact
            ):
                if not self.compact:
                    # Plain-mode run tokens carry no levels.
                    if token.__class__ is StartTag:
                        token = StartTag(token.tag, token.attrs)
                    elif token.__class__ is RunPointer:
                        token = RunPointer(
                            run_id=token.run_id,
                            element_count=token.element_count,
                            payload_bytes=token.payload_bytes,
                        )
                writer.write_record(self.codec.encode(token))
                count += 1
        except DeviceFault:
            writer.abandon()
            raise
        device.stats.record_tokens(count)
        handle = writer.finish()
        return handle, handle.payload_bytes
