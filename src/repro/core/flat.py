"""Graceful degeneration into external merge sort (paper Section 3.2).

Plain NEXSORT wastes its first pass on flat documents: it pushes the whole
input onto the data stack only to pop it again for one big sort.  The fix
the paper describes: "Whenever an incomplete subtree has filled internal
memory, we sort it in internal memory and create an *incomplete sorted
run* ... incomplete sorted runs for the same subtree must be merged to
produce a regular, complete sorted run.  Effectively, we have incorporated
the first step of creating initial sorted runs for external merge sort into
the loop."  With this optimization NEXSORT completes a flat input in the
same number of passes as external merge sort.

An incomplete (partial) run is a key-ordered sequence of *child groups*:
each group is one complete, internally sorted child subtree of the open
element, stored with its ``(key, position)`` header so groups from several
partial runs can be merged by key when the element finally closes.
"""

from __future__ import annotations

from math import ceil, log2
from typing import Iterator

from ..errors import CodecError
from ..io.runs import RunHandle, RunStore
from ..merge.engine import MergeOptions, sort_with_accounting
from ..xml.codec import (
    decode_key_atom,
    encode_key_atom,
    read_varint,
    write_varint,
)
from ..xml.tokens import (
    EndTag,
    KeyAtom,
    MISSING_KEY,
    RunPointer,
    StartTag,
    Text,
    Token,
)
from .subtree import (
    build_subtree,
    count_units,
    serialize_node_tree,
    sort_node_tree,
)


class ChildGroup:
    """One complete child subtree inside a partial run."""

    __slots__ = ("key", "pos", "units", "real", "token_bytes")

    def __init__(
        self,
        key: KeyAtom,
        pos: int,
        units: int,
        real: int,
        token_bytes: list[bytes],
    ):
        self.key = key
        self.pos = pos
        self.units = units
        self.real = real
        self.token_bytes = token_bytes

    def order_key(self) -> tuple:
        return (self.key, self.pos)


def encode_group(group: ChildGroup) -> bytes:
    out = bytearray()
    encode_key_atom(out, group.key)
    write_varint(out, group.pos)
    write_varint(out, group.units)
    write_varint(out, group.real)
    write_varint(out, len(group.token_bytes))
    for token in group.token_bytes:
        write_varint(out, len(token))
        out += token
    return bytes(out)


def decode_group(data: bytes) -> ChildGroup:
    key, pos = decode_key_atom(data, 0)
    position, pos = read_varint(data, pos)
    units, pos = read_varint(data, pos)
    real, pos = read_varint(data, pos)
    count, pos = read_varint(data, pos)
    tokens = []
    for _ in range(count):
        length, pos = read_varint(data, pos)
        tokens.append(data[pos : pos + length])
        pos += length
    return ChildGroup(key, position, units, real, tokens)


def group_sort_key(data: bytes) -> tuple:
    """Ordering key of an encoded group (header only, cheap)."""
    key, pos = decode_key_atom(data, 0)
    position, _ = read_varint(data, pos)
    return (key, position)


def split_region(
    tokens: list[Token], compact: bool
) -> tuple[list[str], list[list[Token]]]:
    """Split an open element's content region into its texts and children.

    The region is everything pushed after the element's start tag while the
    element is the deepest open one, so it consists exclusively of the
    element's own text and *complete* child subtrees.
    """
    texts: list[str] = []
    children: list[list[Token]] = []
    depth = 0
    current: list[Token] = []
    if compact:
        base_level: int | None = None
        for token in tokens:
            if isinstance(token, (StartTag, RunPointer)):
                level = token.level
                if level is None:
                    raise CodecError("compacted token without level")
                if base_level is None:
                    base_level = level
                if level == base_level:
                    if current:
                        children.append(current)
                    current = [token]
                else:
                    current.append(token)
            elif isinstance(token, Text):
                # The text's level says whether it belongs to the open
                # element (one above the child roots) or to a child.
                owner_is_frame = (
                    token.level is not None
                    and base_level is not None
                    and token.level < base_level
                ) or not current
                if owner_is_frame:
                    texts.append(token.text)
                else:
                    current.append(token)
            else:
                raise CodecError(
                    f"unexpected token in compact region: {token!r}"
                )
        if current:
            children.append(current)
    else:
        for token in tokens:
            if isinstance(token, StartTag):
                depth += 1
                current.append(token)
            elif isinstance(token, EndTag):
                current.append(token)
                depth -= 1
                if depth == 0:
                    children.append(current)
                    current = []
            elif isinstance(token, RunPointer):
                if depth == 0:
                    children.append([token])
                else:
                    current.append(token)
            elif isinstance(token, Text):
                if depth == 0:
                    texts.append(token.text)
                else:
                    current.append(token)
        if depth != 0:
            raise CodecError("open-element region contains an open child")
    return texts, children


def groups_from_region(
    tokens: list[Token],
    compact: bool,
    child_level: int,
    sort_levels: int | None,
    codec,
    device_stats,
    counted: bool = False,
) -> tuple[list[str], list[ChildGroup]]:
    """Sort each complete child subtree of the region into a ChildGroup.

    Groups come back ordered by ``(key, position)``, ready to be written as
    one partial run.  ``sort_levels`` applies relative to each child root
    (depth-limited sorting composes with graceful degeneration).
    """
    texts, children = split_region(tokens, compact)
    groups: list[ChildGroup] = []
    for child_tokens in children:
        units, real = count_units(child_tokens)
        first = child_tokens[0]
        key = first.key if first.key is not None else MISSING_KEY
        pos = first.pos if first.pos is not None else 0
        if key == MISSING_KEY and not compact:
            last = child_tokens[-1]
            if isinstance(last, EndTag) and last.key is not None:
                key = last.key
                pos = last.pos if last.pos is not None else pos
        if isinstance(first, RunPointer):
            encoded = [codec.encode(_strip_pointer(first, compact))]
        else:
            root = build_subtree(child_tokens, compact)
            sort_node_tree(root, sort_levels, device_stats, counted)
            encoded = [
                codec.encode(token)
                for token in serialize_node_tree(root, child_level, compact)
            ]
        device_stats.record_tokens(len(encoded))
        groups.append(ChildGroup(key, pos, units, real, encoded))
    count = len(groups)
    if count > 1:
        if counted:
            sort_with_accounting(
                groups, ChildGroup.order_key, device_stats, True
            )
        else:
            groups.sort(key=ChildGroup.order_key)
            device_stats.record_comparisons(
                count * max(1, ceil(log2(count)))
            )
    return texts, groups


def _strip_pointer(pointer: RunPointer, compact: bool) -> RunPointer:
    return RunPointer(
        run_id=pointer.run_id,
        level=pointer.level if compact else None,
        element_count=pointer.element_count,
        payload_bytes=pointer.payload_bytes,
    )


def write_partial_run(
    store: RunStore, groups: list[ChildGroup]
) -> RunHandle:
    """Write one incomplete sorted run of child groups."""
    writer = store.create_writer("partial_run")
    for group in groups:
        writer.write_record(encode_group(group))
    return writer.finish()


class PartialRunWriter:
    """An open partial run that can absorb successive group batches.

    The replacement-selection analogue for graceful degeneration: each
    memory-full flush produces a key-ordered batch of child groups, and
    when a new batch starts at or above the last key already written, it
    *extends* the open run instead of starting a new one - the same
    "steal order that is already there" idea, with the data stack playing
    the role of the selection heap.  Fewer, longer partial runs mean fewer
    partial-merge passes when the element closes.

    Only one of these should be open at a time (it owns a one-block write
    buffer, charged to the same transfer-buffer allowance every run writer
    uses).
    """

    def __init__(self, store: RunStore):
        self._writer = store.create_writer("partial_run")
        self._last: tuple | None = None

    @property
    def last_key(self) -> tuple | None:
        return self._last

    @property
    def record_count(self) -> int:
        return self._writer.record_count

    def can_extend(self, groups: list[ChildGroup]) -> bool:
        """True if ``groups`` (key-ordered) may append to the open run."""
        if not groups:
            return True
        return self._last is None or groups[0].order_key() >= self._last

    def write_groups(self, groups: list[ChildGroup]) -> None:
        for group in groups:
            self._writer.write_record(encode_group(group))
        if groups:
            self._last = groups[-1].order_key()

    def finish(self) -> RunHandle:
        return self._writer.finish()


def iter_merged_groups(
    store: RunStore,
    partial_runs: list[RunHandle],
    fan_in: int,
    options: MergeOptions | None = None,
    tracer=None,
) -> Iterator[ChildGroup]:
    """Stream the groups of several partial runs merged by (key, pos)."""
    from ..baselines.merging import merge_to_stream

    stream, _passes, _width = merge_to_stream(
        store,
        partial_runs,
        group_sort_key,
        fan_in,
        read_category="partial_merge_read",
        write_category="partial_merge_write",
        options=options,
        tracer=tracer,
    )
    for record in stream:
        yield decode_group(record)
