"""NEXSORT - Nested Data and XML Sorting (paper Sections 3 and 3.2).

The sorting phase follows Figure 4 line by line: scan the input depth-first
with an event parser, push every unit of data onto the external-memory
*data stack*, track element start locations on the *path stack*, and
whenever an end tag closes a subtree whose size has reached the sort
threshold ``t`` (or the root closes), pop the subtree, sort it
(:mod:`repro.core.subtree`), write it as a sorted run, and push the root
back as a single :class:`~repro.xml.tokens.RunPointer`.  The output phase
(:mod:`repro.core.output`) then walks the resulting tree of sorted runs.

Extensions from Section 3.2, all selectable via :class:`NexsortOptions`:

* **depth-limited sorting** (``depth_limit=d``): subtrees rooted below
  level ``d`` are treated as atomic; the sorting condition gains the
  ``d_s <= d + 1`` check and subtree sorts are truncated to the top
  ``d + 1 - d_s`` levels.
* **graceful degeneration** (``flat_optimization=True``): when an
  incomplete subtree fills internal memory, its complete children are
  sorted in memory into an *incomplete sorted run*; the runs of one element
  are merged when it closes.  Flat inputs then cost the same passes as
  external merge sort.
* **compaction** is inherited from how the document is stored (name
  dictionaries, end-tag elimination); with end tags eliminated, end events
  still trigger sorting decisions but are never pushed onto the data stack.
* **complex ordering criteria**: subtree-evaluated keys (ByText,
  ByChildPath) ride on end tags, evaluated in the single scanning pass by
  :class:`~repro.keys.KeyEvaluator`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CodecError, DeviceFault, SortSpecError
from ..io.budget import MemoryBudget, MINIMUM_NEXSORT_BLOCKS
from ..io.bufferpool import BufferPool
from ..io.compress import CompressionConfig
from ..io.stacks import ExternalStack
from ..keys import KeyEvaluator, SortSpec
from ..merge.engine import DEFAULT_MERGE_OPTIONS, MergeOptions
from ..obs.tracer import Tracer, maybe_span
from ..xml.codec import (
    TYPE_END,
    TYPE_POINTER,
    TYPE_START,
    TYPE_TEXT,
    read_varint,
    write_varint,
)
from ..xml.document import Document
from ..xml.tokens import (
    EndTag,
    MISSING_KEY,
    RunPointer,
    StartTag,
    Text,
)
from . import flat as flat_mod
from .columnar import (
    _VARINT1,
    ScanSpliceCache,
    _encode_tag_attrs,
    _skip_frame,
    _skip_tag_attrs,
    varint_bytes,
)
from .output import output_phase
from .report import NexsortReport, SubtreeSortInfo
from .subtree import SubtreeSorter


@dataclass(frozen=True)
class NexsortOptions:
    """Tunable knobs of NEXSORT.

    Attributes:
        threshold_bytes: the sort threshold ``t`` in encoded bytes; None
            means twice the block size, the paper's recommended setting
            ("we set the threshold to be roughly twice the block size,
            which works well for most inputs").
        depth_limit: sort only down to this level (root = 1); None sorts
            head to toe.
        flat_optimization: enable graceful degeneration into external
            merge sort for flat inputs.
        cache_blocks: blocks of the memory budget spent on a
            :class:`~repro.io.bufferpool.BufferPool` in front of the
            device.  0 (the default) runs with no pool at all, keeping
            every I/O count bit-identical to the unpooled algorithm; a
            positive value is reserved from ``M`` like any other component
            and makes the output phase's run re-reads and stack paging
            cache hits instead of device I/Os.
        merge: run-formation / merge-kernel / key-embedding knobs shared
            with the baselines (:class:`~repro.merge.engine.MergeOptions`);
            the defaults are the paper-faithful load-sort + heap + analytic
            accounting.
    """

    threshold_bytes: int | None = None
    depth_limit: int | None = None
    flat_optimization: bool = False
    cache_blocks: int = 0
    merge: MergeOptions = DEFAULT_MERGE_OPTIONS


class _OpenFrame:
    """In-memory mirror of one path-stack entry.

    The external path stack carries the start locations (and is what gets
    paged, per Lemma 4.11); the mirror holds the constant-size per-element
    state the paper's augmented path stack also carries (Section 3.2):
    where the element's content begins, and - in graceful-degeneration
    mode - the incomplete runs flushed for it so far.
    """

    __slots__ = (
        "loc",
        "content_loc",
        "partial_runs",
        "flat_units",
        "flat_real",
        "end_record",
    )

    def __init__(self, loc: int, content_loc: int):
        self.loc = loc
        self.content_loc = content_loc
        self.partial_runs: list = []
        self.flat_units = 0
        self.flat_real = 0
        # Fused columnar scan only: the pre-spliced end-tag record this
        # element pushes when it closes (plain storage).
        self.end_record: bytes | None = None


class NexSorter:
    """Configured NEXSORT instance.

    Args:
        spec: the ordering criterion.
        memory_blocks: the model parameter ``M``.
        options: threshold / depth limit / graceful degeneration.
    """

    def __init__(
        self,
        spec: SortSpec,
        memory_blocks: int,
        options: NexsortOptions | None = None,
    ):
        self.options = options or NexsortOptions()
        cache_blocks = self.options.cache_blocks
        if cache_blocks < 0:
            raise SortSpecError(
                f"cache_blocks cannot be negative: {cache_blocks}"
            )
        if memory_blocks < MINIMUM_NEXSORT_BLOCKS + cache_blocks:
            raise SortSpecError(
                f"NEXSORT needs at least {MINIMUM_NEXSORT_BLOCKS} memory "
                f"blocks (2 path stack, 1 data stack, 1 output-location "
                f"stack, 2 transfer buffers) plus the {cache_blocks} "
                f"buffer-pool blocks; got {memory_blocks}"
            )
        self.spec = spec
        self.memory_blocks = memory_blocks

    def sort(
        self,
        document: Document,
        tracer: Tracer | None = None,
        recovery=None,
        lease=None,
    ) -> tuple[Document, NexsortReport]:
        """Sort ``document``; returns (sorted document, full report).

        With a :class:`~repro.obs.tracer.Tracer`, the sort opens a
        ``document-scan`` span over the scanning phase (with nested
        ``subtree-sort`` / ``flat-element-merge`` spans) and an
        ``output-walk`` span over the output phase; ``tracer=None`` (the
        default) takes zero-cost fast paths, so untraced runs remain
        bit-identical to the paper-faithful counts.

        With a :class:`~repro.faults.RecoveryContext`, subtree sorts and
        merge passes checkpoint after every completed run and restart on
        transient device faults; faults that cannot be recovered surface
        as :class:`~repro.errors.SortRecoveryError` naming the last
        completed checkpoint.
        """
        if recovery is None:
            return self._sort(document, tracer, None, lease)
        try:
            return self._sort(document, tracer, recovery, lease)
        except DeviceFault as fault:
            # A fault escaped every retry and restartable unit (e.g. in
            # scan-phase stack paging, which has no restartable unit).
            raise recovery.to_error(fault) from fault

    def _sort(
        self,
        document: Document,
        tracer: Tracer | None,
        recovery,
        lease=None,
    ) -> tuple[Document, NexsortReport]:
        compact = (
            document.compaction is not None
            and document.compaction.eliminate_end_tags
        )
        if compact and not self.spec.start_computable:
            raise SortSpecError(
                "end-tag elimination requires start-computable keys: with "
                "end tags gone there is nowhere to carry a "
                "subtree-evaluated key (store the document without "
                "compaction, or use an attribute/tag criterion)"
            )
        store = document.store
        device = store.device
        codec = document.codec
        block = device.block_size

        options = self.options
        threshold = (
            options.threshold_bytes
            if options.threshold_bytes is not None
            else 2 * block
        )
        depth_limit = options.depth_limit

        if lease is not None:
            # Per-job lease (repro.io.lease): memory comes from the slice
            # carved out of the shared pool instead of a private budget.
            # Reservation arithmetic below is unchanged, so a lease of M
            # blocks reproduces the ambient MemoryBudget(M) run exactly.
            if lease.budget.total_blocks != self.memory_blocks:
                raise SortSpecError(
                    f"lease grants {lease.budget.total_blocks} blocks but "
                    f"the sorter was configured for {self.memory_blocks}"
                )
            budget = lease.budget
        else:
            budget = MemoryBudget(self.memory_blocks)
        path_reservation = budget.reserve(2, "path-stack")
        output_reservation = budget.reserve(1, "output-location-stack")
        buffer_reservation = budget.reserve(2, "transfer-buffers")
        if options.cache_blocks:
            # The pool reserves its capacity from the same budget: cached
            # blocks are memory the model granted, not a free lunch.
            store.attach_pool(
                BufferPool(
                    device,
                    options.cache_blocks,
                    budget=budget,
                    owner="buffer-pool",
                    tracer=tracer,
                )
            )
        data_reservation = budget.reserve_rest("data-stack-and-sorter")
        data_blocks = max(1, data_reservation.blocks)
        capacity_bytes = data_blocks * block
        fan_in = max(2, data_blocks - 1)
        paging_target = store.io_target
        prior_compression = store.compression
        if options.merge.compress is not None:
            store.compression = CompressionConfig(
                codec=options.merge.compress,
                embedded_keys=options.merge.embedded_keys,
                capacity=options.merge.compress_capacity,
            )

        try:
            report = NexsortReport(
                element_count=document.element_count,
                max_fanout=document.max_fanout,
                input_blocks=document.block_count,
                memory_blocks=self.memory_blocks,
                block_size=block,
                threshold_bytes=threshold,
                depth_limit=depth_limit,
                flat_optimization=options.flat_optimization,
            )
            before_all = device.stats.snapshot()

            sorter = SubtreeSorter(
                store, codec, compact, capacity_bytes, fan_in, options.merge,
                tracer=tracer, recovery=recovery,
            )
            self._tracer = tracer
            # Graceful-degeneration replacement selection keeps at most one
            # partial-run writer open across flushes (it owns one transfer
            # buffer); (frame, writer) of the open run, or None.
            self._open_partial: tuple[_OpenFrame, object] | None = None
            self._run_lengths: list[int] = []
            data_stack = ExternalStack(paging_target, data_blocks, "data_stack")
            path_stack = ExternalStack(paging_target, 2, "path_stack")
            frames: list[_OpenFrame] = []
            start_keyed = self.spec.start_computable

            evaluator = KeyEvaluator(self.spec)
            root_pointer: RunPointer | None = None

            # Fused columnar scan (ISSUE 7): annotate stored records by
            # byte splicing instead of decode -> KeyEvaluator -> encode.
            # Start-computable keys only (the splice evaluates keys from
            # raw tag+attrs slices); graceful degeneration keeps the
            # token loop (its flush heuristics inspect decoded tokens).
            fused = (
                options.merge.columnar
                and start_keyed
                and not options.flat_optimization
            )
            with maybe_span(
                tracer,
                "document-scan",
                threshold=threshold,
                memory_blocks=self.memory_blocks,
                depth_limit=depth_limit,
                flat=options.flat_optimization,
            ):
                if fused:
                    self._scan_columnar(
                        document,
                        frames,
                        data_stack,
                        path_stack,
                        codec,
                        store,
                        device,
                        sorter,
                        report,
                        compact,
                        threshold,
                        depth_limit,
                        fan_in,
                    )
                else:
                    self._scan_scalar(
                        document,
                        evaluator,
                        frames,
                        data_stack,
                        path_stack,
                        codec,
                        store,
                        device,
                        sorter,
                        report,
                        compact,
                        threshold,
                        depth_limit,
                        fan_in,
                        start_keyed,
                        capacity_bytes,
                    )

                # The data stack now holds exactly the root pointer.
                assert self._open_partial is None, "unclosed partial run"
                root_record = data_stack.pop()
                root_pointer = codec.decode(root_record)
                assert isinstance(root_pointer, RunPointer)
            report.data_stack_page_ins = data_stack.page_ins
            report.data_stack_page_outs = data_stack.page_outs
            report.path_stack_page_ins = path_stack.page_ins
            report.path_stack_page_outs = path_stack.page_outs
            report.sorting_stats = device.stats.since(before_all)

            # Output phase: depth-first traversal of the tree of sorted runs.
            # The span also covers the pool detach so deferred write-backs
            # are attributed to the phase that deferred them.
            before_output = device.stats.snapshot()
            with maybe_span(tracer, "output-walk"):
                handle, output_page_ins, output_page_outs = output_phase(
                    store, root_pointer, tracer=tracer,
                    columnar=options.merge.columnar,
                )
                # Detach (and flush) the pool before the final snapshots so
                # the write-back of any still-dirty output blocks is
                # accounted.
                store.detach_pool()
            report.output_stack_page_ins = output_page_ins
            report.output_stack_page_outs = output_page_outs
            report.output_stats = device.stats.since(before_output)
            report.stats = device.stats.since(before_all)
            run_lengths = self._run_lengths + sorter.run_lengths
            if run_lengths:
                report.avg_run_length = sum(run_lengths) / len(run_lengths)
                report.max_run_length = max(run_lengths)

            for reservation in (
                path_reservation,
                output_reservation,
                buffer_reservation,
                data_reservation,
            ):
                reservation.release()

            output = Document(
                store, handle, document.stats, document.compaction
            )
            return output, report
        finally:
            # Always restore the store to direct-device I/O (flushing any
            # dirty cached blocks), even if the sort failed mid-stream.
            store.compression = prior_compression
            store.detach_pool()

    # -- sorting-phase internals ---------------------------------------------

    def _scan_scalar(
        self,
        document: Document,
        evaluator: KeyEvaluator,
        frames: list[_OpenFrame],
        data_stack: ExternalStack,
        path_stack: ExternalStack,
        codec,
        store,
        device,
        sorter: SubtreeSorter,
        report: NexsortReport,
        compact: bool,
        threshold: int,
        depth_limit: int | None,
        fan_in: int,
        start_keyed: bool,
        capacity_bytes: int,
    ) -> None:
        """The reference scanning loop: decode, annotate, re-encode."""
        for event in evaluator.annotate(
            document.iter_events("input_scan")
        ):
            if isinstance(event, StartTag):
                token = StartTag(
                    event.tag,
                    event.attrs,
                    key=event.key if start_keyed else None,
                    pos=event.pos,
                    level=event.level if compact else None,
                )
                encoded = codec.encode(token)
                loc = data_stack.push(encoded)
                path_stack.push(_encode_path_entry(loc))
                frames.append(_OpenFrame(loc, loc + len(encoded)))
                device.stats.record_tokens(1)
            elif isinstance(event, Text):
                token = Text(
                    event.text, level=len(frames) if compact else None
                )
                data_stack.push(codec.encode(token))
                device.stats.record_tokens(1)
                self._maybe_flush_partial(
                    frames, data_stack, codec, store, device, report,
                    compact, capacity_bytes, depth_limit,
                )
            elif isinstance(event, EndTag):
                self._handle_end(
                    event,
                    frames,
                    data_stack,
                    path_stack,
                    codec,
                    store,
                    device,
                    sorter,
                    report,
                    compact,
                    threshold,
                    depth_limit,
                    fan_in,
                    start_keyed,
                )
                if frames:
                    self._maybe_flush_partial(
                        frames, data_stack, codec, store, device,
                        report, compact, capacity_bytes, depth_limit,
                    )
            else:  # pragma: no cover - evaluator only yields these
                raise SortSpecError(f"unexpected event {event!r}")

    def _scan_columnar(
        self,
        document: Document,
        frames: list[_OpenFrame],
        data_stack: ExternalStack,
        path_stack: ExternalStack,
        codec,
        store,
        device,
        sorter: SubtreeSorter,
        report: NexsortReport,
        compact: bool,
        threshold: int,
        depth_limit: int | None,
        fan_in: int,
    ) -> None:
        """Fused scanning loop: annotate stored records by byte splicing.

        Replaces ``iter_events -> KeyEvaluator.annotate -> codec.encode``
        with one pass over the raw stored records: the annotated start
        pushed onto the data stack is assembled as ``type, flags,
        tag+attrs (verbatim slice), key atom (memoized per distinct
        tag+attrs), pos varint[, level varint]``, texts are pushed
        verbatim (their stored bytes already equal the scalar re-encode),
        and plain end tags are pre-spliced at the matching start.  Every
        push - and therefore every data-stack byte, token charge, paging
        decision, and subtree-sort trigger - is bit-identical to
        :meth:`_scan_scalar`; input block reads fire at the same record
        pull index (draining an already-buffered block is free in the
        device model either way).
        """
        names = (
            document.compaction.names if document.compaction else None
        )
        cache = ScanSpliceCache(self.spec, names)
        pieces_for = cache.pieces_for
        reader = store.open_reader(document.handle, category="input_scan")
        read_available = reader.read_available_records
        read_one = reader.read_record
        push = data_stack.push
        push_path = path_stack.push
        record_tokens = device.stats.record_tokens
        join = b"".join
        next_pos = 0
        if compact:
            # No stored end tags: element closes are synthesized from
            # level transitions with ``restore_end_tags``' exact rules.
            open_levels: list[int] = []

            def close_top() -> None:
                path_stack.pop()
                frame = frames.pop()
                open_levels.pop()
                self._close_subtree(
                    frame, frames, data_stack, codec, store, device,
                    sorter, report, compact, threshold, depth_limit,
                    fan_in,
                )

        while True:
            chunk = read_available()
            if not chunk:
                record = read_one()
                if record is None:
                    break
                chunk = (record,)
            for record in chunk:
                token_type = record[0]
                if token_type == TYPE_START:
                    flags = record[1]
                    if compact:
                        if flags == 4:  # level-annotated, the stored form
                            end = _skip_tag_attrs(
                                record, 2, names is not None
                            )
                            tag_attrs = record[2:end]
                            stored_level, _ = read_varint(record, end)
                        else:
                            token = codec.decode(record)
                            if token.level is None:
                                raise CodecError(
                                    "compacted stream contains a start "
                                    "without a level"
                                )
                            tag_attrs = _encode_tag_attrs(
                                token.tag, token.attrs, names
                            )
                            stored_level = token.level
                        while open_levels and open_levels[-1] >= stored_level:
                            close_top()
                    elif flags:
                        # Annotated start in plain storage (rare): decode,
                        # then re-encode the bare tag+attrs slice.
                        token = codec.decode(record)
                        tag_attrs = _encode_tag_attrs(
                            token.tag, token.attrs, names
                        )
                    else:
                        tag_attrs = record[2:]
                    pos = next_pos
                    next_pos += 1
                    enc_atom, name_field = pieces_for(tag_attrs)
                    if pos < 0x80:
                        pos_varint = _VARINT1[pos]
                    else:
                        pos_varint = varint_bytes(pos)
                    if compact:
                        # The evaluator annotates depth, not the stored
                        # level (equal on any well-formed stream).
                        depth = len(frames) + 1
                        encoded = join(
                            (
                                b"\x01\x07",
                                tag_attrs,
                                enc_atom,
                                pos_varint,
                                _VARINT1[depth]
                                if depth < 0x80
                                else varint_bytes(depth),
                            )
                        )
                    else:
                        encoded = join(
                            (b"\x01\x03", tag_attrs, enc_atom, pos_varint)
                        )
                    loc = push(encoded)
                    push_path(
                        _VARINT1[loc] if loc < 0x80 else varint_bytes(loc)
                    )
                    frame = _OpenFrame(loc, loc + len(encoded))
                    if compact:
                        open_levels.append(stored_level)
                    else:
                        frame.end_record = join(
                            (b"\x03\x02", name_field, pos_varint)
                        )
                    frames.append(frame)
                    record_tokens(1)
                elif token_type == TYPE_TEXT:
                    if compact:
                        if record[1] & 4:
                            stored_level, _ = read_varint(
                                record, _skip_frame(record, 2)
                            )
                            while (
                                open_levels
                                and open_levels[-1] > stored_level
                            ):
                                close_top()
                            depth = len(frames)
                            if stored_level == depth:
                                push(record)
                            else:  # pragma: no cover - malformed levels
                                token = codec.decode(record)
                                push(codec.encode(Text(token.text, level=depth)))
                        else:
                            token = codec.decode(record)
                            push(
                                codec.encode(
                                    Text(token.text, level=len(frames))
                                )
                            )
                    elif record[1]:
                        token = codec.decode(record)
                        push(codec.encode(Text(token.text)))
                    else:
                        push(record)
                    record_tokens(1)
                elif token_type == TYPE_END:
                    if compact:
                        raise CodecError(
                            "compacted stream already contains end tags"
                        )
                    path_stack.pop()
                    frame = frames.pop()
                    push(frame.end_record)
                    record_tokens(1)
                    self._close_subtree(
                        frame, frames, data_stack, codec, store, device,
                        sorter, report, compact, threshold, depth_limit,
                        fan_in,
                    )
                elif token_type == TYPE_POINTER:
                    raise SortSpecError(
                        "unexpected run pointer in a document scan"
                    )
                else:
                    raise CodecError(
                        f"unknown token type byte {token_type}"
                    )
        if compact:
            while open_levels:
                close_top()
        if frames:
            raise CodecError(
                "unbalanced event stream during columnar scan"
            )

    def _handle_end(
        self,
        event: EndTag,
        frames: list[_OpenFrame],
        data_stack: ExternalStack,
        path_stack: ExternalStack,
        codec,
        store,
        device,
        sorter: SubtreeSorter,
        report: NexsortReport,
        compact: bool,
        threshold: int,
        depth_limit: int | None,
        fan_in: int,
        start_keyed: bool,
    ) -> None:
        path_stack.pop()
        frame = frames.pop()
        d_s = len(frames) + 1

        if not compact:
            end_token = EndTag(
                event.tag,
                key=event.key if not start_keyed else None,
                pos=event.pos,
            )
            data_stack.push(codec.encode(end_token))
            device.stats.record_tokens(1)

        if frame.partial_runs or self._owns_open_partial(frame):
            self._finish_flat_element(
                frame, event, frames, data_stack, codec, store, device,
                report, compact, d_s, depth_limit, fan_in,
            )
            return

        self._close_subtree(
            frame, frames, data_stack, codec, store, device, sorter,
            report, compact, threshold, depth_limit, fan_in,
        )

    def _close_subtree(
        self,
        frame: _OpenFrame,
        frames: list[_OpenFrame],
        data_stack: ExternalStack,
        codec,
        store,
        device,
        sorter: SubtreeSorter,
        report: NexsortReport,
        compact: bool,
        threshold: int,
        depth_limit: int | None,
        fan_in: int,
    ) -> None:
        """Apply the sorting condition to a just-closed element and, when
        it fires, pop + sort the subtree and push back its run pointer.
        ``frame`` is already popped; both scan loops share this path."""
        d_s = len(frames) + 1
        size = data_stack.total_bytes - frame.loc
        is_root = not frames
        should_sort = size >= threshold
        if depth_limit is not None and d_s > depth_limit + 1:
            should_sort = False
        if is_root:
            should_sort = True
        if not should_sort:
            return

        sort_levels = None
        if depth_limit is not None:
            sort_levels = max(0, depth_limit + 1 - d_s)
        token_records = data_stack.pop_through(frame.loc)
        with maybe_span(
            self._tracer,
            "subtree-sort",
            id=len(report.subtree_sorts),
            size=size,
            level=d_s,
        ) as span:
            if self.options.merge.columnar:
                # Fused path: sort straight from the encoded records
                # (falls back internally for external-sized subtrees
                # and counted-comparison mode).
                result = sorter.sort_records(
                    token_records, size, d_s, sort_levels
                )
            else:
                tokens = [codec.decode(record) for record in token_records]
                result = sorter.sort_tokens(tokens, size, d_s, sort_levels)
            if span is not None:
                span.set(
                    internal=result.internal,
                    units=result.units,
                    run_blocks=result.run.block_count,
                )
        report.subtree_sorts.append(
            SubtreeSortInfo(
                units=result.units,
                real_elements=result.real_elements,
                payload_bytes=result.payload_bytes,
                level=d_s,
                internal=result.internal,
                run_blocks=result.run.block_count,
            )
        )
        pointer = RunPointer(
            run_id=result.run.run_id,
            key=result.root_key,
            pos=result.root_pos,
            level=d_s if compact else None,
            element_count=result.real_elements,
            payload_bytes=result.payload_bytes,
        )
        data_stack.push(codec.encode(pointer))
        device.stats.record_tokens(1)

    def _maybe_flush_partial(
        self,
        frames: list[_OpenFrame],
        data_stack: ExternalStack,
        codec,
        store,
        device,
        report: NexsortReport,
        compact: bool,
        capacity_bytes: int,
        depth_limit: int | None,
    ) -> None:
        """Graceful degeneration: flush the deepest open element's complete
        children into an incomplete sorted run when memory has filled."""
        if not self.options.flat_optimization or not frames:
            return
        frame = frames[-1]
        region_bytes = data_stack.total_bytes - frame.content_loc
        # Flush when the incomplete subtree is about to overflow the data
        # stack's memory (one block of headroom, so the flush happens
        # before paging starts).  Deep shapes where the fill is spread
        # across ancestors fall back to ordinary stack paging.
        flush_at = max(device.block_size, capacity_bytes - device.block_size)
        if region_bytes < flush_at:
            return
        child_level = len(frames) + 1
        sort_levels = None
        if depth_limit is not None:
            sort_levels = max(0, depth_limit + 1 - child_level)
        records = data_stack.pop_through(frame.content_loc)
        tokens = [codec.decode(record) for record in records]
        texts, groups = flat_mod.groups_from_region(
            tokens, compact, child_level, sort_levels, codec, device.stats,
            self.options.merge.counted_comparisons,
        )
        if not groups:
            # Nothing complete to flush (one giant open child): re-push.
            for record in records:
                data_stack.push(record)
            return
        self._write_partial_groups(frame, groups, store, device, report)
        frame.flat_units += sum(group.units for group in groups)
        frame.flat_real += sum(group.real for group in groups)
        # The element's own text stays on the stack for its final close.
        for text in texts:
            token = Text(text, level=len(frames) if compact else None)
            data_stack.push(codec.encode(token))

    # -- partial-run management (graceful degeneration) ----------------------

    def _owns_open_partial(self, frame: _OpenFrame) -> bool:
        return (
            self._open_partial is not None
            and self._open_partial[0] is frame
        )

    def _close_open_partial(self, report: NexsortReport) -> None:
        """Finish the open partial run and register it with its frame."""
        if self._open_partial is None:
            return
        owner, writer = self._open_partial
        self._open_partial = None
        handle = writer.finish()
        owner.partial_runs.append(handle)
        self._run_lengths.append(handle.record_count)
        report.flat_partial_runs += 1
        if self._tracer is not None:
            self._tracer.event(
                "partial-run-flush",
                records=handle.record_count,
                blocks=handle.block_count,
            )

    def _write_partial_groups(
        self,
        frame: _OpenFrame,
        groups: list,
        store,
        device,
        report: NexsortReport,
    ) -> None:
        """Write one key-ordered batch of child groups as partial-run data.

        Default mode: one batch = one partial run, exactly the paper's
        incomplete-run construction.  With replacement selection, a batch
        whose first key is at or above the open run's last key *extends*
        that run (one comparison, charged), producing fewer, longer
        partial runs - the data stack plays the role of the selection
        heap, so no extra workspace is needed.
        """
        if not self.options.merge.replacement_selection:
            handle = flat_mod.write_partial_run(store, groups)
            frame.partial_runs.append(handle)
            self._run_lengths.append(handle.record_count)
            report.flat_partial_runs += 1
            if self._tracer is not None:
                self._tracer.event(
                    "partial-run-flush",
                    records=handle.record_count,
                    blocks=handle.block_count,
                )
            return
        if self._owns_open_partial(frame):
            writer = self._open_partial[1]
            device.stats.record_comparisons(1)
            if not writer.can_extend(groups):
                self._close_open_partial(report)
        else:
            # A different frame's run is open: close it (one open
            # partial-run writer at a time bounds buffer memory).
            self._close_open_partial(report)
        if self._open_partial is None:
            self._open_partial = (
                frame,
                flat_mod.PartialRunWriter(store),
            )
        self._open_partial[1].write_groups(groups)

    def _finish_flat_element(
        self,
        frame: _OpenFrame,
        event: EndTag,
        frames: list[_OpenFrame],
        data_stack: ExternalStack,
        codec,
        store,
        device,
        report: NexsortReport,
        compact: bool,
        d_s: int,
        depth_limit: int | None,
        fan_in: int,
    ) -> None:
        """Close an element that has incomplete sorted runs: sort the
        remaining children into a final partial run, merge all of its
        partial runs, and collapse the element to a pointer."""
        child_level = d_s + 1
        sort_levels = None
        if depth_limit is not None:
            sort_levels = max(0, depth_limit + 1 - child_level)
        records = data_stack.pop_through(frame.loc)
        tokens = [codec.decode(record) for record in records]
        start_token = tokens[0]
        assert isinstance(start_token, StartTag)
        end_key = event.key if event.key is not None else start_token.key
        if end_key is None:
            end_key = MISSING_KEY
        pos = event.pos if event.pos is not None else 0
        region = tokens[1:]
        if region and isinstance(region[-1], EndTag):
            region = region[:-1]
        texts, groups = flat_mod.groups_from_region(
            region, compact, child_level, sort_levels, codec, device.stats,
            self.options.merge.counted_comparisons,
        )
        if groups:
            self._write_partial_groups(frame, groups, store, device, report)
            frame.flat_units += sum(group.units for group in groups)
            frame.flat_real += sum(group.real for group in groups)
        if self._owns_open_partial(frame):
            self._close_open_partial(report)

        # While merging this element's partial runs, the data-stack region
        # is empty (it was just popped), so its buffer blocks serve as
        # merge input buffers on top of the two transfer buffers.  Blocks
        # held by the buffer pool stay with the pool.
        flat_fan_in = max(
            fan_in, self.memory_blocks - 4 - self.options.cache_blocks
        )

        with maybe_span(
            self._tracer,
            "flat-element-merge",
            partial_runs=len(frame.partial_runs),
            level=d_s,
            fanin=flat_fan_in,
        ):
            writer = store.create_writer("run_write")
            clean_start = StartTag(
                start_token.tag,
                start_token.attrs,
                level=d_s if compact else None,
            )
            writer.write_record(codec.encode(clean_start))
            if texts:
                writer.write_record(
                    codec.encode(
                        Text("".join(texts), level=d_s if compact else None)
                    )
                )
            for group in flat_mod.iter_merged_groups(
                store, frame.partial_runs, flat_fan_in,
                options=self.options.merge,
                tracer=self._tracer,
            ):
                for token_bytes in group.token_bytes:
                    writer.write_record(token_bytes)
            if not compact:
                writer.write_record(codec.encode(EndTag(start_token.tag)))
            handle = writer.finish()
            report.flat_final_merges += 1

        units = 1 + frame.flat_units
        real = 1 + frame.flat_real
        report.subtree_sorts.append(
            SubtreeSortInfo(
                units=units,
                real_elements=real,
                payload_bytes=handle.payload_bytes,
                level=d_s,
                internal=False,
                run_blocks=handle.block_count,
            )
        )
        pointer = RunPointer(
            run_id=handle.run_id,
            key=end_key,
            pos=pos,
            level=d_s if compact else None,
            element_count=real,
            payload_bytes=handle.payload_bytes,
        )
        data_stack.push(codec.encode(pointer))
        device.stats.record_tokens(1)


def _encode_path_entry(location: int) -> bytes:
    out = bytearray()
    write_varint(out, location)
    return bytes(out)


def _decode_path_entry(data: bytes) -> int:
    value, _ = read_varint(data, 0)
    return value


def nexsort(
    document: Document,
    spec: SortSpec,
    memory_blocks: int,
    threshold_bytes: int | None = None,
    depth_limit: int | None = None,
    flat_optimization: bool = False,
    cache_blocks: int = 0,
    merge_options: MergeOptions | None = None,
    tracer: Tracer | None = None,
    recovery=None,
    lease=None,
) -> tuple[Document, NexsortReport]:
    """Convenience wrapper: sort ``document`` with NEXSORT."""
    options = NexsortOptions(
        threshold_bytes=threshold_bytes,
        depth_limit=depth_limit,
        flat_optimization=flat_optimization,
        cache_blocks=cache_blocks,
        merge=merge_options or DEFAULT_MERGE_OPTIONS,
    )
    return NexSorter(spec, memory_blocks, options).sort(
        document, tracer, recovery=recovery, lease=lease
    )
