"""Instrumentation of a NEXSORT execution.

Every quantity appearing in the paper's analysis (Section 4.2) is recorded
here so the lemmas can be checked against real executions:

* the subtree sorts ``s_1 .. s_x`` (Lemmas 4.6-4.9),
* data/path/output-location stack paging (Lemmas 4.10, 4.11, 4.13),
* sorted-run block accesses during output (Lemma 4.12),
* and the full per-category I/O breakdown feeding Theorem 4.5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..io.stats import StatsSnapshot


@dataclass(frozen=True)
class SubtreeSortInfo:
    """One subtree sort performed during the sorting phase.

    Attributes:
        units: the paper's ``s_i`` - the number of element units collapsed
            by this sort (real elements plus already-collapsed pointers,
            each counting 1).
        real_elements: actual elements inside the resulting run, pointers
            expanded.
        payload_bytes: encoded bytes of the sorted subtree.
        level: the subtree root's level ``d_s`` (root of document = 1).
        internal: True if the subtree fit in memory and was sorted with the
            recursive in-memory algorithm; False if it needed an external
            key-path merge sort.
        run_blocks: blocks taken by the resulting sorted run.
    """

    units: int
    real_elements: int
    payload_bytes: int
    level: int
    internal: bool
    run_blocks: int


@dataclass
class NexsortReport:
    """Everything one NEXSORT run did, for analysis and assertions."""

    element_count: int = 0
    max_fanout: int = 0
    input_blocks: int = 0
    memory_blocks: int = 0
    block_size: int = 0
    threshold_bytes: int = 0
    depth_limit: int | None = None
    flat_optimization: bool = False

    subtree_sorts: list[SubtreeSortInfo] = field(default_factory=list)
    flat_partial_runs: int = 0
    flat_final_merges: int = 0

    #: Mean / maximum record count of the formation runs written by
    #: external subtree sorts and graceful-degeneration partial runs
    #: (0 when every subtree sort fit in memory).
    avg_run_length: float = 0.0
    max_run_length: int = 0

    data_stack_page_ins: int = 0
    data_stack_page_outs: int = 0
    path_stack_page_ins: int = 0
    path_stack_page_outs: int = 0
    output_stack_page_ins: int = 0
    output_stack_page_outs: int = 0

    sorting_stats: StatsSnapshot = field(default_factory=StatsSnapshot)
    output_stats: StatsSnapshot = field(default_factory=StatsSnapshot)
    stats: StatsSnapshot = field(default_factory=StatsSnapshot)

    # -- the paper's quantities ---------------------------------------------

    @property
    def x(self) -> int:
        """Number of subtree sorts (the paper's ``x``)."""
        return len(self.subtree_sorts)

    @property
    def sum_si(self) -> int:
        """Sum of subtree sort sizes (Lemma 4.6: ``N - 1 + x``)."""
        return sum(info.units for info in self.subtree_sorts)

    @property
    def internal_sorts(self) -> int:
        return sum(1 for info in self.subtree_sorts if info.internal)

    @property
    def external_sorts(self) -> int:
        return sum(1 for info in self.subtree_sorts if not info.internal)

    @property
    def run_blocks_written(self) -> int:
        """Blocks across all sorted runs (Lemma 4.8: O(N/B))."""
        return sum(info.run_blocks for info in self.subtree_sorts)

    @property
    def total_ios(self) -> int:
        return self.stats.total_ios

    @property
    def simulated_seconds(self) -> float:
        return self.stats.elapsed_seconds()

    @property
    def merge_comparisons(self) -> int:
        """Comparisons spent inside k-way merges (analytic or counted)."""
        return self.stats.merge_comparisons

    def io_breakdown(self) -> dict[str, int]:
        """Per-category total block accesses (reads + writes).

        When a buffer pool was attached, the pool's aggregate counters
        ride along under ``cache_hits`` / ``cache_misses`` /
        ``cache_evictions`` - a hit is an access the pool absorbed, so
        without them the per-category totals understate what the
        algorithm asked for.
        """
        breakdown = self.stats.io_breakdown()
        if (
            self.stats.cache_hits
            or self.stats.cache_misses
            or self.stats.cache_evictions
        ):
            breakdown["cache_hits"] = self.stats.cache_hits
            breakdown["cache_misses"] = self.stats.cache_misses
            breakdown["cache_evictions"] = self.stats.cache_evictions
        return breakdown
