"""Trace renderers: JSONL, Chrome ``trace_event``, and a tree summary.

Three views of the same finished :class:`~repro.obs.tracer.Trace`:

* :func:`write_jsonl` - one JSON object per line (``meta`` header, one
  ``span`` line per span in depth-first order, a ``totals`` footer);
  trivially greppable and the native input of ``repro trace diff``.
* :func:`write_chrome_trace` - the Chrome ``trace_event`` JSON format
  (``{"traceEvents": [...]}``) loadable in ``chrome://tracing`` and
  Perfetto.  Timestamps are **simulated** microseconds, so the rendered
  timeline is the cost model's attribution, not wall time.
* :func:`render_tree` - a human-readable span tree with per-span I/O
  bars, for terminals and README examples.

Each function also has a :class:`TraceSink` wrapper (:class:`JsonlSink`,
:class:`ChromeTraceSink`, :class:`TreeSummarySink`) that can be
subscribed to a :class:`~repro.obs.tracer.Tracer` and writes itself out
on ``on_finish`` - the pluggable-sink side of the event bus.
"""

from __future__ import annotations

import json
from typing import IO, Iterator

from .tracer import Span, Trace, Tracer

#: Microseconds per simulated second - Chrome trace timestamps are in us.
_US = 1_000_000


# -- shared serialization ------------------------------------------------------


def span_record(span: Span, index: int) -> dict:
    """The canonical dictionary form of one finished span.

    Both file formats embed this (JSONL directly, Chrome under ``args``),
    and the diff tool aligns spans across traces by its ``path`` field.
    """
    return {
        "index": index,
        "name": span.name,
        "path": span.path,
        "depth": 0 if span.parent is None else span.path.count("/"),
        "start_seconds": round(span.start_seconds, 9),
        "end_seconds": round(span.end_seconds, 9),
        "attrs": dict(span.attrs),
        "io": span.delta.counter_totals(),
        "self_io": span.self_delta.counter_totals(),
        "by_category": span.delta.io_breakdown(),
        "events": [
            {
                "name": event.name,
                "seconds": round(event.seconds, 9),
                "attrs": dict(event.attrs),
            }
            for event in span.events
        ],
    }


def _indexed_spans(trace: Trace) -> Iterator[tuple[Span, int]]:
    index = 0
    for span, _depth in trace.walk():
        yield span, index
        index += 1


# -- JSONL ---------------------------------------------------------------------


def write_jsonl(trace: Trace, fp: IO[str]) -> None:
    """Write a trace as line-delimited JSON.

    Line types: one ``{"type": "meta"}`` header, a ``{"type": "span"}``
    line per span (depth-first, parents before children), and a
    ``{"type": "totals"}`` footer whose counters cover the tracer's whole
    lifetime.
    """
    meta = {
        "type": "meta",
        "format": "repro-trace-jsonl",
        "version": 1,
        "clock": "simulated-seconds",
        "start_seconds": round(trace.start_seconds, 9),
        "end_seconds": round(trace.end_seconds, 9),
    }
    fp.write(json.dumps(meta) + "\n")
    for span, index in _indexed_spans(trace):
        record = span_record(span, index)
        record["type"] = "span"
        fp.write(json.dumps(record) + "\n")
    footer = {"type": "totals", "io": trace.totals.counter_totals()}
    fp.write(json.dumps(footer) + "\n")


# -- Chrome trace_event --------------------------------------------------------


def write_chrome_trace(trace: Trace, fp: IO[str]) -> None:
    """Write a trace in Chrome ``trace_event`` JSON object format.

    Every span becomes a complete (``"ph": "X"``) event with simulated-
    time ``ts``/``dur`` in microseconds; span point events become instant
    (``"ph": "i"``) events.  Whole-trace totals ride in ``otherData`` so
    a consumer (or the acceptance test) can check that the top-level
    spans' deltas sum to the global counters.
    """
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "args": {"name": "repro (simulated time)"},
        }
    ]
    for span, index in _indexed_spans(trace):
        record = span_record(span, index)
        events.append(
            {
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": round(span.start_seconds * _US, 3),
                "dur": round(span.duration_seconds * _US, 3),
                "pid": 1,
                "tid": 1,
                "args": {
                    "path": record["path"],
                    "attrs": record["attrs"],
                    "io": record["io"],
                    "self_io": record["self_io"],
                    "by_category": record["by_category"],
                },
            }
        )
        for event in span.events:
            events.append(
                {
                    "name": event.name,
                    "cat": "repro",
                    "ph": "i",
                    "s": "t",
                    "ts": round(event.seconds * _US, 3),
                    "pid": 1,
                    "tid": 1,
                    "args": dict(event.attrs),
                }
            )
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "format": "repro-trace-chrome",
            "version": 1,
            "clock": "simulated-seconds",
            "totals": trace.totals.counter_totals(),
        },
    }
    json.dump(document, fp, indent=1)
    fp.write("\n")


# -- tree summary --------------------------------------------------------------


def render_tree(trace: Trace, bar_width: int = 24) -> str:
    """Render the span forest as an aligned tree with per-span I/O bars.

    Bars scale to the largest root span's I/O total; each line shows the
    span's total block I/Os, its reads/writes split, and its simulated
    duration.  Point events render as dim ``*`` lines under their span.
    """
    rows: list[tuple[str, Span]] = []

    def collect(span: Span, prefix: str, is_last: bool, top: bool) -> None:
        if top:
            label = span.name
            child_prefix = ""
        else:
            connector = "`- " if is_last else "|- "
            label = prefix + connector + span.name
            child_prefix = prefix + ("   " if is_last else "|  ")
        rows.append((label, span))
        for position, child in enumerate(span.children):
            collect(
                child,
                child_prefix,
                position == len(span.children) - 1,
                False,
            )

    for root in trace.spans:
        collect(root, "", True, True)

    scale = max((span.total_ios for span in trace.spans), default=0)
    label_width = max((len(label) for label, _span in rows), default=0)
    label_width = max(label_width, len("span"))

    lines = [
        f"{'span'.ljust(label_width)}  {'I/Os':>8}  {'rd':>7}  {'wr':>7}"
        f"  {'seconds':>10}  io",
        "-" * (label_width + 42 + bar_width),
    ]
    for label, span in rows:
        delta = span.delta
        if scale:
            filled = round(bar_width * span.total_ios / scale)
            filled = min(bar_width, max(1 if span.total_ios else 0, filled))
        else:
            filled = 0
        bar = "#" * filled
        attrs = _format_attrs(span.attrs)
        lines.append(
            f"{label.ljust(label_width)}  {delta.total_ios:>8}"
            f"  {delta.total_reads:>7}  {delta.total_writes:>7}"
            f"  {span.duration_seconds:>10.4f}  {bar}{attrs}"
        )
    totals = trace.totals
    lines.append("-" * (label_width + 42 + bar_width))
    lines.append(
        f"{'total'.ljust(label_width)}  {totals.total_ios:>8}"
        f"  {totals.total_reads:>7}  {totals.total_writes:>7}"
        f"  {trace.end_seconds - trace.start_seconds:>10.4f}"
    )
    if totals.cache_hits or totals.cache_misses or totals.cache_evictions:
        lines.append(
            f"{'buffer pool'.ljust(label_width)}  hits={totals.cache_hits}"
            f" misses={totals.cache_misses}"
            f" evictions={totals.cache_evictions}"
        )
    return "\n".join(lines)


def _format_attrs(attrs: dict) -> str:
    if not attrs:
        return ""
    parts = ", ".join(f"{key}={value}" for key, value in attrs.items())
    return f"  [{parts}]"


def write_tree(trace: Trace, fp: IO[str]) -> None:
    """File-writer form of :func:`render_tree`."""
    fp.write(render_tree(trace) + "\n")


#: ``--trace-format`` name -> writer; the CLI and bench harness key off it.
TRACE_WRITERS = {
    "jsonl": write_jsonl,
    "chrome": write_chrome_trace,
    "tree": write_tree,
}


# -- pluggable sinks (the event-bus side) --------------------------------------


class TraceSink:
    """Base sink: subscribe to a :class:`~repro.obs.tracer.Tracer`.

    Subclasses override whichever callbacks they care about; the default
    implementation ignores everything, so a sink only interested in the
    finished trace just overrides :meth:`on_finish`.
    """

    def on_span_start(self, span: Span) -> None:  # pragma: no cover - hook
        pass

    def on_span_end(self, span: Span) -> None:  # pragma: no cover - hook
        pass

    def on_event(self, event) -> None:  # pragma: no cover - hook
        pass

    def on_finish(self, trace: Trace) -> None:  # pragma: no cover - hook
        pass


class _FileSink(TraceSink):
    """Writes the finished trace to a path with one of the writers."""

    writer = staticmethod(write_jsonl)

    def __init__(self, path: str):
        self.path = path

    def on_finish(self, trace: Trace) -> None:
        with open(self.path, "w", encoding="utf-8") as fp:
            type(self).writer(trace, fp)


class JsonlSink(_FileSink):
    """Writes JSONL on finish."""

    writer = staticmethod(write_jsonl)


class ChromeTraceSink(_FileSink):
    """Writes Chrome ``trace_event`` JSON on finish."""

    writer = staticmethod(write_chrome_trace)


class TreeSummarySink(_FileSink):
    """Writes the human-readable tree summary on finish."""

    writer = staticmethod(write_tree)


def attach_sink(tracer: Tracer, format_name: str, path: str) -> TraceSink:
    """Subscribe the sink for ``--trace-format`` ``format_name``."""
    sinks = {
        "jsonl": JsonlSink,
        "chrome": ChromeTraceSink,
        "tree": TreeSummarySink,
    }
    try:
        sink = sinks[format_name](path)
    except KeyError:
        raise ValueError(
            f"unknown trace format {format_name!r}; "
            f"choose from {sorted(sinks)}"
        ) from None
    tracer.subscribe(sink)
    return sink
