"""Hierarchical span tracer driven by the simulated clock.

The paper's whole argument is a *cost attribution*: Lemmas 4.9-4.13 split
NEXSORT's I/Os between the input scan, stack paging, subtree sorts, run
reads, and output writing.  The global :class:`~repro.io.stats.IOStats`
counters can reproduce the totals but not the attribution - nothing says
*which* subtree sort or *which* merge pass consumed them.  This module
closes that gap:

* a :class:`Tracer` opens nested :class:`Span`\\ s around algorithm phases
  (``document-scan``, ``subtree-sort``, ``merge-pass``, ``output-walk``,
  ...);
* every span captures an :class:`~repro.io.stats.IOStats` snapshot on
  entry and diffs it on exit, so the span's **delta** (reads/writes,
  sequential/random split, buffer-pool hits/misses/evictions, comparisons,
  tokens, simulated seconds) is exactly what happened inside it;
* timestamps are **simulated seconds** (:class:`~repro.io.stats.CostModel`
  time derived from the counters), not wall time, so traces are fully
  deterministic and diffable across runs and machines.

Observation never perturbs the observed system: the tracer only *reads*
counters, and every instrumentation site in the package defaults to
``tracer=None`` with zero-allocation fast paths, so untraced runs stay
bit-identical to the paper-faithful seed.

Structural invariants (property-tested in ``tests/test_obs.py``):

* spans nest strictly - :meth:`Tracer.end` requires the innermost open
  span, and sibling intervals never overlap;
* timestamps are monotone: ``start <= end`` and children lie inside the
  parent interval;
* a span's delta equals the componentwise sum of its children's deltas
  plus its own :attr:`Span.self_delta`, which is non-negative in every
  counter; the root spans' deltas sum to the whole trace's totals.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from ..errors import TraceError
from ..io.stats import IOStats, StatsSnapshot


@dataclass(frozen=True)
class TraceEvent:
    """A zero-duration point event attached to a span.

    Used for things that have no meaningful extent of their own but mark
    progress inside a phase: a run flushed during formation, the final
    streamed merge starting, a buffer-pool write-back.
    """

    name: str
    seconds: float
    attrs: dict = field(default_factory=dict)


class Span:
    """One traced phase: a named interval of simulated time with a delta.

    Spans are created through :meth:`Tracer.begin` / :meth:`Tracer.span`,
    never directly.  While open, :meth:`set` may add or update attributes
    (e.g. a subtree sort learns ``internal`` only after it ran).
    """

    __slots__ = (
        "name",
        "attrs",
        "start_seconds",
        "end_seconds",
        "parent",
        "children",
        "events",
        "delta",
        "_entry",
    )

    def __init__(
        self,
        name: str,
        attrs: dict,
        start_seconds: float,
        entry: StatsSnapshot,
        parent: "Span | None",
    ):
        self.name = name
        self.attrs = attrs
        self.start_seconds = start_seconds
        self.end_seconds: float | None = None
        self.parent = parent
        self.children: list[Span] = []
        self.events: list[TraceEvent] = []
        self.delta: StatsSnapshot | None = None
        self._entry = entry

    @property
    def is_open(self) -> bool:
        return self.end_seconds is None

    @property
    def duration_seconds(self) -> float:
        if self.end_seconds is None:
            return 0.0
        return self.end_seconds - self.start_seconds

    @property
    def total_ios(self) -> int:
        return self.delta.total_ios if self.delta is not None else 0

    @property
    def self_delta(self) -> StatsSnapshot:
        """This span's delta minus everything attributed to its children.

        Because children partition disjoint sub-intervals of the parent
        and counters only grow, every component is non-negative.
        """
        if self.delta is None:
            raise TraceError(f"span {self.name!r} is still open")
        delta = self.delta
        for child in self.children:
            delta = delta.minus(child.delta)
        return delta

    @property
    def path(self) -> str:
        """Slash-joined name chain from the root span down to this one."""
        parts = []
        span: Span | None = self
        while span is not None:
            parts.append(span.name)
            span = span.parent
        return "/".join(reversed(parts))

    def set(self, **attrs) -> None:
        """Attach or update structured attributes on the span."""
        self.attrs.update(attrs)

    def walk(self, depth: int = 0) -> Iterator[tuple["Span", int]]:
        """Depth-first (self, depth) traversal of this subtree."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "open" if self.is_open else f"{self.total_ios} IOs"
        return f"Span({self.name!r}, {state}, children={len(self.children)})"


@dataclass
class Trace:
    """A finished trace: the span forest plus whole-run totals."""

    spans: list[Span]
    totals: StatsSnapshot
    start_seconds: float
    end_seconds: float

    def walk(self) -> Iterator[tuple[Span, int]]:
        """Depth-first (span, depth) traversal of the whole forest."""
        for span in self.spans:
            yield from span.walk()

    def top_level_sum(self) -> StatsSnapshot:
        """Componentwise sum of the root spans' deltas.

        When the root spans tile the traced execution (every I/O happened
        inside some root span), this equals :attr:`totals` - the
        acceptance check for the instrumentation's completeness.
        """
        total = StatsSnapshot(cost_model=self.totals.cost_model)
        for span in self.spans:
            total = total.plus(span.delta)
        return total

    def phase_breakdown(self) -> dict[str, dict]:
        """Aggregate root-span deltas by span name.

        The bench harness embeds this as the per-phase section of every
        ``BENCH_*.json``: ``{phase: {ios, reads, writes, seconds, ...}}``
        with repeated phases (e.g. many ``merge-pass`` roots) summed.
        """
        phases: dict[str, StatsSnapshot] = {}
        for span in self.spans:
            if span.name in phases:
                phases[span.name] = phases[span.name].plus(span.delta)
            else:
                phases[span.name] = span.delta
        breakdown = {}
        for name, delta in phases.items():
            entry = {
                "ios": delta.total_ios,
                "reads": delta.total_reads,
                "writes": delta.total_writes,
                "cache_hits": delta.cache_hits,
                "cache_misses": delta.cache_misses,
                "comparisons": delta.comparisons,
                "seconds": round(delta.elapsed_seconds(), 9),
            }
            if delta.disk_busy:
                # Parallel-device phases additionally attribute how much
                # of the phase's I/O overlapped across disks or stalled
                # the pipeline; serial phases keep the seed's exact keys.
                entry["disk_seconds"] = round(delta.disk_seconds(), 9)
                entry["overlap_seconds"] = round(delta.overlap_seconds(), 9)
                entry["stall_seconds"] = round(delta.stall_seconds, 9)
            breakdown[name] = entry
        return breakdown


class Tracer:
    """Opens nested spans over one :class:`~repro.io.stats.IOStats`.

    Args:
        stats: the device's accumulator; its counters are both the span
            deltas (via snapshots) and the simulated clock (via
            ``elapsed_seconds``).

    A tracer is an *event bus*: sinks subscribed with :meth:`subscribe`
    receive ``on_span_start`` / ``on_span_end`` / ``on_event`` /
    ``on_finish`` callbacks as the trace unfolds, so renderers can stream
    or buffer as they prefer (see :mod:`repro.obs.sinks`).
    """

    def __init__(self, stats: IOStats):
        self.stats = stats
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._sinks: list = []
        self._origin = stats.snapshot()
        self._start_seconds = stats.elapsed_seconds()
        self._trace: Trace | None = None

    # -- event bus -----------------------------------------------------------

    def subscribe(self, sink) -> None:
        """Attach a sink; it receives span lifecycle callbacks."""
        self._sinks.append(sink)

    def unsubscribe(self, sink) -> None:
        self._sinks.remove(sink)

    # -- span lifecycle ------------------------------------------------------

    @property
    def current(self) -> Span | None:
        """The innermost open span, or None at top level."""
        return self._stack[-1] if self._stack else None

    @property
    def finished(self) -> bool:
        """True once :meth:`finish` has sealed the trace."""
        return self._trace is not None

    @property
    def depth(self) -> int:
        return len(self._stack)

    def begin(self, name: str, **attrs) -> Span:
        """Open a span nested under the current one."""
        if self._trace is not None:
            raise TraceError("tracer is finished; no more spans")
        span = Span(
            name,
            attrs,
            self.stats.elapsed_seconds(),
            self.stats.snapshot(),
            self.current,
        )
        if span.parent is not None:
            span.parent.children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        for sink in self._sinks:
            sink.on_span_start(span)
        return span

    def end(self, span: Span) -> Span:
        """Close a span; it must be the innermost open one."""
        if not self._stack or self._stack[-1] is not span:
            open_name = self._stack[-1].name if self._stack else "<none>"
            raise TraceError(
                f"cannot end span {span.name!r}: innermost open span is "
                f"{open_name!r} (spans must nest strictly)"
            )
        self._stack.pop()
        span.delta = self.stats.delta(span._entry)
        span.end_seconds = self.stats.elapsed_seconds()
        for sink in self._sinks:
            sink.on_span_end(span)
        return span

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        """Context-manager form of :meth:`begin` / :meth:`end`."""
        opened = self.begin(name, **attrs)
        try:
            yield opened
        finally:
            self.end(opened)

    def event(self, name: str, **attrs) -> TraceEvent:
        """Record a point event on the innermost open span.

        Top-level events (no open span) are attached to a synthetic
        zero-length root span so they survive into the trace.
        """
        event = TraceEvent(name, self.stats.elapsed_seconds(), attrs)
        owner = self.current
        if owner is None:
            with self.span(name) as wrapper:
                wrapper.events.append(event)
        else:
            owner.events.append(event)
        for sink in self._sinks:
            sink.on_event(event)
        return event

    def finish(self) -> Trace:
        """Close out the trace; idempotent.

        Spans left open (an exception unwound past them) are force-closed
        innermost-first and marked ``truncated`` so partial traces remain
        well-formed.
        """
        if self._trace is not None:
            return self._trace
        while self._stack:
            span = self._stack[-1]
            span.set(truncated=True)
            self.end(span)
        trace = Trace(
            spans=self.roots,
            totals=self.stats.delta(self._origin),
            start_seconds=self._start_seconds,
            end_seconds=self.stats.elapsed_seconds(),
        )
        self._trace = trace
        for sink in self._sinks:
            sink.on_finish(trace)
        return trace


@contextmanager
def maybe_span(tracer: Tracer | None, name: str, **attrs):
    """``tracer.span(...)`` when tracing, a no-op context otherwise.

    The instrumentation sites use this (or an explicit ``if tracer``
    fast path in hot loops) so the untraced default costs nothing.
    """
    if tracer is None:
        yield None
    else:
        with tracer.span(name, **attrs) as span:
            yield span
