"""Span-based tracing and phase-attributed observability.

The package turns the global :class:`~repro.io.stats.IOStats` counters
into a *per-phase* account of a sort: :class:`Tracer` opens nested spans
whose entry/exit snapshots attribute every read, write, cache hit, and
comparison to the phase that caused it, on the simulated clock.  Sinks
render the finished trace as JSONL, Chrome ``trace_event`` JSON, or a
terminal tree; :mod:`repro.obs.diff` compares two trace files for
regressions.
"""

from .diff import TraceDiff, diff_files, diff_traces, load_trace
from .sinks import (
    TRACE_WRITERS,
    ChromeTraceSink,
    JsonlSink,
    TraceSink,
    TreeSummarySink,
    attach_sink,
    render_tree,
    write_chrome_trace,
    write_jsonl,
    write_tree,
)
from .tracer import Span, Trace, TraceEvent, Tracer, maybe_span

__all__ = [
    "Tracer",
    "Trace",
    "Span",
    "TraceEvent",
    "maybe_span",
    "TraceSink",
    "JsonlSink",
    "ChromeTraceSink",
    "TreeSummarySink",
    "TRACE_WRITERS",
    "attach_sink",
    "render_tree",
    "write_jsonl",
    "write_chrome_trace",
    "write_tree",
    "TraceDiff",
    "load_trace",
    "diff_traces",
    "diff_files",
]
