"""Trace regression comparator: ``repro trace diff A B``.

Loads two trace files (either JSONL or Chrome ``trace_event`` output -
the format is auto-detected), aligns spans across the two traces by
their slash-joined *path* plus occurrence index, and reports per-span
counter and simulated-time deltas.  Because traces are driven by the
simulated clock, two runs of the same configuration produce *identical*
files, so any delta is a real behaviour change - this is the regression
check the CI trace-smoke job runs against itself (expecting zero).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..errors import TraceError

#: Counter keys compared per span, in report order.  ``seconds`` is the
#: simulated clock, so it is as deterministic as the integer counters.
COMPARED_KEYS = (
    "reads",
    "writes",
    "total_ios",
    "sequential_ios",
    "random_ios",
    "cache_hits",
    "cache_misses",
    "cache_evictions",
    "comparisons",
    "merge_comparisons",
    "tokens",
    "compress_raw_bytes",
    "compress_stored_bytes",
    "decompress_stored_bytes",
    "decompress_raw_bytes",
    "seconds",
)


@dataclass
class SpanRow:
    """One span as loaded from a trace file, format-independent."""

    path: str
    occurrence: int
    io: dict

    @property
    def key(self) -> tuple[str, int]:
        return (self.path, self.occurrence)


@dataclass
class LoadedTrace:
    """A trace file reduced to what the comparator needs."""

    path: str
    format: str
    spans: list[SpanRow]
    totals: dict


def load_trace(path: str) -> LoadedTrace:
    """Load a trace file, auto-detecting JSONL vs Chrome ``trace_event``.

    Raises:
        TraceError: the file is neither format, or is structurally broken
            (missing totals, spans without I/O dictionaries...).
    """
    with open(path, "r", encoding="utf-8") as fp:
        text = fp.read()
    stripped = text.lstrip()
    if not stripped:
        raise TraceError(f"{path}: empty file is not a trace")
    if stripped.startswith("{") and '"traceEvents"' in stripped[:4096]:
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise TraceError(f"{path}: invalid Chrome trace JSON: {exc}")
        return _load_chrome(path, document)
    return _load_jsonl(path, text)


def _occurrences(rows: list[SpanRow]) -> list[SpanRow]:
    """Assign occurrence indices so repeated paths stay distinguishable."""
    seen: dict[str, int] = {}
    for row in rows:
        row.occurrence = seen.get(row.path, 0)
        seen[row.path] = row.occurrence + 1
    return rows


def _load_jsonl(path: str, text: str) -> LoadedTrace:
    spans: list[SpanRow] = []
    totals: dict | None = None
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceError(f"{path}:{number}: not JSONL: {exc}")
        kind = record.get("type")
        if kind == "span":
            spans.append(SpanRow(record["path"], 0, record.get("io", {})))
        elif kind == "totals":
            totals = record.get("io", {})
        elif kind == "meta":
            if record.get("format") not in (None, "repro-trace-jsonl"):
                raise TraceError(
                    f"{path}: unknown JSONL trace format "
                    f"{record.get('format')!r}"
                )
    if totals is None:
        raise TraceError(f"{path}: JSONL trace has no totals footer")
    return LoadedTrace(path, "jsonl", _occurrences(spans), totals)


def _load_chrome(path: str, document: dict) -> LoadedTrace:
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise TraceError(f"{path}: traceEvents is not a list")
    spans: list[SpanRow] = []
    for event in events:
        if event.get("ph") != "X":
            continue
        args = event.get("args", {})
        span_path = args.get("path", event.get("name", "?"))
        spans.append(SpanRow(span_path, 0, args.get("io", {})))
    totals = document.get("otherData", {}).get("totals")
    if totals is None:
        raise TraceError(f"{path}: Chrome trace has no otherData.totals")
    return LoadedTrace(path, "chrome", _occurrences(spans), totals)


@dataclass
class SpanDelta:
    """Counter deltas (B minus A) for one aligned span."""

    path: str
    occurrence: int
    deltas: dict


@dataclass
class TraceDiff:
    """Result of comparing two traces span by span."""

    a: LoadedTrace
    b: LoadedTrace
    changed: list[SpanDelta] = field(default_factory=list)
    only_a: list[SpanRow] = field(default_factory=list)
    only_b: list[SpanRow] = field(default_factory=list)
    totals_delta: dict = field(default_factory=dict)

    @property
    def identical(self) -> bool:
        return not (
            self.changed or self.only_a or self.only_b or self.totals_delta
        )

    def render(self) -> str:
        """Human-readable report; one line per changed span."""
        lines = [f"trace diff: {self.a.path} -> {self.b.path}"]
        if self.identical:
            lines.append(
                f"identical: {len(self.a.spans)} spans, no counter deltas"
            )
            return "\n".join(lines)
        for row in self.only_a:
            lines.append(f"- only in A: {_label(row)}")
        for row in self.only_b:
            lines.append(f"+ only in B: {_label(row)}")
        for entry in self.changed:
            label = _label(entry)
            parts = ", ".join(
                f"{key}: {_fmt(value)}"
                for key, value in entry.deltas.items()
            )
            lines.append(f"~ {label}: {parts}")
        if self.totals_delta:
            parts = ", ".join(
                f"{key}: {_fmt(value)}"
                for key, value in self.totals_delta.items()
            )
            lines.append(f"~ totals: {parts}")
        lines.append(
            f"{len(self.changed)} changed, {len(self.only_a)} removed, "
            f"{len(self.only_b)} added"
        )
        return "\n".join(lines)


def _label(row) -> str:
    if row.occurrence:
        return f"{row.path}#{row.occurrence}"
    return row.path


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:+.6f}"
    return f"{value:+d}"


def _io_delta(a: dict, b: dict, ignore_counters=()) -> dict:
    deltas: dict = {}
    for key in COMPARED_KEYS:
        if key in ignore_counters:
            continue
        before = a.get(key, 0)
        after = b.get(key, 0)
        if isinstance(before, float) or isinstance(after, float):
            if abs(after - before) > 1e-9:
                deltas[key] = after - before
        elif after != before:
            deltas[key] = after - before
    return deltas


def _filter_ignored(spans: list[SpanRow], ignore) -> list[SpanRow]:
    """Drop spans whose path contains an ignored segment.

    Filtering is by whole path segment, so ``--ignore pool-flush`` drops
    every ``pool-flush`` span wherever it nests.  All occurrences of a
    path are kept or dropped together, so occurrence indices stay aligned.
    """
    ignored = set(ignore)
    return [
        row
        for row in spans
        if not ignored.intersection(row.path.split("/"))
    ]


def diff_traces(
    a: LoadedTrace, b: LoadedTrace, ignore=(), ignore_counters=()
) -> TraceDiff:
    """Align spans by (path, occurrence) and compute counter deltas.

    ``ignore`` names span path segments excluded from the comparison -
    e.g. synthetic fault/retry event spans that only one of the traces
    has by design.  ``ignore_counters`` names counter keys excluded from
    every span and the totals - e.g. the byte/time counters run
    compression legitimately moves, when the point of the diff is that
    everything *else* (comparisons, tokens, cache behaviour) is
    identical.  Totals are always compared over the remaining keys.
    """
    result = TraceDiff(a=a, b=b)
    a_spans = _filter_ignored(a.spans, ignore) if ignore else a.spans
    b_spans = _filter_ignored(b.spans, ignore) if ignore else b.spans
    ignored_keys = frozenset(ignore_counters)
    b_index = {row.key: row for row in b_spans}
    matched: set[tuple[str, int]] = set()
    for row in a_spans:
        other = b_index.get(row.key)
        if other is None:
            result.only_a.append(row)
            continue
        matched.add(row.key)
        deltas = _io_delta(row.io, other.io, ignored_keys)
        if deltas:
            result.changed.append(
                SpanDelta(row.path, row.occurrence, deltas)
            )
    for row in b_spans:
        if row.key not in matched:
            result.only_b.append(row)
    result.totals_delta = _io_delta(a.totals, b.totals, ignored_keys)
    return result


def diff_files(
    path_a: str, path_b: str, ignore=(), ignore_counters=()
) -> TraceDiff:
    """Convenience wrapper: load both files and diff them."""
    return diff_traces(
        load_trace(path_a),
        load_trace(path_b),
        ignore=ignore,
        ignore_counters=ignore_counters,
    )
