"""Exception hierarchy for the NEXSORT reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single type at the API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class DeviceError(ReproError):
    """A block device was used incorrectly (bad block id, bad size...)."""


class DeviceFault(DeviceError):
    """An injected device failure (:mod:`repro.faults`).

    Transient faults succeed when the same operation is attempted again;
    persistent faults fail every attempt from the first injected one on.
    Torn faults are transient faults raised by a vectored write after only
    a prefix of the blocks reached the device.

    Attributes:
        op: "read", "write", or "torn".
        category: accounting category of the failed access ("" if the
            fault is not category-scoped).
        transient: whether a retry of the same operation can succeed.
        torn: whether a prefix of a vectored write was persisted.
        attempt: 1-based attempt index (within the fault plan's counter)
            at which the fault fired.
        disk: member disk the rule was scoped to (striped devices), or
            None for a device-wide fault.
    """

    def __init__(
        self,
        message: str,
        op: str = "",
        category: str = "",
        transient: bool = True,
        torn: bool = False,
        attempt: int = 0,
        disk: int | None = None,
    ):
        super().__init__(message)
        self.op = op
        self.category = category
        self.transient = transient
        self.torn = torn
        self.attempt = attempt
        self.disk = disk


class FaultPlanError(ReproError):
    """A fault-plan specification string could not be parsed."""


class SortRecoveryError(ReproError):
    """A sort could not recover from device faults.

    Raised when a persistent fault is hit, or when the retry/restart
    budgets are exhausted.  The message names the last completed
    checkpoint so operators know where a resumed sort would pick up.

    Attributes:
        checkpoint: the last completed :class:`repro.faults.Checkpoint`,
            or None if the sort failed before any unit completed.
    """

    def __init__(self, message: str, checkpoint=None):
        super().__init__(message)
        self.checkpoint = checkpoint


class MemoryBudgetExceeded(ReproError):
    """A component tried to reserve more internal-memory blocks than exist.

    The external-memory model gives algorithms exactly ``M`` blocks of
    internal memory; reserving past that is a programming error in the
    algorithm, not a runtime condition to retry.
    """


class StackError(ReproError):
    """An external-memory stack was misused (pop from empty, bad offset)."""


class RunError(ReproError):
    """A sorted run was read or written incorrectly."""


class RunCodecError(RunError):
    """A compressed run segment failed to decode.

    Raised when a compressed run's framing is truncated, its checksum
    does not match, or its codec id is unknown - i.e. the stored bytes
    are corrupt, not merely mis-addressed.

    Attributes:
        run_id: the run whose segment failed to decode.
        block: first physical block id of the corrupt segment (-1 when
            the corruption is not tied to a stored block, e.g. a wire
            payload).
    """

    def __init__(self, message: str, run_id: int = -1, block: int = -1):
        super().__init__(message)
        self.run_id = run_id
        self.block = block


class XMLSyntaxError(ReproError):
    """The input text is not well-formed XML.

    Attributes:
        position: character offset into the input where the error was found.
        line: 1-based line number of the error.
    """

    def __init__(self, message: str, position: int = -1, line: int = -1):
        super().__init__(message)
        self.position = position
        self.line = line

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        base = super().__str__()
        if self.line >= 0:
            return f"{base} (line {self.line}, offset {self.position})"
        return base


class CodecError(ReproError):
    """A token or record could not be encoded/decoded."""


class SortSpecError(ReproError):
    """An ordering criterion is invalid or unsupported for the operation."""


class MergeError(ReproError):
    """Structural merge inputs violate the merge preconditions."""


class ServiceError(ReproError):
    """The multi-tenant sort service was misconfigured or misused.

    Covers bad workload specifications, unknown scheduling policies, and
    jobs submitted against a released pool (:mod:`repro.service`).
    """


class TraceError(ReproError):
    """The span tracer was misused or a trace file is malformed.

    Raised when spans are closed out of nesting order, when a finished
    tracer is asked for more spans, or when ``repro trace diff`` is given
    a file that is neither JSONL nor Chrome ``trace_event`` output.
    """
