"""Experiment runner shared by every benchmark.

One experiment = load a generated document onto a fresh simulated device,
run one sorter (or merger) configuration, and collect the metrics the
paper reports: simulated sort time, total I/Os, pass counts / subtree
sorts, and the per-category breakdown.

The geometry defaults mirror the paper's setup scaled down by the block
size (the paper: 64 KB blocks, ~150-byte elements, 3-32 MB of memory; here
512-byte blocks, ~45-byte elements, 16-96 blocks of memory - the same
``N/B``, ``M/B``, ``k/B`` regimes).  ``REPRO_BENCH_SCALE=large`` doubles
workload sizes for longer, smoother curves.
"""

from __future__ import annotations

import os
import platform as _platform
import sys
import time
from dataclasses import dataclass
from typing import Callable, Iterable

from ..baselines.merge_sort import external_merge_sort
from ..core import columnar as _columnar
from ..core.nexsort import nexsort
from ..io.device import BlockDevice
from ..io.parallel import StripedDevice
from ..io.runs import RunStore
from ..keys import ByAttribute, SortSpec
from ..merge.engine import MergeOptions
from ..obs.tracer import Tracer
from ..xml.compact import CompactionConfig
from ..xml.document import Document
from ..xml.tokens import Token

#: Default block size for benchmark devices.
BENCH_BLOCK_SIZE = 512

#: The standard benchmark ordering criterion.
BENCH_SPEC = SortSpec(default=ByAttribute("name"))


def bench_scale() -> float:
    """Workload multiplier from the REPRO_BENCH_SCALE env var."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "small")
    return {"small": 1.0, "medium": 2.0, "large": 4.0}.get(scale, 1.0)


@dataclass
class SortMetrics:
    """What one sort run measured."""

    algorithm: str
    element_count: int
    input_blocks: int
    memory_blocks: int
    simulated_seconds: float
    total_ios: int
    detail: dict
    wall_seconds: float = 0.0

    @property
    def ios_per_block(self) -> float:
        return self.total_ios / max(1, self.input_blocks)


def peak_rss_bytes() -> int | None:
    """Peak resident set size of this process, or None if unmeasurable.

    Uses :mod:`resource` (POSIX); ``ru_maxrss`` is kilobytes on Linux and
    bytes on macOS.  Returns None on platforms without the module so
    benchmark rows degrade to ``"peak_rss_bytes": null`` instead of
    failing.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover
        return peak
    return peak * 1024


def environment_detail() -> dict:
    """Host-environment columns recorded in every bench row (ISSUE 7).

    ``numpy_version`` is None exactly when the columnar kernels run on
    their pure-Python fallback, so a JSON diff across hosts shows at a
    glance whether two wall-clock columns used the same backend.
    """
    return {
        "python_version": _platform.python_version(),
        "numpy_version": (
            _columnar._np.__version__ if _columnar.have_numpy() else None
        ),
        "platform": _platform.platform(),
    }


def load_document(
    events: Iterable[Token],
    block_size: int = BENCH_BLOCK_SIZE,
    compaction: CompactionConfig | None = None,
    disks: int | None = None,
    prefetch_depth: int = 0,
    prefetch_policy: str = "forecast",
) -> Document:
    """Put a generated event stream on a fresh device.

    ``disks=None`` (the default) uses the serial :class:`BlockDevice`.
    Any integer - including 1 - builds a :class:`StripedDevice` instead,
    so benchmarks can demonstrate that a 1-disk stripe reproduces the
    serial goldens bit for bit.
    """
    if disks is None:
        device = BlockDevice(block_size=block_size)
    else:
        device = StripedDevice(
            disks=disks,
            block_size=block_size,
            prefetch_depth=prefetch_depth,
            prefetch_policy=prefetch_policy,
        )
    store = RunStore(device)
    return Document.from_events(store, events, compaction=compaction)


def _parallel_detail(device: BlockDevice, report) -> dict:
    """Parallel-I/O columns recorded in every bench row (ISSUE 5).

    Serial devices report disks=1, no prefetch, zero overlap/stall and an
    empty utilization map, so existing benchmark JSON gains only constant
    columns and stays comparable across configurations.
    """
    snap = report.stats
    return {
        "disks": getattr(device, "disks", 1),
        "prefetch_depth": getattr(device, "prefetch_depth", 0),
        "disk_seconds": snap.disk_seconds(),
        "overlap_seconds": snap.overlap_seconds(),
        "stall_seconds": snap.stall_seconds,
        "disk_utilization": {
            str(disk): round(value, 4)
            for disk, value in sorted(snap.disk_utilization().items())
        },
    }


def _compression_detail(report, merge_options) -> dict:
    """Run-compression columns recorded in every bench row (ISSUE 10).

    All three are null when compression is off, so existing benchmark
    JSON gains only constant columns and rows stay diffable across
    codec on/off sweeps.
    """
    snap = report.stats
    codec = getattr(merge_options, "compress", None)
    stored = snap.compress_stored_bytes
    raw = snap.compress_raw_bytes
    return {
        "codec": codec,
        "compressed_bytes": stored if codec else None,
        "compression_ratio": (
            round(raw / stored, 4) if codec and stored else None
        ),
    }


def run_nexsort(
    events_factory: Callable[[], Iterable[Token]],
    memory_blocks: int,
    spec: SortSpec = BENCH_SPEC,
    block_size: int = BENCH_BLOCK_SIZE,
    compaction: CompactionConfig | None = None,
    disks: int | None = None,
    prefetch_depth: int = 0,
    prefetch_policy: str = "forecast",
    **options,
) -> SortMetrics:
    """One NEXSORT experiment on a fresh device.

    Every run is traced (the tracer is read-only, so metrics match an
    untraced run bit for bit) and the root-span phase breakdown lands in
    ``detail["phases"]`` - the per-phase section of every ``BENCH_*.json``.
    """
    document = load_document(
        events_factory(), block_size, compaction,
        disks=disks, prefetch_depth=prefetch_depth,
        prefetch_policy=prefetch_policy,
    )
    tracer = Tracer(document.store.device.stats)
    wall_start = time.perf_counter()
    _output, report = nexsort(
        document, spec, memory_blocks=memory_blocks, tracer=tracer,
        **options,
    )
    wall_seconds = time.perf_counter() - wall_start
    trace = tracer.finish()
    return SortMetrics(
        algorithm="nexsort",
        element_count=document.element_count,
        input_blocks=document.block_count,
        memory_blocks=memory_blocks,
        simulated_seconds=report.simulated_seconds,
        total_ios=report.total_ios,
        detail={
            "x": report.x,
            "internal_sorts": report.internal_sorts,
            "external_sorts": report.external_sorts,
            "flat_partial_runs": report.flat_partial_runs,
            "avg_run_length": report.avg_run_length,
            "max_run_length": report.max_run_length,
            "merge_comparisons": report.merge_comparisons,
            "data_stack_page_outs": report.data_stack_page_outs,
            "breakdown": report.io_breakdown(),
            "phases": trace.phase_breakdown(),
            "max_fanout": report.max_fanout,
            "threshold_bytes": report.threshold_bytes,
            "output_reads": report.output_stats.total_reads,
            "cache_hits": report.stats.cache_hits,
            "cache_misses": report.stats.cache_misses,
            "cache_evictions": report.stats.cache_evictions,
            "peak_rss_bytes": peak_rss_bytes(),
            **environment_detail(),
            **_parallel_detail(document.store.device, report),
            **_compression_detail(report, options.get("merge_options")),
        },
        wall_seconds=wall_seconds,
    )


def run_merge_sort(
    events_factory: Callable[[], Iterable[Token]],
    memory_blocks: int,
    spec: SortSpec = BENCH_SPEC,
    block_size: int = BENCH_BLOCK_SIZE,
    compaction: CompactionConfig | None = None,
    cache_blocks: int = 0,
    merge_options: MergeOptions | None = None,
    disks: int | None = None,
    prefetch_depth: int = 0,
    prefetch_policy: str = "forecast",
) -> SortMetrics:
    """One external merge sort experiment on a fresh device."""
    document = load_document(
        events_factory(), block_size, compaction,
        disks=disks, prefetch_depth=prefetch_depth,
        prefetch_policy=prefetch_policy,
    )
    tracer = Tracer(document.store.device.stats)
    wall_start = time.perf_counter()
    _output, report = external_merge_sort(
        document, spec, memory_blocks=memory_blocks,
        cache_blocks=cache_blocks, merge_options=merge_options,
        tracer=tracer,
    )
    wall_seconds = time.perf_counter() - wall_start
    trace = tracer.finish()
    return SortMetrics(
        algorithm="merge_sort",
        element_count=document.element_count,
        input_blocks=document.block_count,
        memory_blocks=memory_blocks,
        simulated_seconds=report.simulated_seconds,
        total_ios=report.total_ios,
        detail={
            "initial_runs": report.initial_runs,
            "fan_in": report.fan_in,
            "passes": report.total_passes,
            "avg_run_length": report.avg_run_length,
            "max_run_length": report.max_run_length,
            "merge_comparisons": report.merge_comparisons,
            "comparisons": report.stats.comparisons,
            "cpu_seconds": report.stats.cpu_seconds(),
            "breakdown": report.io_breakdown(),
            "phases": trace.phase_breakdown(),
            "cache_hits": report.stats.cache_hits,
            "cache_misses": report.stats.cache_misses,
            "cache_evictions": report.stats.cache_evictions,
            "peak_rss_bytes": peak_rss_bytes(),
            **environment_detail(),
            **_parallel_detail(document.store.device, report),
            **_compression_detail(report, merge_options),
        },
        wall_seconds=wall_seconds,
    )


def run_config(
    events_factory: Callable[[], Iterable[Token]],
    config,
    spec: SortSpec = BENCH_SPEC,
    block_size: int = BENCH_BLOCK_SIZE,
    compaction: CompactionConfig | None = None,
) -> SortMetrics:
    """Run one :class:`~repro.analysis.planner.PlanConfig` end to end.

    The bridge between the planner's knob grid and the measured world:
    ``bench_planner`` and the planner regression tests hand the chosen
    (or every candidate) config here and compare simulated seconds.
    A 1-disk no-prefetch config uses the serial device so its counters
    match the recorded serial goldens bit for bit.
    """
    disks = (
        config.disks
        if (config.disks > 1 or config.prefetch_depth)
        else None
    )
    common = dict(
        spec=spec,
        block_size=block_size,
        compaction=compaction,
        disks=disks,
        prefetch_depth=config.prefetch_depth,
        prefetch_policy=config.prefetch_policy,
    )
    if config.algorithm == "merge_sort":
        return run_merge_sort(
            events_factory,
            config.memory_blocks,
            cache_blocks=config.cache_blocks,
            merge_options=config.merge_options(),
            **common,
        )
    return run_nexsort(
        events_factory,
        config.memory_blocks,
        cache_blocks=config.cache_blocks,
        threshold_bytes=config.threshold_blocks * block_size,
        flat_optimization=config.flat_optimization,
        merge_options=config.merge_options(),
        **common,
    )


def slowdown(baseline: SortMetrics, other: SortMetrics) -> float:
    """other / baseline simulated time, as the paper's percentages."""
    if baseline.simulated_seconds == 0:
        return float("inf")
    return other.simulated_seconds / baseline.simulated_seconds
