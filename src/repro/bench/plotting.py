"""ASCII rendering of benchmark series, for figure-shaped results.

The paper's Figures 5-7 are line charts; the bench suite reproduces their
*series* as tables and, via :func:`ascii_chart`, as terminal plots so the
curve shapes (the reproduction target) are visible at a glance in the
``pytest benchmarks/`` output.
"""

from __future__ import annotations

#: Glyphs assigned to series, in order.
_MARKERS = "*o+x#@"


def ascii_chart(
    xs: list,
    series: dict[str, list[float]],
    width: int = 64,
    height: int = 12,
    y_label: str = "",
) -> str:
    """Render one or more y-series over shared x positions.

    X positions are spread evenly (category axis, like the paper's
    sweeps); y is linearly scaled from zero to the maximum value.
    """
    if not xs or not series:
        return "(no data)"
    peak = max(max(values) for values in series.values() if values)
    if peak <= 0:
        peak = 1.0
    columns = [
        round(index * (width - 1) / max(1, len(xs) - 1))
        for index in range(len(xs))
    ]
    grid = [[" "] * width for _ in range(height)]
    for series_index, (name, values) in enumerate(series.items()):
        marker = _MARKERS[series_index % len(_MARKERS)]
        previous: tuple[int, int] | None = None
        for column, value in zip(columns, values):
            row = height - 1 - round(value / peak * (height - 1))
            row = min(height - 1, max(0, row))
            if previous is not None:
                _draw_segment(grid, previous, (column, row))
            grid[row][column] = marker
            previous = (column, row)

    lines = []
    top_label = f"{peak:.3g}"
    lines.append(f"{top_label:>8} |" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 8 + " |" + "".join(row))
    lines.append(f"{0:>8} |" + "".join(grid[-1]))
    lines.append(" " * 8 + " +" + "-" * width)
    x_axis = [" "] * width
    for column, x in zip(columns, xs):
        label = str(x)
        start = min(column, width - len(label))
        for offset, char in enumerate(label):
            x_axis[start + offset] = char
    lines.append(" " * 10 + "".join(x_axis))
    legend = "   ".join(
        f"{_MARKERS[index % len(_MARKERS)]} {name}"
        for index, name in enumerate(series)
    )
    lines.append(f"{' ' * 10}{legend}")
    if y_label:
        lines.insert(0, f"{' ' * 10}[y: {y_label}]")
    return "\n".join(lines)


def _draw_segment(grid, start: tuple[int, int], end: tuple[int, int]) -> None:
    """Light interpolation dots between consecutive points."""
    (x0, y0), (x1, y1) = start, end
    steps = max(abs(x1 - x0), abs(y1 - y0))
    for step in range(1, steps):
        x = round(x0 + (x1 - x0) * step / steps)
        y = round(y0 + (y1 - y0) * step / steps)
        if grid[y][x] == " ":
            grid[y][x] = "."
