"""Benchmark harness: experiment runner and result-table reporting."""

from .harness import (
    BENCH_BLOCK_SIZE,
    BENCH_SPEC,
    SortMetrics,
    bench_scale,
    load_document,
    run_config,
    run_merge_sort,
    run_nexsort,
    slowdown,
)
from .plotting import ascii_chart
from .reporting import BenchReport, drain_reports, record_table

__all__ = [
    "BENCH_BLOCK_SIZE",
    "BENCH_SPEC",
    "BenchReport",
    "SortMetrics",
    "ascii_chart",
    "bench_scale",
    "drain_reports",
    "load_document",
    "record_table",
    "run_config",
    "run_merge_sort",
    "run_nexsort",
    "slowdown",
]
