"""Result tables for the benchmark suite.

Each benchmark records one table (the analogue of a paper table or the
series behind a paper figure) through :func:`record_table`; the
``benchmarks/conftest.py`` terminal-summary hook prints everything at the
end of the run, so ``pytest benchmarks/ --benchmark-only`` shows the
reproduced numbers alongside pytest-benchmark's wall-clock timings.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class BenchReport:
    """One rendered experiment table plus commentary."""

    title: str
    headers: list[str]
    rows: list[list[str]]
    notes: list[str] = field(default_factory=list)
    chart: str | None = None

    def render(self) -> str:
        widths = [len(header) for header in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [f"== {self.title} =="]
        header = "  ".join(
            header.ljust(width)
            for header, width in zip(self.headers, widths)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append(
                "  ".join(
                    cell.ljust(width) for cell, width in zip(row, widths)
                )
            )
        if self.chart:
            lines.append("")
            lines.append(self.chart)
        for note in self.notes:
            lines.append(f"  * {note}")
        return "\n".join(lines)


#: Global registry the conftest summary hook drains.
REPORTS: list[BenchReport] = []


def record_table(
    title: str,
    headers: list[str],
    rows: list[list[object]],
    notes: list[str] | None = None,
    chart: str | None = None,
) -> BenchReport:
    """Register a result table for end-of-run printing; returns it."""
    report = BenchReport(
        title=title,
        headers=list(headers),
        rows=[[_fmt(cell) for cell in row] for row in rows],
        notes=list(notes or []),
        chart=chart,
    )
    REPORTS.append(report)
    return report


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def drain_reports() -> list[BenchReport]:
    """Return and clear all recorded reports."""
    reports = list(REPORTS)
    REPORTS.clear()
    return reports
