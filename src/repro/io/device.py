"""Simulated block device with exact I/O accounting.

This module stands in for the paper's experimental substrate (TPIE over a
real disk).  Every external-memory structure in the package - stacks, sorted
runs, documents - performs block reads and writes exclusively through a
:class:`BlockDevice`, which counts each access and classifies it as
sequential (block id follows the previously accessed id) or random.  The
classification feeds the seek + transfer disk-time model in
:mod:`repro.io.stats`.

The device is an allocator as well: callers grab fresh block ids with
:meth:`BlockDevice.allocate`.  Allocation is *pooled*: each named pool
(one per stream - a stack, a run writer) draws from its own contiguous
extent, refilled in chunks, the way files on a filesystem grow - so two
streams growing concurrently do not shred each other's on-disk locality,
just as TPIE streams living in separate files do not.  Block contents live
in an in-memory dict; "external memory" here means memory *the algorithms
are not allowed to use for free*, not literally a spinning platter.
"""

from __future__ import annotations

from ..errors import DeviceError
from .stats import (
    CostModel,
    IOStats,
    classify_extent,
    is_sequential_access,
)

DEFAULT_BLOCK_SIZE = 4096

#: Blocks grabbed per pool refill (a filesystem-extent analogue).
ALLOCATION_CHUNK = 64


class BlockDevice:
    """A block-addressable storage device with I/O accounting.

    Args:
        block_size: bytes per block.  The paper used 64 KB blocks on a real
            disk; the default here is 4 KB so that scaled-down experiments
            keep the same ``N/B`` and ``M/B`` ratios.
        cost_model: disk/CPU time parameters for simulated-seconds reporting.
    """

    #: Parallel-disk surface (see :mod:`repro.io.parallel`): a plain
    #: device is one disk with no prefetch pipeline.  Striped devices
    #: shadow these, and everything layered above (pools, fault proxies,
    #: run writers) can query them without isinstance checks.
    disks = 1
    prefetch_depth = 0
    prefetch_policy: str | None = None

    def __init__(
        self,
        block_size: int = DEFAULT_BLOCK_SIZE,
        cost_model: CostModel | None = None,
    ):
        if block_size < 64:
            raise DeviceError(f"block_size too small: {block_size}")
        self.block_size = block_size
        self.stats = IOStats(cost_model)
        self._blocks: dict[int, bytes] = {}
        self._next_block = 0
        # Per-pool (cursor, extent end) allocation state.
        self._pools: dict[str, tuple[int, int]] = {}
        # Sequentiality is judged per accounting category: each category
        # models one I/O stream (a TPIE stream / an OS file with
        # readahead), so interleaved streams do not turn each other's
        # strictly sequential accesses into charged seeks.
        self._last_by_category: dict[str, int] = {}
        # Recovery holds (a stack): while a hold is open, freed block
        # contents are retained so a restarted unit of work can re-read
        # them.  See push_hold / pop_hold.
        self._holds: list[dict[int, bytes | None]] = []

    # -- allocation --------------------------------------------------------

    def allocate(self, count: int = 1, pool: str = "default") -> int:
        """Reserve ``count`` consecutive block ids; return the first id.

        Ids come from the named pool's current extent, so a stream that
        always allocates from its own pool gets consecutive ids even when
        other streams allocate in between.
        """
        if count < 1:
            raise DeviceError(f"cannot allocate {count} blocks")
        if count >= ALLOCATION_CHUNK:
            # Large requests get a dedicated extent.
            start = self._next_block
            self._next_block += count
            return start
        cursor, end = self._pools.get(pool, (0, 0))
        if cursor + count > end:
            chunk = max(count, ALLOCATION_CHUNK)
            cursor = self._next_block
            end = cursor + chunk
            self._next_block = end
        self._pools[pool] = (cursor + count, end)
        return cursor

    @property
    def allocated_blocks(self) -> int:
        """Total number of block ids handed out so far."""
        return self._next_block

    @property
    def occupied_blocks(self) -> int:
        """Number of blocks that currently hold data."""
        return len(self._blocks)

    # -- access --------------------------------------------------------

    def read_block(
        self,
        block_id: int,
        category: str = "other",
        stream: str | None = None,
    ) -> bytes:
        """Read one block, counting the access under ``category``.

        ``stream`` optionally names a finer-grained access stream for the
        sequentiality judgment (e.g. one run among many being merged);
        counters still accrue to ``category``.
        """
        if not 0 <= block_id < self._next_block:
            raise DeviceError(f"read of unallocated block {block_id}")
        data = self._blocks.get(block_id)
        if data is None:
            raise DeviceError(f"read of never-written block {block_id}")
        key = stream or category
        self.stats.record_read(category, self._is_sequential(key, block_id))
        self._last_by_category[key] = block_id
        return data

    def write_block(
        self,
        block_id: int,
        data: bytes,
        category: str = "other",
        stream: str | None = None,
    ) -> None:
        """Write one block, counting the access under ``category``."""
        if not 0 <= block_id < self._next_block:
            raise DeviceError(f"write of unallocated block {block_id}")
        if len(data) > self.block_size:
            raise DeviceError(
                f"write of {len(data)} bytes exceeds block size "
                f"{self.block_size}"
            )
        key = stream or category
        self.stats.record_write(category, self._is_sequential(key, block_id))
        self._last_by_category[key] = block_id
        self._blocks[block_id] = bytes(data)

    def read_blocks(
        self,
        block_ids,
        category: str = "other",
        stream: str | None = None,
    ) -> list[bytes]:
        """Vectored read: fetch several blocks in one call.

        Accounting is identical to an equivalent :meth:`read_block` loop -
        each block is judged against the one before it (the first against
        the category's last access), so a contiguous extent costs one
        sequentiality judgment and the rest count sequential.  Subclasses
        override this to move whole extents per OS call.
        """
        block_ids = list(block_ids)
        if not block_ids:
            return []
        key = stream or category
        out: list[bytes] = []
        for block_id in block_ids:
            if not 0 <= block_id < self._next_block:
                raise DeviceError(f"read of unallocated block {block_id}")
            data = self._blocks.get(block_id)
            if data is None:
                raise DeviceError(
                    f"read of never-written block {block_id}"
                )
            out.append(data)
        sequential, last = classify_extent(
            block_ids, self._last_by_category.get(key)
        )
        self.stats.record_reads(category, len(block_ids), sequential)
        self._last_by_category[key] = last
        return out

    def write_blocks(
        self,
        block_ids,
        datas,
        category: str = "other",
        stream: str | None = None,
    ) -> None:
        """Vectored write: store several blocks in one call.

        Accounting mirrors :meth:`read_blocks`: one sequentiality judgment
        per extent, identical counters to a :meth:`write_block` loop.
        """
        block_ids = list(block_ids)
        datas = list(datas)
        if len(block_ids) != len(datas):
            raise DeviceError(
                f"write_blocks got {len(block_ids)} ids but "
                f"{len(datas)} payloads"
            )
        if not block_ids:
            return
        key = stream or category
        for block_id, data in zip(block_ids, datas):
            if not 0 <= block_id < self._next_block:
                raise DeviceError(f"write of unallocated block {block_id}")
            if len(data) > self.block_size:
                raise DeviceError(
                    f"write of {len(data)} bytes exceeds block size "
                    f"{self.block_size}"
                )
            self._blocks[block_id] = bytes(data)
        sequential, last = classify_extent(
            block_ids, self._last_by_category.get(key)
        )
        self.stats.record_writes(category, len(block_ids), sequential)
        self._last_by_category[key] = last

    def free_blocks(self, block_ids) -> None:
        """Drop the contents of blocks that are no longer needed.

        Freeing is bookkeeping only (it lets long experiments release Python
        memory); it performs no accounted I/O and the ids are not reused.
        Categories whose last access was a freed block forget it, so a
        later access in that category starts a fresh stream instead of
        being judged against a dead block.

        While a recovery hold is open (:meth:`push_hold`), the freed
        contents are retained in the hold - accounting is unchanged, but
        :meth:`pop_hold` can restore them if the unit of work restarts.
        """
        block_ids = list(block_ids)
        if self._holds:
            hold = self._holds[-1]
            for block_id in block_ids:
                data = self._blocks.get(block_id)
                if data is not None and block_id not in hold:
                    hold[block_id] = data
        for block_id in block_ids:
            self._blocks.pop(block_id, None)
        self._forget_last_access(block_ids)

    def _forget_last_access(self, block_ids) -> None:
        freed = set(block_ids)
        if not freed:
            return
        stale = [
            category
            for category, last in self._last_by_category.items()
            if last in freed
        ]
        for category in stale:
            del self._last_by_category[category]

    # -- recovery holds ----------------------------------------------------

    @property
    def holding(self) -> bool:
        """True while at least one recovery hold is open."""
        return bool(self._holds)

    def push_hold(self) -> None:
        """Open a recovery hold: retain contents of subsequently freed blocks.

        Holds nest (a stack); frees land in the innermost open hold.
        Accounting is completely unaffected - frees still forget
        last-access state and pop the live block exactly as without a
        hold.  The fault-recovery layer (:mod:`repro.faults`) brackets
        each restartable unit of work with a hold so a restart can
        re-read input runs the failed attempt already drained and freed.
        """
        self._holds.append({})

    def pop_hold(self, restore: bool) -> None:
        """Close the innermost hold.

        With ``restore=True`` the held contents become readable again (the
        restarting unit re-reads them, with those re-reads charged
        normally); with ``restore=False`` they are dropped for good.
        """
        if not self._holds:
            raise DeviceError("pop_hold with no hold open")
        held = self._holds.pop()
        if restore:
            self._restore_held(held)

    def _restore_held(self, held: dict[int, bytes | None]) -> None:
        for block_id, data in held.items():
            if data is not None:
                self._blocks[block_id] = data

    def stash_block(self, block_id: int, data: bytes) -> None:
        """Retain ``data`` as ``block_id``'s held contents (uncounted).

        Used by the buffer pool when a *dirty cached* block is freed under
        an open hold: the device never saw the dirty data (that is the
        write the pool elides), so the pool hands it over for safekeeping.
        No-op when no hold is open.
        """
        if self._holds:
            self._holds[-1][block_id] = bytes(data)

    def store_block_raw(self, block_id: int, data: bytes) -> None:
        """Store block contents without any accounting.

        This is the fault injector's torn-write primitive: a torn vectored
        write persists a prefix of its payload before failing, and that
        side effect must not charge the model's counters (the retried
        write is charged once, in full, exactly like a fault-free one).
        """
        if not 0 <= block_id < self._next_block:
            raise DeviceError(f"raw store to unallocated block {block_id}")
        if len(data) > self.block_size:
            raise DeviceError(
                f"raw store of {len(data)} bytes exceeds block size "
                f"{self.block_size}"
            )
        self._blocks[block_id] = bytes(data)

    def _is_sequential(self, category: str, block_id: int) -> bool:
        return is_sequential_access(
            self._last_by_category.get(category), block_id
        )

    # -- parallel-disk surface ---------------------------------------------

    def disk_of(self, block_id: int) -> int:
        """Member disk holding ``block_id``; always 0 on a serial device."""
        return 0

    def prefetch_blocks(
        self,
        block_ids,
        category: str = "other",
        stream: str | None = None,
    ) -> int:
        """Issue asynchronous reads ahead of demand; returns blocks issued.

        A serial device has no prefetch pipeline, so this is a no-op that
        issues nothing - callers fall back to demand reads, keeping
        counters identical to pre-prefetch behaviour.
        """
        return 0

    def write_block_behind(
        self,
        block_id: int,
        data: bytes,
        category: str = "other",
        stream: str | None = None,
    ) -> None:
        """Write-behind: queue a write without waiting for completion.

        On a serial device there is no pipeline to hide the write in, so
        this degenerates to a plain (identically accounted) write.
        """
        self.write_block(block_id, data, category, stream=stream)

    # -- convenience -------------------------------------------------------

    def bytes_to_blocks(self, nbytes: int) -> int:
        """Number of blocks needed to hold ``nbytes`` bytes."""
        return -(-nbytes // self.block_size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BlockDevice(block_size={self.block_size}, "
            f"allocated={self._next_block}, "
            f"ios={self.stats.total_ios})"
        )
