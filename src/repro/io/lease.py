"""Per-job resource leases carved from one shared pool.

The single-job engine treats its :class:`~repro.io.budget.MemoryBudget`,
:class:`~repro.io.bufferpool.BufferPool`, and device as ambient handles it
owns outright.  The service layer (:mod:`repro.service`) runs *many* jobs
against one machine, so those handles become a :class:`ResourceLease`:
a slice of the global :class:`ResourcePool` that a job holds from
admission to completion.

Design constraints, in order:

1. **Bit-identity.**  A job run under a lease must produce output, I/O
   counters, comparison counts, and traces bit-identical to the same job
   run solo with the same geometry.  Each lease therefore gets a *private*
   serial :class:`~repro.io.device.BlockDevice` (its own block-address
   space, so another tenant's allocations can never perturb this job's
   sequential/random classification), and contention is modeled at
   schedule time by replaying the lease's recorded cost events over the
   shared disks (:class:`~repro.io.parallel.DiskTimeline`).
2. **Exact tiling.**  The lease's :class:`TeeIOStats` mirrors every
   recorded counter into the pool's global :class:`IOStats`, so summing
   per-tenant snapshots reproduces the global totals componentwise.
3. **Safety.**  Memory comes from :meth:`MemoryBudget.carve`, so two
   leases can never claim the same block; releasing a lease with pinned
   buffer-pool blocks raises instead of silently dropping dirty data;
   releasing twice is a no-op, like :class:`~repro.io.budget.Reservation`.
"""

from __future__ import annotations

from ..errors import DeviceError
from .budget import CarvedBudget, MemoryBudget
from .device import BlockDevice
from .runs import RunStore
from .stats import CostModel, IOStats, StatsSnapshot


class TeeIOStats(IOStats):
    """IOStats that mirrors every record into a global accumulator.

    The tee also reports each recorded cost to an optional *listener* as
    ``(kind, seconds)`` events - ``kind`` is ``"io"`` (one block access,
    seconds = its seek+transfer service time) or ``"cpu"`` (comparisons,
    token work, or fault penalties).  The scheduler replays exactly these
    events over the shared disks; consecutive CPU events are coalesced by
    the listener side, not here.
    """

    def __init__(
        self,
        mirror: IOStats,
        cost_model: CostModel | None = None,
        listener=None,
    ):
        super().__init__(cost_model or mirror.cost_model)
        self.mirror = mirror
        self.listener = listener

    # -- event helpers ---------------------------------------------------

    def _io_event(self, sequential: bool) -> None:
        if self.listener is not None:
            self.listener("io", self.cost_model.access_seconds(sequential))

    def _io_events(self, count: int, sequential_count: int) -> None:
        if self.listener is None or count == 0:
            return
        seq = self.cost_model.access_seconds(True)
        rnd = self.cost_model.access_seconds(False)
        for _ in range(sequential_count):
            self.listener("io", seq)
        for _ in range(count - sequential_count):
            self.listener("io", rnd)

    def _cpu_event(self, seconds: float) -> None:
        if self.listener is not None and seconds:
            self.listener("cpu", seconds)

    # -- mirrored recording ---------------------------------------------

    def record_read(self, category: str, sequential: bool) -> None:
        super().record_read(category, sequential)
        self.mirror.record_read(category, sequential)
        self._io_event(sequential)

    def record_write(self, category: str, sequential: bool) -> None:
        super().record_write(category, sequential)
        self.mirror.record_write(category, sequential)
        self._io_event(sequential)

    def record_reads(
        self, category: str, count: int, sequential_count: int
    ) -> None:
        super().record_reads(category, count, sequential_count)
        self.mirror.record_reads(category, count, sequential_count)
        self._io_events(count, sequential_count)

    def record_writes(
        self, category: str, count: int, sequential_count: int
    ) -> None:
        super().record_writes(category, count, sequential_count)
        self.mirror.record_writes(category, count, sequential_count)
        self._io_events(count, sequential_count)

    def record_cache_hit(self, category: str, count: int = 1) -> None:
        super().record_cache_hit(category, count)
        self.mirror.record_cache_hit(category, count)

    def record_cache_miss(self, category: str, count: int = 1) -> None:
        super().record_cache_miss(category, count)
        self.mirror.record_cache_miss(category, count)

    def record_cache_eviction(self, category: str, count: int = 1) -> None:
        super().record_cache_eviction(category, count)
        self.mirror.record_cache_eviction(category, count)

    def record_comparisons(self, count: int) -> None:
        super().record_comparisons(count)
        self.mirror.record_comparisons(count)
        self._cpu_event(count * self.cost_model.compare_seconds)

    def record_merge_comparisons(self, count: int) -> None:
        super().record_merge_comparisons(count)
        self.mirror.record_merge_comparisons(count)
        self._cpu_event(count * self.cost_model.compare_seconds)

    def record_tokens(self, count: int) -> None:
        super().record_tokens(count)
        self.mirror.record_tokens(count)
        self._cpu_event(count * self.cost_model.token_seconds)

    def record_penalty(self, seconds: float) -> None:
        super().record_penalty(seconds)
        self.mirror.record_penalty(seconds)
        self._cpu_event(seconds)

    def record_compression(self, raw_bytes: int, stored_bytes: int) -> None:
        super().record_compression(raw_bytes, stored_bytes)
        self.mirror.record_compression(raw_bytes, stored_bytes)
        self._cpu_event(self.cost_model.compress_seconds(raw_bytes, 0))

    def record_decompression(
        self, stored_bytes: int, raw_bytes: int
    ) -> None:
        super().record_decompression(stored_bytes, raw_bytes)
        self.mirror.record_decompression(stored_bytes, raw_bytes)
        self._cpu_event(self.cost_model.compress_seconds(0, raw_bytes))

    def record_disk_busy(self, disk: int, seconds: float) -> None:
        super().record_disk_busy(disk, seconds)
        self.mirror.record_disk_busy(disk, seconds)

    def record_stall(self, seconds: float) -> None:
        super().record_stall(seconds)
        self.mirror.record_stall(seconds)


class ResourceLease:
    """One job's slice of the shared pool: memory, device, stats, store.

    Built by :meth:`ResourcePool.lease`.  The lease owns a
    :class:`CarvedBudget` of ``memory_blocks`` blocks (cache included -
    the sorters reserve their buffer pool out of it, exactly as they
    reserve from a private budget today) and a private serial device whose
    :class:`TeeIOStats` mirrors into the pool's global stats.

    ``events`` accumulates the job's cost events - ``["io", seconds]`` per
    block access and coalesced ``["cpu", seconds]`` entries - in exactly
    the order they were charged; the scheduler replays them over the
    shared disks to interleave jobs at block granularity.
    """

    def __init__(
        self,
        pool: "ResourcePool",
        memory_blocks: int,
        tenant: str = "tenant",
        fault_plan=None,
        retries: int = 0,
        trace: bool = True,
    ):
        self.pool = pool
        self.tenant = tenant
        self.memory_blocks = memory_blocks
        self.budget: CarvedBudget = pool.budget.carve(
            memory_blocks, owner=f"lease:{tenant}"
        )
        self.events: list[list] = []
        self.stats = TeeIOStats(
            pool.stats, cost_model=pool.cost_model,
            listener=self._record_event,
        )
        base = BlockDevice(
            block_size=pool.block_size, cost_model=pool.cost_model
        )
        base.stats = self.stats
        self.base_device = base
        if trace:
            from ..obs.tracer import Tracer

            self.tracer = Tracer(self.stats)
        else:
            self.tracer = None
        if fault_plan is not None:
            from ..faults import build_faulty_device

            top, self.injector, self.retrier = build_faulty_device(
                base, fault_plan, retries=retries, tracer=self.tracer
            )
        else:
            top, self.injector, self.retrier = base, None, None
        self.device = top
        self.store = RunStore(top)
        self._released = False

    def _record_event(self, kind: str, seconds: float) -> None:
        if kind == "cpu" and self.events and self.events[-1][0] == "cpu":
            self.events[-1][1] += seconds
        else:
            self.events.append([kind, seconds])

    @property
    def released(self) -> bool:
        return self._released

    def snapshot(self) -> StatsSnapshot:
        """The tenant's own counters (a slice of the global totals)."""
        return self.stats.snapshot()

    def release(self) -> None:
        """Hand the carved memory back to the pool (idempotent).

        Raises :class:`~repro.errors.DeviceError` if a buffer pool is
        still attached to the lease's store with pinned blocks - a pinned
        block is in active use, so releasing the memory under it would be
        a correctness bug, not a cleanup.
        """
        if self._released:
            return
        attached = self.store.pool
        if attached is not None:
            attached.assert_releasable()
            self.store.detach_pool()
        self.budget.close()
        self._released = True

    def __enter__(self) -> "ResourceLease":
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "released" if self._released else "held"
        return (
            f"ResourceLease({self.tenant!r}, {self.memory_blocks} blocks, "
            f"{state})"
        )


class ResourcePool:
    """The machine: one global memory budget, stats ledger, and disk farm.

    Leases are carved from here.  ``stats`` accumulates the mirrored
    counters of every tenant, so ``pool.stats`` totals always equal the
    componentwise sum of the tenants' :meth:`ResourceLease.snapshot`
    values - the per-tenant isolation invariant the service tests pin.
    """

    def __init__(
        self,
        memory_blocks: int,
        block_size: int = 4096,
        disks: int = 1,
        cost_model: CostModel | None = None,
    ):
        if disks < 1:
            raise DeviceError(f"need at least one disk, got {disks}")
        self.budget = MemoryBudget(memory_blocks)
        self.cost_model = cost_model or CostModel()
        self.stats = IOStats(self.cost_model)
        self.block_size = block_size
        self.disks = disks

    @property
    def total_blocks(self) -> int:
        return self.budget.total_blocks

    @property
    def available_blocks(self) -> int:
        return self.budget.available_blocks

    def lease(
        self,
        memory_blocks: int,
        tenant: str = "tenant",
        fault_plan=None,
        retries: int = 0,
        trace: bool = True,
    ) -> ResourceLease:
        """Carve a lease; raises MemoryBudgetExceeded if it cannot fit."""
        return ResourceLease(
            self,
            memory_blocks,
            tenant=tenant,
            fault_plan=fault_plan,
            retries=retries,
            trace=trace,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ResourcePool(memory={self.budget.reserved_blocks}"
            f"/{self.total_blocks} blocks, disks={self.disks})"
        )
