"""Run compression: container-split codecs for sorted runs (ISSUE 10).

Every intermediate byte the sorters move is a framed token record, and
*Optimizing XML Compression* (Leighton & Barbosa) shows XML compresses
far better when its structure, text, and annotations are split into
separate containers, each with a codec suited to its statistics, than
when one byte-level codec sees the interleaved stream.  This module
implements that split at *run granularity*:

* **key container** - the embedded normalized key of every record
  (``varint(len) + key``), stored **raw**: merge kernels compare and
  replay orders straight from stored bytes, so keys must never need a
  decode.
* **layout container** - one varint per record: payload length and a
  structure/text discriminator bit.  This is the glue that reassembles
  records in order.
* **structure container** - records whose payload is a start/end/pointer
  token (name-dictionary ids and varint framing from
  :mod:`repro.xml.codec`).  The ``container`` codec front-codes them
  (key-frame + shared prefix/suffix delta against the previous record)
  and then entropy-packs the delta stream.
* **text container** - text-token payloads, coded with a per-segment
  dictionary of unique blobs plus per-record indices (text in XML repeats
  heavily: whitespace runs, enumerated values).

``zlib`` is the reference backend: the whole container is handed to
:func:`zlib.compress` with no modeling cleverness.  Every container
independently falls back to raw storage when coding would grow it, so a
compressed segment is never larger than necessary plus framing.

Segments are *self-contained*: a group of whole records is encoded into
one blob (checksummed, typed, counted) and stored in
``ceil(len(blob)/block_size)`` device blocks.  Records never span
segments, which keeps mid-run resume cheap (binary-search the segment
table, decode one segment) and bounds the decode working set.

The same record packing doubles as the service wire format
(:func:`encode_document_wire` / :func:`decode_document_wire`): a job's
token stream is dictionary-coded, container-split, and checksummed into
one compact submission blob that decodes to the *exact* original tokens.

Simulated-cost accounting lives with the callers: writers charge
:meth:`~repro.io.stats.IOStats.record_compression` per raw byte in,
readers charge :meth:`~repro.io.stats.IOStats.record_decompression` per
raw byte out, and the :class:`~repro.io.stats.CostModel` converts both
to CPU seconds.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Iterable

from ..errors import RunCodecError
from ..xml.codec import (
    TYPE_TEXT,
    TokenCodec,
    encode_varint,
    read_varint,
    write_varint,
)

_LEN = struct.Struct("<I")

#: Codec names accepted by :class:`CompressionConfig` and the CLI.
CODEC_NAMES = ("container", "zlib")

_CODEC_IDS = {"container": 1, "zlib": 2}
_CODEC_BY_ID = {v: k for k, v in _CODEC_IDS.items()}

_SEGMENT_MAGIC = 0xC5
_WIRE_MAGIC = b"RXW1"

_FLAG_EMBEDDED_KEYS = 1

# Per-container storage modes (the fallback machinery): every container
# records how it was coded so decode never guesses.
_MODE_RAW = 0
_MODE_DELTA = 1        # structure: front-coded (prefix/suffix delta)
_MODE_DELTA_ZLIB = 2   # structure: front-coded, then zlib
_MODE_ZLIB = 3         # raw concatenation through zlib
_MODE_DICT = 4         # text: unique-blob dictionary + indices
_MODE_DICT_ZLIB = 5    # text: dictionary blob through zlib

#: Default write categories that produce compressed runs.  Everything
#: that is an *intermediate* sorted run compresses; ``output`` and
#: document staging never do (the output document is the bit-identity
#: contract surface).
DEFAULT_COMPRESS_CATEGORIES = frozenset(
    {"run_write", "merge_write", "partial_run", "partial_merge_write"}
)


@dataclass(frozen=True)
class CompressionConfig:
    """How a :class:`~repro.io.runs.RunStore` compresses new runs.

    Attributes:
        codec: "container" (split + front-coding/dictionary) or "zlib"
            (reference backend: one zlib stream per container).
        segment_blocks: raw blocks gathered per compressed segment.  The
            writer buffers this much framed data before coding, so it is
            also the codec's working-set knob.
        categories: writer categories whose runs compress; anything else
            (notably ``output``) stays uncompressed.
        embedded_keys: whether records carry embedded normalized keys
            (``varint(len) + key`` prefix) to peel into the key container.
        capacity: opt-in run-formation capacity mode - the former
            compresses *pending* formation batches so longer initial
            runs fit the same memory (fewer runs, possibly fewer merge
            passes).  Changes comparison/run counters honestly; plain
            compression never does.
    """

    codec: str = "container"
    segment_blocks: int = 4
    categories: frozenset = field(default=DEFAULT_COMPRESS_CATEGORIES)
    embedded_keys: bool = False
    capacity: bool = False

    def __post_init__(self):
        if self.codec not in _CODEC_IDS:
            raise RunCodecError(
                f"unknown run codec {self.codec!r}; pick one of "
                f"{', '.join(CODEC_NAMES)}"
            )
        if self.segment_blocks < 1:
            raise RunCodecError(
                f"segment_blocks must be positive: {self.segment_blocks}"
            )


@dataclass(frozen=True)
class RunSegment:
    """One compressed segment of a run: whole records, self-contained.

    Attributes:
        logical_start: framed-stream offset of the segment's first record.
        logical_bytes: framed bytes the segment covers.
        block_start: index of its first block in the handle's block list.
        block_count: physical blocks storing the compressed blob.
        stored_bytes: exact compressed blob length (the final block is
            zero-padded up to the block size).
        record_count: records in the segment.
    """

    logical_start: int
    logical_bytes: int
    block_start: int
    block_count: int
    stored_bytes: int
    record_count: int

    @property
    def logical_end(self) -> int:
        return self.logical_start + self.logical_bytes


def framed_bytes(records: Iterable[bytes]) -> int:
    """Bytes the records would occupy as an uncompressed framed stream."""
    return sum(_LEN.size + len(record) for record in records)


# -- container coding ---------------------------------------------------------


def _split_record(payload: bytes, embedded_keys: bool):
    """(key_part, rest, is_text) for one record payload."""
    if embedded_keys:
        try:
            klen, pos = read_varint(payload, 0)
        except Exception as exc:
            raise RunCodecError(
                f"record has no embedded-key frame: {exc}"
            ) from exc
        end = pos + klen
        if end > len(payload):
            raise RunCodecError("embedded key frame overruns its record")
        key_part, rest = payload[:end], payload[end:]
    else:
        key_part, rest = b"", payload
    is_text = bool(rest) and rest[0] == TYPE_TEXT
    return key_part, rest, is_text


def _front_code(entries: list[bytes]) -> bytes:
    """Prefix/suffix delta against the previous entry, key-framed.

    Each entry stores ``varint(shared_prefix) varint(shared_suffix)``
    plus the differing middle; entry lengths come from the layout
    container, so no length is repeated here.
    """
    out = bytearray()
    prev = b""
    for entry in entries:
        limit = min(len(entry), len(prev))
        prefix = 0
        while prefix < limit and entry[prefix] == prev[prefix]:
            prefix += 1
        suffix = 0
        while (
            suffix < limit - prefix
            and entry[len(entry) - 1 - suffix] == prev[len(prev) - 1 - suffix]
        ):
            suffix += 1
        write_varint(out, prefix)
        write_varint(out, suffix)
        out += entry[prefix : len(entry) - suffix]
        prev = entry
    return bytes(out)


def _front_decode(data: bytes, lengths: list[int]) -> list[bytes]:
    entries: list[bytes] = []
    prev = b""
    pos = 0
    for length in lengths:
        prefix, pos = read_varint(data, pos)
        suffix, pos = read_varint(data, pos)
        middle = length - prefix - suffix
        if middle < 0 or prefix > len(prev) or suffix > len(prev):
            raise RunCodecError("front-coded entry overruns its frame")
        end = pos + middle
        if end > len(data):
            raise RunCodecError("truncated front-coded container")
        entry = (
            prev[:prefix]
            + data[pos:end]
            + (prev[len(prev) - suffix :] if suffix else b"")
        )
        pos = end
        entries.append(entry)
        prev = entry
    if pos != len(data):
        raise RunCodecError("trailing bytes after front-coded container")
    return entries


def _dict_code(entries: list[bytes]) -> bytes | None:
    """Unique-blob dictionary + per-entry indices; None when pointless."""
    index_of: dict[bytes, int] = {}
    order: list[bytes] = []
    for entry in entries:
        if entry not in index_of:
            index_of[entry] = len(order)
            order.append(entry)
    if len(order) >= len(entries):
        return None
    out = bytearray()
    write_varint(out, len(order))
    for blob in order:
        write_varint(out, len(blob))
        out += blob
    for entry in entries:
        write_varint(out, index_of[entry])
    return bytes(out)


def _dict_decode(data: bytes, count: int) -> list[bytes]:
    nuniq, pos = read_varint(data, 0)
    order: list[bytes] = []
    for _ in range(nuniq):
        length, pos = read_varint(data, pos)
        end = pos + length
        if end > len(data):
            raise RunCodecError("truncated dictionary blob")
        order.append(data[pos:end])
        pos = end
    entries: list[bytes] = []
    for _ in range(count):
        index, pos = read_varint(data, pos)
        if index >= nuniq:
            raise RunCodecError(f"dictionary index {index} out of range")
        entries.append(order[index])
    if pos != len(data):
        raise RunCodecError("trailing bytes after dictionary container")
    return entries


def _split_concat(data: bytes, lengths: list[int]) -> list[bytes]:
    entries: list[bytes] = []
    pos = 0
    for length in lengths:
        end = pos + length
        if end > len(data):
            raise RunCodecError("truncated raw container")
        entries.append(data[pos:end])
        pos = end
    if pos != len(data):
        raise RunCodecError("trailing bytes after raw container")
    return entries


def _pack_structure(entries: list[bytes], codec: str) -> bytes:
    raw = b"".join(entries)
    candidates = [(_MODE_RAW, raw)]
    if codec == "container":
        delta = _front_code(entries)
        candidates.append((_MODE_DELTA, delta))
        candidates.append((_MODE_DELTA_ZLIB, zlib.compress(delta, 6)))
    else:
        candidates.append((_MODE_ZLIB, zlib.compress(raw, 6)))
    mode, data = min(candidates, key=lambda pair: len(pair[1]))
    return bytes([mode]) + data


def _pack_text(entries: list[bytes], codec: str) -> bytes:
    raw = b"".join(entries)
    candidates = [(_MODE_RAW, raw)]
    if codec == "container":
        coded = _dict_code(entries)
        if coded is not None:
            candidates.append((_MODE_DICT, coded))
            candidates.append((_MODE_DICT_ZLIB, zlib.compress(coded, 6)))
    else:
        candidates.append((_MODE_ZLIB, zlib.compress(raw, 6)))
    mode, data = min(candidates, key=lambda pair: len(pair[1]))
    return bytes([mode]) + data


def _unpack_container(
    blob: bytes, lengths: list[int], kind: str
) -> list[bytes]:
    if not blob:
        if lengths:
            raise RunCodecError(f"empty {kind} container for {len(lengths)} records")
        return []
    mode, data = blob[0], blob[1:]
    try:
        if mode == _MODE_RAW:
            return _split_concat(data, lengths)
        if mode == _MODE_ZLIB:
            return _split_concat(zlib.decompress(data), lengths)
        if mode == _MODE_DELTA:
            return _front_decode(data, lengths)
        if mode == _MODE_DELTA_ZLIB:
            return _front_decode(zlib.decompress(data), lengths)
        if mode == _MODE_DICT:
            return _dict_decode(data, len(lengths))
        if mode == _MODE_DICT_ZLIB:
            return _dict_decode(zlib.decompress(data), len(lengths))
    except zlib.error as exc:
        raise RunCodecError(f"corrupt {kind} container: {exc}") from exc
    raise RunCodecError(f"unknown {kind} container mode {mode}")


# -- segment blobs ------------------------------------------------------------


def encode_records(
    records: list[bytes], embedded_keys: bool, codec: str
) -> bytes:
    """Container-split a group of whole records into one segment blob."""
    codec_id = _CODEC_IDS.get(codec)
    if codec_id is None:
        raise RunCodecError(f"unknown run codec {codec!r}")
    key_container = bytearray()
    layout = bytearray()
    structure: list[bytes] = []
    text: list[bytes] = []
    crc = 0
    for payload in records:
        crc = zlib.crc32(_LEN.pack(len(payload)), crc)
        crc = zlib.crc32(payload, crc)
        key_part, rest, is_text = _split_record(payload, embedded_keys)
        key_container += key_part
        write_varint(layout, (len(rest) << 1) | int(is_text))
        (text if is_text else structure).append(rest)

    out = bytearray()
    out.append(_SEGMENT_MAGIC)
    out.append(codec_id)
    out.append(_FLAG_EMBEDDED_KEYS if embedded_keys else 0)
    write_varint(out, len(records))
    write_varint(out, framed_bytes(records))
    write_varint(out, crc)
    for container in (
        bytes(key_container),
        bytes(layout),
        _pack_structure(structure, codec),
        _pack_text(text, codec),
    ):
        write_varint(out, len(container))
        out += container
    return bytes(out)


def decode_records(blob: bytes) -> list[bytes]:
    """Inverse of :func:`encode_records`; raises :class:`RunCodecError`.

    Corruption anywhere - magic, codec id, container framing, checksum -
    surfaces as a typed error rather than silently wrong records.
    """
    try:
        return _decode_records(blob)
    except RunCodecError:
        raise
    except Exception as exc:  # truncated varints, slicing overruns...
        raise RunCodecError(f"corrupt compressed segment: {exc}") from exc


def _decode_records(blob: bytes) -> list[bytes]:
    if not blob or blob[0] != _SEGMENT_MAGIC:
        raise RunCodecError("bad segment magic")
    if len(blob) < 3:
        raise RunCodecError("truncated segment header")
    codec = _CODEC_BY_ID.get(blob[1])
    if codec is None:
        raise RunCodecError(f"unknown codec id {blob[1]}")
    embedded_keys = bool(blob[2] & _FLAG_EMBEDDED_KEYS)
    pos = 3
    record_count, pos = read_varint(blob, pos)
    raw_bytes, pos = read_varint(blob, pos)
    crc_expected, pos = read_varint(blob, pos)

    containers: list[bytes] = []
    for _ in range(4):
        length, pos = read_varint(blob, pos)
        end = pos + length
        if end > len(blob):
            raise RunCodecError("truncated segment container")
        containers.append(blob[pos:end])
        pos = end
    if pos != len(blob):
        raise RunCodecError("trailing bytes after segment")
    key_container, layout, structure_blob, text_blob = containers

    kinds: list[int] = []
    struct_lengths: list[int] = []
    text_lengths: list[int] = []
    lpos = 0
    for _ in range(record_count):
        packed, lpos = read_varint(layout, lpos)
        is_text = packed & 1
        length = packed >> 1
        kinds.append(is_text)
        (text_lengths if is_text else struct_lengths).append(length)
    if lpos != len(layout):
        raise RunCodecError("trailing bytes after layout container")

    structure = _unpack_container(structure_blob, struct_lengths, "structure")
    text = _unpack_container(text_blob, text_lengths, "text")

    records: list[bytes] = []
    kpos = 0
    siter = iter(structure)
    titer = iter(text)
    for is_text in kinds:
        if embedded_keys:
            klen, after = read_varint(key_container, kpos)
            kend = after + klen
            if kend > len(key_container):
                raise RunCodecError("truncated key container")
            key_part = key_container[kpos:kend]
            kpos = kend
        else:
            key_part = b""
        rest = next(titer) if is_text else next(siter)
        records.append(key_part + rest)
    if kpos != len(key_container):
        raise RunCodecError("trailing bytes after key container")

    crc = 0
    total = 0
    for payload in records:
        crc = zlib.crc32(_LEN.pack(len(payload)), crc)
        crc = zlib.crc32(payload, crc)
        total += _LEN.size + len(payload)
    if total != raw_bytes:
        raise RunCodecError(
            f"segment length mismatch: framed {total}, header {raw_bytes}"
        )
    if crc != crc_expected:
        raise RunCodecError("segment checksum mismatch")
    return records


# -- the service wire format --------------------------------------------------


def encode_document_wire(events, codec: str = "container") -> bytes:
    """Encode a token stream into one compact submission blob.

    Tokens are dictionary-coded (the name table ships in the blob) and
    container-split with the run codec; :func:`decode_document_wire`
    returns tokens *equal* to the originals - the wire format is exact,
    not merely digest-identical.
    """
    from ..xml.compact import NameDictionary

    names = NameDictionary()
    token_codec = TokenCodec(names)
    records = [token_codec.encode(token) for token in events]
    body = encode_records(records, embedded_keys=False, codec=codec)

    out = bytearray()
    out += _WIRE_MAGIC
    table = bytearray()
    write_varint(table, len(names))
    for name_id in range(len(names)):
        encoded = names.lookup(name_id).encode("utf-8")
        write_varint(table, len(encoded))
        table += encoded
    write_varint(out, len(table))
    out += table
    write_varint(out, len(body))
    out += body
    return bytes(out)


def decode_document_wire(blob: bytes):
    """Decode a wire blob back to the exact submitted token list."""
    from ..xml.compact import NameDictionary

    if blob[: len(_WIRE_MAGIC)] != _WIRE_MAGIC:
        raise RunCodecError("bad wire magic")
    try:
        pos = len(_WIRE_MAGIC)
        table_len, pos = read_varint(blob, pos)
        table_end = pos + table_len
        if table_end > len(blob):
            raise RunCodecError("truncated wire name table")
        table = blob[pos:table_end]
        pos = table_end
        count, tpos = read_varint(table, 0)
        names = []
        for _ in range(count):
            length, tpos = read_varint(table, tpos)
            names.append(table[tpos : tpos + length].decode("utf-8"))
            tpos += length
        body_len, pos = read_varint(blob, pos)
        if pos + body_len != len(blob):
            raise RunCodecError("wire body length mismatch")
        records = decode_records(blob[pos:])
    except RunCodecError:
        raise
    except Exception as exc:
        raise RunCodecError(f"corrupt wire blob: {exc}") from exc
    token_codec = TokenCodec(NameDictionary(names))
    return [token_codec.decode(record) for record in records]


__all__ = [
    "CODEC_NAMES",
    "CompressionConfig",
    "DEFAULT_COMPRESS_CATEGORIES",
    "RunSegment",
    "decode_document_wire",
    "decode_records",
    "encode_document_wire",
    "encode_records",
    "framed_bytes",
]
