"""External-memory stacks with no-prefetch paging (paper Section 3.1).

NEXSORT uses three stacks that can outgrow internal memory: the *data stack*
(elements awaiting sorting), the *path stack* (start locations of the current
element's ancestors), and the *output location stack* (resume points during
the output phase).  The paper implements them "as external-memory data
structures, capable of paging blocks in and out of internal memory as
needed", under a **no-prefetch** policy: a spilled block is only paged back
in when something on it must be popped.

:class:`ExternalStack` implements exactly that.  Records are opaque byte
strings.  The stack keeps its newest records in an internal-memory buffer of
a fixed number of blocks; when the buffer overflows, the *oldest* buffered
records are packed into blocks and written to the device (a page-out).  Pops
that reach below the buffered region page the most recent spilled segment
back in (a page-in).  Every page-in/out is counted on the device under the
stack's accounting category, so Lemmas 4.10, 4.11, and 4.13 can be checked
against real counters.

Stack *locations* are measured in payload bytes pushed (framing overhead
excluded), which is the measure NEXSORT's size test on Line 9 of Figure 4
uses to decide whether a subtree has reached the sort threshold.
"""

from __future__ import annotations

import struct

from ..errors import StackError
from .device import BlockDevice

_COUNT = struct.Struct("<H")
_LEN = struct.Struct("<I")


class _PackedSegment:
    """One spilled block holding several whole records."""

    __slots__ = ("block_id", "record_count", "payload_bytes")

    def __init__(self, block_id: int, record_count: int, payload_bytes: int):
        self.block_id = block_id
        self.record_count = record_count
        self.payload_bytes = payload_bytes

    blocks = 1


class _BigSegment:
    """One oversized record spilled across several dedicated blocks."""

    __slots__ = ("block_ids", "payload_bytes")

    def __init__(self, block_ids: list[int], payload_bytes: int):
        self.block_ids = block_ids
        self.payload_bytes = payload_bytes

    record_count = 1

    @property
    def blocks(self) -> int:
        return len(self.block_ids)


class ExternalStack:
    """A spillable LIFO stack of byte-string records.

    Args:
        device: the block device used for paging; may also be a
            :class:`~repro.io.bufferpool.BufferPool`, in which case spilled
            blocks are cached write-back - a segment paged out, paged back
            in, and freed while it stays resident never touches the device.
        buffer_blocks: internal-memory blocks this stack may use; the caller
            is responsible for having reserved them from the
            :class:`~repro.io.budget.MemoryBudget`.
        category: accounting category for page-ins (reads) and page-outs
            (writes) on the device.
    """

    def __init__(
        self,
        device: BlockDevice,
        buffer_blocks: int = 1,
        category: str = "stack",
    ):
        if buffer_blocks < 1:
            raise StackError("a stack needs at least one buffer block")
        self._device = device
        self._category = category
        self._capacity_bytes = buffer_blocks * device.block_size
        # Records currently held in internal memory, oldest first.
        self._memory: list[bytes] = []
        self._memory_bytes = 0
        # Spilled segments, oldest first.  Invariant: every spilled record is
        # older than every record in ``_memory``.
        self._segments: list[_PackedSegment | _BigSegment] = []
        self._spilled_bytes = 0
        self._record_count = 0
        self._page_ins = 0
        self._page_outs = 0

    # -- observers --------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        """Current stack top location, in payload bytes."""
        return self._spilled_bytes + self._memory_bytes

    @property
    def in_memory_bytes(self) -> int:
        return self._memory_bytes

    @property
    def spilled_bytes(self) -> int:
        return self._spilled_bytes

    @property
    def record_count(self) -> int:
        return self._record_count

    @property
    def page_ins(self) -> int:
        return self._page_ins

    @property
    def page_outs(self) -> int:
        return self._page_outs

    @property
    def is_empty(self) -> bool:
        return self._record_count == 0

    @property
    def memory_is_full(self) -> bool:
        """True when another push is likely to force a page-out."""
        return self._memory_bytes >= self._capacity_bytes

    # -- mutation ----------------------------------------------------------

    def push(self, record: bytes) -> int:
        """Push a record; returns its start location (payload offset)."""
        location = self.total_bytes
        self._memory.append(record)
        self._memory_bytes += len(record)
        self._record_count += 1
        if self._memory_bytes > self._capacity_bytes:
            self._spill()
        return location

    def pop(self) -> bytes:
        """Pop and return the newest record, paging in if necessary."""
        if self._record_count == 0:
            raise StackError("pop from empty stack")
        if not self._memory:
            self._page_in_last_segment()
        record = self._memory.pop()
        self._memory_bytes -= len(record)
        self._record_count -= 1
        return record

    def pop_through(self, location: int) -> list[bytes]:
        """Pop every record at or above ``location``; oldest first.

        ``location`` must be the exact start location of some pushed record
        (or the current top, yielding an empty list).  This is how NEXSORT
        pops a complete subtree off the data stack (Figure 4, Line 10).
        """
        if location > self.total_bytes:
            raise StackError(
                f"pop_through({location}) beyond stack top "
                f"{self.total_bytes}"
            )
        popped: list[bytes] = []
        while self.total_bytes > location:
            popped.append(self.pop())
        if self.total_bytes != location:
            raise StackError(
                f"pop_through({location}) did not land on a record "
                f"boundary (stopped at {self.total_bytes})"
            )
        popped.reverse()
        return popped

    # -- paging ------------------------------------------------------------

    def _max_packed_record(self) -> int:
        return self._device.block_size - _COUNT.size - _LEN.size

    def _spill(self) -> None:
        """Page out oldest buffered records until the buffer fits again."""
        while self._memory_bytes > self._capacity_bytes and len(
            self._memory
        ) > 1:
            # Never spill the newest record: the top of the stack stays hot.
            self._spill_one_block()
        if self._memory_bytes > self._capacity_bytes:
            # A single record larger than the whole buffer: spill it anyway.
            self._spill_one_block(allow_newest=True)

    def _spill_one_block(self, allow_newest: bool = False) -> None:
        limit = len(self._memory) if allow_newest else len(self._memory) - 1
        if limit <= 0:
            return
        first = self._memory[0]
        if len(first) > self._max_packed_record():
            self._spill_big_record(first)
            return
        # Greedily pack the oldest records into one block.
        chunk: list[bytes] = []
        used = _COUNT.size
        count = 0
        while count < limit:
            record = self._memory[count]
            need = _LEN.size + len(record)
            if used + need > self._device.block_size or len(
                record
            ) > self._max_packed_record():
                break
            chunk.append(record)
            used += need
            count += 1
        if count == 0:
            return
        payload = sum(len(r) for r in chunk)
        parts = [_COUNT.pack(count)]
        for record in chunk:
            parts.append(_LEN.pack(len(record)))
            parts.append(record)
        block_id = self._device.allocate(1, pool=self._category)
        self._device.write_block(block_id, b"".join(parts), self._category)
        self._page_outs += 1
        self._segments.append(_PackedSegment(block_id, count, payload))
        del self._memory[:count]
        self._memory_bytes -= payload
        self._spilled_bytes += payload

    def _spill_big_record(self, record: bytes) -> None:
        size = self._device.block_size
        nblocks = -(-len(record) // size)
        start = self._device.allocate(nblocks, pool=self._category)
        block_ids = list(range(start, start + nblocks))
        # One vectored write for the whole extent: same accounting as a
        # block-at-a-time loop, one Python/OS call.
        self._device.write_blocks(
            block_ids,
            [
                record[index * size : (index + 1) * size]
                for index in range(nblocks)
            ],
            self._category,
        )
        self._page_outs += nblocks
        self._segments.append(_BigSegment(block_ids, len(record)))
        del self._memory[0]
        self._memory_bytes -= len(record)
        self._spilled_bytes += len(record)

    def _page_in_last_segment(self) -> None:
        if not self._segments:
            raise StackError("no spilled segment to page in")
        segment = self._segments.pop()
        if isinstance(segment, _PackedSegment):
            data = self._device.read_block(segment.block_id, self._category)
            self._page_ins += 1
            self._device.free_blocks([segment.block_id])
            records = self._unpack_block(data, segment.record_count)
        else:
            chunks = self._device.read_blocks(
                segment.block_ids, self._category
            )
            self._page_ins += len(segment.block_ids)
            self._device.free_blocks(segment.block_ids)
            records = [b"".join(chunks)[: segment.payload_bytes]]
        # Paged-in records are older than everything currently buffered.
        self._memory[:0] = records
        self._memory_bytes += segment.payload_bytes
        self._spilled_bytes -= segment.payload_bytes

    @staticmethod
    def _unpack_block(data: bytes, expected: int) -> list[bytes]:
        (count,) = _COUNT.unpack_from(data, 0)
        if count != expected:
            raise StackError(
                f"corrupt stack block: expected {expected} records, "
                f"found {count}"
            )
        records = []
        pos = _COUNT.size
        for _ in range(count):
            (length,) = _LEN.unpack_from(data, pos)
            pos += _LEN.size
            records.append(data[pos : pos + length])
            pos += length
        return records

    def __len__(self) -> int:
        return self._record_count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ExternalStack({self._category!r}, records={self._record_count},"
            f" bytes={self.total_bytes}, spilled={self._spilled_bytes})"
        )
