"""Parallel-disk striping with an overlapped I/O pipeline in simulated time.

NEXSORT's analysis (and :class:`~repro.io.device.BlockDevice`) models a
single serial disk: every access costs seek + transfer on one clock, and a
phase's simulated time is the *sum* of its I/O and CPU charges.  This module
grows the simulated hardware a parallelism dimension, after the classic
parallel-disk model (PDM): a :class:`StripedDevice` round-robin-stripes the
global block space over ``D`` inner :class:`~repro.io.device.BlockDevice`
shards (block ``g`` lives on disk ``g % D`` at local offset ``g // D``),
each with its own seek/transfer clock and :class:`~repro.io.stats.IOStats`.

On top of the striping sits an asynchronous scheduler in simulated time:

* every disk has a *free-at* clock; requests queue behind whatever the disk
  is already servicing,
* demand reads stall the consumer until the block's completion time,
* :meth:`StripedDevice.write_block_behind` queues writes and only stalls
  when more than :attr:`StripedDevice.write_buffers` writes are still in
  flight for the same stream (double-buffered write-behind - the run
  writers use this so run output overlaps with compute and reads),
* :meth:`StripedDevice.prefetch_blocks` issues reads ahead of demand into a
  bounded window of ``prefetch_depth`` slots; a later demand read of a
  prefetched block costs *no new counters* (it was charged at issue time)
  and stalls only for whatever service time has not yet elapsed.

Crucially, the pipeline changes *when* work happens, never *how much*:
per-category counters, ``model_seconds``, and traces with ``D=1`` and
prefetch off are bit-identical to the serial device.  Parallelism shows up
in the new additive metrics - per-disk busy seconds (``disk_seconds`` is
the busiest disk, i.e. the phase's disk time under PDM), ``overlap_seconds``
(serial I/O time hidden by striping), and ``stall_seconds`` (time the
consumer actually waited).

:class:`MergePrefetcher` implements the forecast rule for the merge path:
during a k-way merge the loser tree's embedded keys reveal each run's
current head, and the run with the *smallest* head key is the one that will
drain its buffer soonest - so its next block is fetched first (Knuth's
forecasting, vol. 3 §5.4.9).  A round-robin policy is kept as the naive
baseline the benchmark compares against.
"""

from __future__ import annotations

from collections import deque

from ..errors import DeviceError
from .device import BlockDevice, DEFAULT_BLOCK_SIZE
from .stats import CostModel, classify_extent

#: Recognized prefetch scheduling policies.
PREFETCH_POLICIES = ("forecast", "round-robin")

#: Write-behind depth per stream: one block being filled by the writer plus
#: this many in flight before the writer must wait (double buffering).
DEFAULT_WRITE_BUFFERS = 2


class StripedDevice(BlockDevice):
    """``D`` disks behind one block address space, with overlapped I/O.

    The device *is a* :class:`~repro.io.device.BlockDevice` - allocation,
    recovery holds, and the whole accounting surface behave identically -
    but storage and service time are distributed over ``disks`` inner
    shard devices.  With ``disks=1`` and ``prefetch_depth=0`` every
    counter, simulated second, and trace byte matches the serial device.

    Args:
        disks: number of member disks ``D``.
        block_size: bytes per block (same meaning as the serial device).
        cost_model: per-disk seek/transfer parameters.
        prefetch_depth: maximum blocks held in the prefetch window; 0
            disables prefetching entirely.
        prefetch_policy: advisory scheduling policy consumed by
            :class:`MergePrefetcher` (``forecast`` or ``round-robin``).
        write_buffers: write-behind depth per stream (see module docs).
    """

    def __init__(
        self,
        disks: int = 1,
        block_size: int = DEFAULT_BLOCK_SIZE,
        cost_model: CostModel | None = None,
        prefetch_depth: int = 0,
        prefetch_policy: str = "forecast",
        write_buffers: int = DEFAULT_WRITE_BUFFERS,
    ):
        if disks < 1:
            raise DeviceError(f"need at least one disk, got {disks}")
        if prefetch_depth < 0:
            raise DeviceError(
                f"prefetch_depth cannot be negative: {prefetch_depth}"
            )
        if prefetch_policy not in PREFETCH_POLICIES:
            raise DeviceError(
                f"unknown prefetch policy {prefetch_policy!r}; "
                f"expected one of {PREFETCH_POLICIES}"
            )
        if write_buffers < 1:
            raise DeviceError(
                f"need at least one write buffer, got {write_buffers}"
            )
        super().__init__(block_size=block_size, cost_model=cost_model)
        self.disks = disks
        self.prefetch_depth = prefetch_depth
        self.prefetch_policy = prefetch_policy
        self.write_buffers = write_buffers
        self._shards = [
            BlockDevice(block_size=block_size, cost_model=cost_model)
            for _ in range(disks)
        ]
        # The striped address space never touches the base dict storage.
        self._blocks.clear()
        # -- simulated-time pipeline state --------------------------------
        # The consumer's clock.  CPU charges recorded on self.stats advance
        # it lazily (_advance_cpu), so compute performed between I/Os
        # genuinely overlaps with in-flight requests.
        self._now = 0.0
        self._cpu_seen = 0.0
        # Per-disk completion time of the last queued request.
        self._free_at = [0.0] * disks
        # Prefetch window: global block id -> (data, completion time).
        self._prefetched: dict[int, tuple[bytes, float]] = {}
        # Write-behind: stream key -> completion times of in-flight writes.
        self._write_queues: dict[str, deque[float]] = {}

    # -- address mapping ---------------------------------------------------

    def disk_of(self, block_id: int) -> int:
        """Member disk holding global block ``block_id``."""
        return block_id % self.disks

    def _locate(self, block_id: int) -> tuple[int, int]:
        """Map a global block id to ``(disk, local block id)``."""
        return block_id % self.disks, block_id // self.disks

    @property
    def shards(self) -> list[BlockDevice]:
        """The member disks (read-only use: per-disk stats inspection)."""
        return list(self._shards)

    def allocate(self, count: int = 1, pool: str = "default") -> int:
        start = super().allocate(count, pool)
        self._sync_shard_bounds()
        return start

    def _sync_shard_bounds(self) -> None:
        # Disk d holds locals for globals d, d+D, d+2D, ... below the
        # global allocation frontier.
        total = self._next_block
        for disk, shard in enumerate(self._shards):
            shard._next_block = max(
                0, (total - disk + self.disks - 1) // self.disks
            )

    @property
    def occupied_blocks(self) -> int:
        return sum(shard.occupied_blocks for shard in self._shards)

    # -- simulated-time pipeline -------------------------------------------

    def _advance_cpu(self) -> None:
        """Fold CPU/penalty charges since the last event into the clock."""
        seen = self.stats.cpu_seconds() + self.stats.penalty_seconds
        if seen > self._cpu_seen:
            self._now += seen - self._cpu_seen
            self._cpu_seen = seen

    def _service(self, disk: int, cost: float) -> float:
        """Queue a request on ``disk``; returns its completion time."""
        start = max(self._free_at[disk], self._now)
        done = start + cost
        self._free_at[disk] = done
        return done

    def _stall_until(self, done: float) -> None:
        """Block the consumer until ``done``; the wait is recorded stall."""
        if done > self._now:
            self.stats.record_stall(done - self._now)
            self._now = done

    def _busy(self, disk: int, sequential: bool) -> float:
        cost = self.stats.cost_model.access_seconds(sequential)
        self.stats.record_disk_busy(disk, cost)
        return cost

    def _busy_extent(
        self, disk: int, count: int, sequential: int
    ) -> float:
        cost = self.stats.cost_model.io_seconds(
            sequential, count - sequential
        )
        self.stats.record_disk_busy(disk, cost)
        return cost

    @property
    def pipeline_seconds(self) -> float:
        """Simulated time until every queued request has completed."""
        drained = max(self._free_at) if self._free_at else self._now
        for queue in self._write_queues.values():
            if queue:
                drained = max(drained, queue[-1])
        return max(self._now, drained)

    def disk_utilization(self) -> list[float]:
        """Busy fraction of each member disk relative to the busiest."""
        busy = [
            self.stats.disk_busy.get(disk, 0.0)
            for disk in range(self.disks)
        ]
        peak = max(busy)
        if peak <= 0:
            return [0.0] * self.disks
        return [b / peak for b in busy]

    # -- access ------------------------------------------------------------

    def _check_readable(self, block_id: int) -> tuple[int, int]:
        if not 0 <= block_id < self._next_block:
            raise DeviceError(f"read of unallocated block {block_id}")
        disk, local = self._locate(block_id)
        if (
            block_id not in self._prefetched
            and local not in self._shards[disk]._blocks
        ):
            raise DeviceError(f"read of never-written block {block_id}")
        return disk, local

    def read_block(
        self,
        block_id: int,
        category: str = "other",
        stream: str | None = None,
    ) -> bytes:
        disk, local = self._check_readable(block_id)
        self._advance_cpu()
        entry = self._prefetched.pop(block_id, None)
        if entry is not None:
            data, done = entry
            self._stall_until(done)
            return data
        shard = self._shards[disk]
        key = stream or category
        sequential = shard._is_sequential(key, local)
        data = shard.read_block(local, category, stream=key)
        self.stats.record_read(category, sequential)
        done = self._service(disk, self._busy(disk, sequential))
        self._stall_until(done)
        return data

    def write_block(
        self,
        block_id: int,
        data: bytes,
        category: str = "other",
        stream: str | None = None,
    ) -> None:
        """Synchronous write: the consumer waits for completion."""
        done = self._submit_write(block_id, data, category, stream)
        self._stall_until(done)

    def write_block_behind(
        self,
        block_id: int,
        data: bytes,
        category: str = "other",
        stream: str | None = None,
    ) -> None:
        """Queue a write; wait only when the stream's buffers are full.

        Models double-buffered run output: the writer owns
        :attr:`write_buffers` in-flight slots per stream and stalls only
        when submitting a write while all slots are still busy.
        """
        key = stream or category
        queue = self._write_queues.setdefault(key, deque())
        self._advance_cpu()
        while queue and queue[0] <= self._now:
            queue.popleft()
        if len(queue) >= self.write_buffers:
            self._stall_until(queue.popleft())
            while queue and queue[0] <= self._now:
                queue.popleft()
        queue.append(self._submit_write(block_id, data, category, stream))

    def _submit_write(
        self,
        block_id: int,
        data: bytes,
        category: str,
        stream: str | None,
    ) -> float:
        if not 0 <= block_id < self._next_block:
            raise DeviceError(f"write of unallocated block {block_id}")
        if len(data) > self.block_size:
            raise DeviceError(
                f"write of {len(data)} bytes exceeds block size "
                f"{self.block_size}"
            )
        disk, local = self._locate(block_id)
        shard = self._shards[disk]
        key = stream or category
        sequential = shard._is_sequential(key, local)
        shard.write_block(local, data, category, stream=key)
        self.stats.record_write(category, sequential)
        self._prefetched.pop(block_id, None)
        self._advance_cpu()
        return self._service(disk, self._busy(disk, sequential))

    def read_blocks(
        self,
        block_ids,
        category: str = "other",
        stream: str | None = None,
    ) -> list[bytes]:
        """Vectored read: per-disk extents are serviced concurrently.

        Counters match a :meth:`read_block` loop on the same device: each
        disk judges its sub-sequence of the extent against its own last
        access, so ``D=1`` is bit-identical to the serial device.  The
        consumer stalls until the last involved disk completes.
        """
        block_ids = list(block_ids)
        if not block_ids:
            return []
        key = stream or category
        locations = [self._check_readable(g) for g in block_ids]
        self._advance_cpu()
        out: list[bytes | None] = [None] * len(block_ids)
        per_disk: dict[int, list[tuple[int, int]]] = {}
        done_times: list[float] = []
        consumed: set[int] = set()
        for position, block_id in enumerate(block_ids):
            if block_id in self._prefetched and block_id not in consumed:
                data, done = self._prefetched.pop(block_id)
                consumed.add(block_id)
                out[position] = data
                done_times.append(done)
                continue
            disk, local = locations[position]
            per_disk.setdefault(disk, []).append((position, local))
        for disk, entries in per_disk.items():
            shard = self._shards[disk]
            locals_ = [local for _, local in entries]
            sequential, _ = classify_extent(
                locals_, shard._last_by_category.get(key)
            )
            datas = shard.read_blocks(locals_, category, stream=key)
            for (position, _), data in zip(entries, datas):
                out[position] = data
            self.stats.record_reads(category, len(locals_), sequential)
            done_times.append(
                self._service(
                    disk, self._busy_extent(disk, len(locals_), sequential)
                )
            )
        self._stall_until(max(done_times))
        return out

    def write_blocks(
        self,
        block_ids,
        datas,
        category: str = "other",
        stream: str | None = None,
    ) -> None:
        """Vectored synchronous write; per-disk extents run concurrently."""
        block_ids = list(block_ids)
        datas = list(datas)
        if len(block_ids) != len(datas):
            raise DeviceError(
                f"write_blocks got {len(block_ids)} ids but "
                f"{len(datas)} payloads"
            )
        if not block_ids:
            return
        key = stream or category
        for block_id, data in zip(block_ids, datas):
            if not 0 <= block_id < self._next_block:
                raise DeviceError(f"write of unallocated block {block_id}")
            if len(data) > self.block_size:
                raise DeviceError(
                    f"write of {len(data)} bytes exceeds block size "
                    f"{self.block_size}"
                )
        self._advance_cpu()
        per_disk: dict[int, tuple[list[int], list[bytes]]] = {}
        for block_id, data in zip(block_ids, datas):
            self._prefetched.pop(block_id, None)
            disk, local = self._locate(block_id)
            locals_, payloads = per_disk.setdefault(disk, ([], []))
            locals_.append(local)
            payloads.append(data)
        done_times = []
        for disk, (locals_, payloads) in per_disk.items():
            shard = self._shards[disk]
            sequential, _ = classify_extent(
                locals_, shard._last_by_category.get(key)
            )
            shard.write_blocks(locals_, payloads, category, stream=key)
            self.stats.record_writes(category, len(locals_), sequential)
            done_times.append(
                self._service(
                    disk, self._busy_extent(disk, len(locals_), sequential)
                )
            )
        self._stall_until(max(done_times))

    # -- prefetch ----------------------------------------------------------

    def prefetch_blocks(
        self,
        block_ids,
        category: str = "other",
        stream: str | None = None,
    ) -> int:
        """Issue asynchronous reads into the prefetch window.

        Blocks are charged (counters and disk busy time) at issue time,
        exactly as a demand read with the same stream key would be - so a
        run consumed through prefetch produces identical counters to one
        consumed by demand reads alone.  Returns how many blocks were
        issued; the window declining (already full, or already prefetched)
        is not an error.
        """
        if not self.prefetch_depth:
            return 0
        issued = 0
        for block_id in block_ids:
            if block_id in self._prefetched:
                continue
            if len(self._prefetched) >= self.prefetch_depth:
                break
            disk, local = self._check_readable(block_id)
            shard = self._shards[disk]
            key = stream or category
            sequential = shard._is_sequential(key, local)
            data = shard.read_block(local, category, stream=key)
            self.stats.record_read(category, sequential)
            self._advance_cpu()
            done = self._service(disk, self._busy(disk, sequential))
            self._prefetched[block_id] = (data, done)
            issued += 1
        return issued

    @property
    def prefetched_blocks(self) -> int:
        """Blocks currently sitting in the prefetch window."""
        return len(self._prefetched)

    # -- free / recovery ---------------------------------------------------

    def free_blocks(self, block_ids) -> None:
        block_ids = list(block_ids)
        if self._holds:
            hold = self._holds[-1]
            for block_id in block_ids:
                if block_id in hold:
                    continue
                disk, local = self._locate(block_id)
                data = self._shards[disk]._blocks.get(local)
                if data is not None:
                    hold[block_id] = data
        per_disk: dict[int, list[int]] = {}
        for block_id in block_ids:
            self._prefetched.pop(block_id, None)
            disk, local = self._locate(block_id)
            per_disk.setdefault(disk, []).append(local)
        for disk, locals_ in per_disk.items():
            self._shards[disk].free_blocks(locals_)

    def _restore_held(self, held: dict[int, bytes | None]) -> None:
        for block_id, data in held.items():
            if data is not None:
                disk, local = self._locate(block_id)
                self._shards[disk].store_block_raw(local, data)

    def store_block_raw(self, block_id: int, data: bytes) -> None:
        if not 0 <= block_id < self._next_block:
            raise DeviceError(f"raw store to unallocated block {block_id}")
        if len(data) > self.block_size:
            raise DeviceError(
                f"raw store of {len(data)} bytes exceeds block size "
                f"{self.block_size}"
            )
        disk, local = self._locate(block_id)
        self._shards[disk].store_block_raw(local, data)
        self._prefetched.pop(block_id, None)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StripedDevice(disks={self.disks}, "
            f"block_size={self.block_size}, "
            f"allocated={self._next_block}, "
            f"ios={self.stats.total_ios})"
        )


class MergePrefetcher:
    """Forecast-driven block prefetch for one k-way merge.

    One prefetcher accompanies one merge pass.  The merge kernel reports
    each run's freshly pulled head key (:meth:`note_head`) - with embedded
    normalized keys these are exactly the loser tree's comparison keys -
    and the prefetcher keeps each live run at most one block ahead of its
    reader, choosing *which* runs get the device's limited prefetch slots:

    * ``forecast``: the run with the smallest head key drains first, so it
      is served first (Knuth's forecasting rule).
    * ``round-robin``: runs are served cyclically, ignoring the keys - the
      naive baseline.

    The prefetcher only ever *reorders* reads the merge was about to issue
    with the same stream keys, so counters and simulated model time are
    unchanged; the benefit is measured in reduced consumer stall.
    """

    def __init__(
        self,
        device,
        runs,
        readers,
        category: str,
        streams: list[str],
        policy: str | None = None,
    ):
        policy = policy or getattr(device, "prefetch_policy", None)
        if policy not in PREFETCH_POLICIES:
            policy = "forecast"
        self._device = device
        self._runs = list(runs)
        self._readers = list(readers)
        self._category = category
        self._streams = list(streams)
        self._policy = policy
        count = len(self._runs)
        self._head_keys: list = [None] * count
        self._alive = [True] * count
        # Highest block index already issued (demand or prefetch), per run.
        self._issued = [0] * count
        self._cycle = 0

    @property
    def policy(self) -> str:
        return self._policy

    def note_head(self, index: int, key) -> None:
        """Record run ``index``'s new head key after a pull."""
        self._head_keys[index] = key

    def exhausted(self, index: int) -> None:
        """Run ``index`` has no records left; stop prefetching for it."""
        self._alive[index] = False

    def _forecast_priority(self, index: int):
        """Sort key for forecast order; smallest head key drains first.

        A run the tree has not pulled from yet (head key still unknown)
        is about to be demanded, so it outranks every forecasted run.
        """
        key = self._head_keys[index]
        if key is None:
            return (0, index)
        return (1, key, index)

    def _needy(self) -> list[int]:
        """Runs whose next block is not yet issued (≤ one block lookahead)."""
        needy = []
        for index, run in enumerate(self._runs):
            if not self._alive[index]:
                continue
            reader = self._readers[index]
            nxt = max(self._issued[index], reader.block_index + 1)
            self._issued[index] = nxt
            if nxt < len(run.block_ids) and nxt <= reader.block_index + 1:
                needy.append(index)
        return needy

    def pump(self) -> int:
        """Issue prefetches while slots are free; returns blocks issued."""
        issued_total = 0
        while True:
            needy = self._needy()
            if not needy:
                return issued_total
            if self._policy == "forecast":
                order = sorted(needy, key=self._forecast_priority)
            else:
                order = sorted(
                    needy,
                    key=lambda i: (i - self._cycle) % len(self._runs),
                )
            progressed = False
            for index in order:
                run = self._runs[index]
                nxt = self._issued[index]
                issued = self._device.prefetch_blocks(
                    [run.block_ids[nxt]],
                    self._category,
                    stream=self._streams[index],
                )
                if not issued:
                    return issued_total
                self._issued[index] = nxt + 1
                issued_total += issued
                progressed = True
                if self._policy == "round-robin":
                    self._cycle = (index + 1) % len(self._runs)
            if not progressed:
                return issued_total


def supports_prefetch(io_target) -> bool:
    """True when ``io_target`` (device/pool/proxy) can prefetch blocks."""
    return getattr(io_target, "prefetch_depth", 0) > 0 and callable(
        getattr(io_target, "prefetch_blocks", None)
    )


class DiskTimeline:
    """Simulated-time ledger of ``D`` shared disks for the service layer.

    The scheduler (:mod:`repro.service.scheduler`) replays each tenant's
    recorded cost events over one of these: every I/O event is placed on
    the *least-loaded* disk (lowest free-at clock, lowest index on ties -
    deterministic), starting no earlier than the job's own clock and no
    earlier than the disk frees up.  CPU events never touch the timeline;
    they advance only the job's clock.

    This is the same PDM arithmetic :class:`StripedDevice` uses for one
    job's own stripes, lifted to *cross-job* contention: with D disks and
    enough concurrent jobs, aggregate I/O time approaches ``serial / D``,
    while a lone job still pays full service time for every access.
    """

    def __init__(self, disks: int = 1):
        if disks < 1:
            raise DeviceError(f"need at least one disk, got {disks}")
        self.disks = disks
        self.free_at = [0.0] * disks
        self.busy_seconds = [0.0] * disks

    def issue(self, now: float, service_seconds: float) -> float:
        """Schedule one access at or after ``now``; return completion time."""
        disk = min(range(self.disks), key=lambda d: (self.free_at[d], d))
        start = max(now, self.free_at[disk])
        end = start + service_seconds
        self.free_at[disk] = end
        self.busy_seconds[disk] += service_seconds
        return end

    @property
    def makespan(self) -> float:
        """Latest completion time scheduled so far."""
        return max(self.free_at)

    def utilization(self) -> dict[int, float]:
        """Per-disk busy time as a fraction of the makespan."""
        horizon = self.makespan
        if horizon <= 0:
            return {}
        return {
            disk: self.busy_seconds[disk] / horizon
            for disk in range(self.disks)
        }
