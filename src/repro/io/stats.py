"""I/O and CPU accounting for the simulated external-memory environment.

The paper measures algorithms primarily by the *number of I/Os* (Section 4)
and reports wall-clock sort times from a real disk (Section 5).  We reproduce
both views:

* :class:`IOStats` counts every block access, split by *category* (input
  scan, data-stack paging, subtree sorts, run reads, output...) and by access
  pattern (sequential vs. random), mirroring the cost breakdown in the
  paper's Lemmas 4.9-4.13.
* :class:`CostModel` converts those counters into simulated seconds with a
  seek + transfer disk model and a simple CPU model (per-comparison and
  per-token charges), standing in for the authors' 800 MHz Pentium III and
  real disk.  Absolute values are not expected to match the paper; curve
  shapes are.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CostModel:
    """Simulated hardware cost parameters.

    Attributes:
        seek_seconds: charged for every non-sequential block access.
        transfer_seconds: charged for every block access (data movement).
        compare_seconds: charged per key comparison.
        token_seconds: charged per token parsed/encoded/moved.
        compress_byte_seconds: charged per *raw* byte fed to a run
            compressor (ISSUE 10).
        decompress_byte_seconds: charged per raw byte produced by a run
            decompressor.  Decompression is cheaper than compression for
            every real codec family, hence the asymmetry.
    """

    seek_seconds: float = 8e-3
    transfer_seconds: float = 1e-3
    compare_seconds: float = 2e-6
    token_seconds: float = 1e-6
    compress_byte_seconds: float = 6e-8
    decompress_byte_seconds: float = 3e-8

    def io_seconds(self, sequential: int, random: int) -> float:
        """Simulated time for the given numbers of block accesses."""
        total = sequential + random
        return total * self.transfer_seconds + random * self.seek_seconds

    def access_seconds(self, sequential: bool) -> float:
        """Simulated service time of one block access (seek + transfer)."""
        if sequential:
            return self.transfer_seconds
        return self.transfer_seconds + self.seek_seconds

    def cpu_seconds(self, comparisons: int, tokens: int) -> float:
        """Simulated CPU time for the given operation counts."""
        return comparisons * self.compare_seconds + tokens * self.token_seconds

    def compress_seconds(
        self, compressed_raw: int, decompressed_raw: int
    ) -> float:
        """Simulated CPU time for codec work, in raw bytes each way."""
        return (
            compressed_raw * self.compress_byte_seconds
            + decompressed_raw * self.decompress_byte_seconds
        )


def is_sequential_access(last: int | None, block_id: int) -> bool:
    """The model's sequentiality judgment for a single block access.

    An access is sequential when it immediately follows the stream's last
    accessed block (or starts a fresh stream) - the judgment that decides
    whether :attr:`CostModel.seek_seconds` is charged.  Shared by every
    device implementation so the seek/transfer arithmetic lives in exactly
    one place.
    """
    return last is None or block_id == last + 1


def classify_extent(
    block_ids, last: int | None
) -> tuple[int, int | None]:
    """Judge a vectored access: ``(sequential_count, new_last)``.

    Each block is judged against the one before it in the call (the first
    against ``last``, the stream's previous access), exactly as an
    equivalent loop of single-block accesses would be - so vectored and
    scalar I/O charge identical seek/transfer costs.
    """
    sequential = 0
    for block_id in block_ids:
        if is_sequential_access(last, block_id):
            sequential += 1
        last = block_id
    return sequential, last


@dataclass
class CategoryCounters:
    """Block-access counters for one accounting category.

    ``cache_hits`` / ``cache_misses`` / ``cache_evictions`` are buffer-pool
    counters (:mod:`repro.io.bufferpool`): a hit is a block access served
    from pool memory with no device I/O; a miss went to the device (and is
    therefore also counted in ``reads``/``writes``); an eviction is a block
    displaced from the pool (dirty evictions additionally appear as device
    writes).  Without a pool all three stay zero.
    """

    reads: int = 0
    writes: int = 0
    seq_reads: int = 0
    seq_writes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0

    @property
    def total(self) -> int:
        return self.reads + self.writes

    @property
    def random_accesses(self) -> int:
        return self.total - self.seq_reads - self.seq_writes

    def merged_with(self, other: "CategoryCounters") -> "CategoryCounters":
        return CategoryCounters(
            reads=self.reads + other.reads,
            writes=self.writes + other.writes,
            seq_reads=self.seq_reads + other.seq_reads,
            seq_writes=self.seq_writes + other.seq_writes,
            cache_hits=self.cache_hits + other.cache_hits,
            cache_misses=self.cache_misses + other.cache_misses,
            cache_evictions=self.cache_evictions + other.cache_evictions,
        )


class IOStats:
    """Mutable accumulator of block-access and CPU counters.

    A single :class:`IOStats` lives on a :class:`~repro.io.device.BlockDevice`
    and is shared by everything using that device.  Algorithms take snapshots
    (:meth:`snapshot`) before and after a phase and diff them
    (:meth:`since`) to attribute costs, as the paper's analysis does.
    """

    def __init__(self, cost_model: CostModel | None = None):
        self.cost_model = cost_model or CostModel()
        self.by_category: dict[str, CategoryCounters] = {}
        self.comparisons = 0
        self.merge_comparisons = 0
        self.tokens = 0
        self.penalty_seconds = 0.0
        # Parallel-disk accounting (repro.io.parallel): per-disk busy
        # seconds and consumer stall seconds.  Both stay empty/zero on a
        # serial device, keeping its serialization bit-identical.
        self.disk_busy: dict[int, float] = {}
        self.stall_seconds = 0.0
        # Run-compression accounting (ISSUE 10): bytes before/after each
        # way through the codec.  All four stay zero with compression
        # off, keeping uncompressed serialization bit-identical.
        self.compress_raw_bytes = 0
        self.compress_stored_bytes = 0
        self.decompress_stored_bytes = 0
        self.decompress_raw_bytes = 0

    # -- recording -------------------------------------------------------

    def record_read(self, category: str, sequential: bool) -> None:
        counters = self._category(category)
        counters.reads += 1
        if sequential:
            counters.seq_reads += 1

    def record_write(self, category: str, sequential: bool) -> None:
        counters = self._category(category)
        counters.writes += 1
        if sequential:
            counters.seq_writes += 1

    def record_reads(
        self, category: str, count: int, sequential_count: int
    ) -> None:
        """Bulk form of :meth:`record_read` for vectored device reads."""
        counters = self._category(category)
        counters.reads += count
        counters.seq_reads += sequential_count

    def record_writes(
        self, category: str, count: int, sequential_count: int
    ) -> None:
        """Bulk form of :meth:`record_write` for vectored device writes."""
        counters = self._category(category)
        counters.writes += count
        counters.seq_writes += sequential_count

    def record_cache_hit(self, category: str, count: int = 1) -> None:
        self._category(category).cache_hits += count

    def record_cache_miss(self, category: str, count: int = 1) -> None:
        self._category(category).cache_misses += count

    def record_cache_eviction(self, category: str, count: int = 1) -> None:
        self._category(category).cache_evictions += count

    def record_comparisons(self, count: int) -> None:
        self.comparisons += count

    def record_merge_comparisons(self, count: int) -> None:
        """Comparisons spent inside k-way merges.

        These are ordinary comparisons (they add to :attr:`comparisons` and
        therefore to simulated CPU seconds) that are *additionally* tracked
        under :attr:`merge_comparisons` so reports can show how much of the
        comparison budget the merge phase consumed.
        """
        self.comparisons += count
        self.merge_comparisons += count

    def record_tokens(self, count: int) -> None:
        self.tokens += count

    def record_compression(self, raw_bytes: int, stored_bytes: int) -> None:
        """One codec pass raw -> stored; CPU charged per raw byte."""
        self.compress_raw_bytes += raw_bytes
        self.compress_stored_bytes += stored_bytes

    def record_decompression(self, stored_bytes: int, raw_bytes: int) -> None:
        """One codec pass stored -> raw; CPU charged per raw byte."""
        self.decompress_stored_bytes += stored_bytes
        self.decompress_raw_bytes += raw_bytes

    def record_penalty(self, seconds: float) -> None:
        """Charge simulated wait time that is not modeled I/O or CPU.

        Retry backoff (:mod:`repro.faults`) lands here: it advances the
        simulated clock (:meth:`elapsed_seconds`) without perturbing the
        model-derived counters, so a run that succeeded after retries
        keeps counters bit-identical to a fault-free run.
        """
        if seconds < 0:
            raise ValueError(f"penalty cannot be negative: {seconds}")
        self.penalty_seconds += seconds

    def record_disk_busy(self, disk: int, seconds: float) -> None:
        """Charge service time to one member disk of a striped device."""
        self.disk_busy[disk] = self.disk_busy.get(disk, 0.0) + seconds

    def record_stall(self, seconds: float) -> None:
        """Record time the consumer spent waiting on in-flight I/O.

        Stall is *overlap diagnostics*, not a new cost: the underlying
        seek/transfer charges are already in the per-category counters.
        A fully overlapped pipeline shows near-zero stall; a serial
        consumer stalls for every access's full service time.
        """
        if seconds < 0:
            raise ValueError(f"stall cannot be negative: {seconds}")
        self.stall_seconds += seconds

    def _category(self, category: str) -> CategoryCounters:
        counters = self.by_category.get(category)
        if counters is None:
            counters = CategoryCounters()
            self.by_category[category] = counters
        return counters

    # -- aggregate views -------------------------------------------------

    @property
    def total_reads(self) -> int:
        return sum(c.reads for c in self.by_category.values())

    @property
    def total_writes(self) -> int:
        return sum(c.writes for c in self.by_category.values())

    @property
    def total_ios(self) -> int:
        return self.total_reads + self.total_writes

    @property
    def sequential_ios(self) -> int:
        return sum(
            c.seq_reads + c.seq_writes for c in self.by_category.values()
        )

    @property
    def random_ios(self) -> int:
        return self.total_ios - self.sequential_ios

    @property
    def cache_hits(self) -> int:
        return sum(c.cache_hits for c in self.by_category.values())

    @property
    def cache_misses(self) -> int:
        return sum(c.cache_misses for c in self.by_category.values())

    @property
    def cache_evictions(self) -> int:
        return sum(c.cache_evictions for c in self.by_category.values())

    def io_seconds(self) -> float:
        """Simulated disk time for everything recorded so far."""
        return self.cost_model.io_seconds(self.sequential_ios, self.random_ios)

    def cpu_seconds(self) -> float:
        """Simulated CPU time for everything recorded so far."""
        return self.cost_model.cpu_seconds(
            self.comparisons, self.tokens
        ) + self.cost_model.compress_seconds(
            self.compress_raw_bytes, self.decompress_raw_bytes
        )

    def elapsed_seconds(self) -> float:
        """Total simulated time (disk + CPU + fault-retry penalties)."""
        return self.io_seconds() + self.cpu_seconds() + self.penalty_seconds

    def disk_seconds(self) -> float:
        """Busy time of the busiest member disk (= serial io_seconds on D=1).

        On a serial device nothing populates :attr:`disk_busy`, and the
        single disk is busy for exactly :meth:`io_seconds`.
        """
        if not self.disk_busy:
            return self.io_seconds()
        return max(self.disk_busy.values())

    def overlap_seconds(self) -> float:
        """I/O time hidden by disk parallelism: serial io minus max busy."""
        if not self.disk_busy:
            return 0.0
        return max(0.0, self.io_seconds() - self.disk_seconds())

    def disk_utilization(self) -> dict[int, float]:
        """Per-disk busy time as a fraction of the busiest disk's."""
        peak = self.disk_seconds()
        if not self.disk_busy or peak <= 0:
            return {}
        return {
            disk: busy / peak
            for disk, busy in sorted(self.disk_busy.items())
        }

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> "StatsSnapshot":
        """Freeze the current counters for later differencing."""
        return StatsSnapshot(
            by_category={
                name: CategoryCounters(
                    c.reads,
                    c.writes,
                    c.seq_reads,
                    c.seq_writes,
                    c.cache_hits,
                    c.cache_misses,
                    c.cache_evictions,
                )
                for name, c in self.by_category.items()
            },
            comparisons=self.comparisons,
            merge_comparisons=self.merge_comparisons,
            tokens=self.tokens,
            penalty_seconds=self.penalty_seconds,
            disk_busy=dict(self.disk_busy),
            stall_seconds=self.stall_seconds,
            compress_raw_bytes=self.compress_raw_bytes,
            compress_stored_bytes=self.compress_stored_bytes,
            decompress_stored_bytes=self.decompress_stored_bytes,
            decompress_raw_bytes=self.decompress_raw_bytes,
            cost_model=self.cost_model,
        )

    def since(self, snapshot: "StatsSnapshot") -> "StatsSnapshot":
        """Counters accumulated since ``snapshot`` was taken."""
        return self.snapshot().minus(snapshot)

    def delta(self, since: "StatsSnapshot") -> "StatsSnapshot":
        """Alias of :meth:`since` - the span tracer's primitive.

        ``stats.delta(entry_snapshot)`` is everything that happened inside
        a phase whose entry captured ``entry_snapshot``; the observability
        subsystem (:mod:`repro.obs`) attributes exactly these deltas to
        its spans.
        """
        return self.since(since)

    def summary(self) -> dict[str, dict[str, int]]:
        """Per-category counter dictionary, useful for reports and tests."""
        return {
            name: {
                "reads": c.reads,
                "writes": c.writes,
                "seq_reads": c.seq_reads,
                "seq_writes": c.seq_writes,
                "cache_hits": c.cache_hits,
                "cache_misses": c.cache_misses,
                "cache_evictions": c.cache_evictions,
            }
            for name, c in sorted(self.by_category.items())
        }


@dataclass
class StatsSnapshot:
    """Immutable view of counters, supporting subtraction."""

    by_category: dict[str, CategoryCounters] = field(default_factory=dict)
    comparisons: int = 0
    merge_comparisons: int = 0
    tokens: int = 0
    penalty_seconds: float = 0.0
    disk_busy: dict[int, float] = field(default_factory=dict)
    stall_seconds: float = 0.0
    compress_raw_bytes: int = 0
    compress_stored_bytes: int = 0
    decompress_stored_bytes: int = 0
    decompress_raw_bytes: int = 0
    cost_model: CostModel = field(default_factory=CostModel)

    def minus(self, earlier: "StatsSnapshot") -> "StatsSnapshot":
        categories: dict[str, CategoryCounters] = {}
        names = set(self.by_category) | set(earlier.by_category)
        for name in names:
            now = self.by_category.get(name, CategoryCounters())
            before = earlier.by_category.get(name, CategoryCounters())
            diff = CategoryCounters(
                reads=now.reads - before.reads,
                writes=now.writes - before.writes,
                seq_reads=now.seq_reads - before.seq_reads,
                seq_writes=now.seq_writes - before.seq_writes,
                cache_hits=now.cache_hits - before.cache_hits,
                cache_misses=now.cache_misses - before.cache_misses,
                cache_evictions=now.cache_evictions
                - before.cache_evictions,
            )
            if (
                diff.total
                or diff.seq_reads
                or diff.seq_writes
                or diff.cache_hits
                or diff.cache_misses
                or diff.cache_evictions
            ):
                categories[name] = diff
        busy: dict[int, float] = {}
        for disk in set(self.disk_busy) | set(earlier.disk_busy):
            delta = self.disk_busy.get(disk, 0.0) - earlier.disk_busy.get(
                disk, 0.0
            )
            if delta:
                busy[disk] = delta
        return StatsSnapshot(
            by_category=categories,
            comparisons=self.comparisons - earlier.comparisons,
            merge_comparisons=self.merge_comparisons
            - earlier.merge_comparisons,
            tokens=self.tokens - earlier.tokens,
            penalty_seconds=self.penalty_seconds - earlier.penalty_seconds,
            disk_busy=busy,
            stall_seconds=self.stall_seconds - earlier.stall_seconds,
            compress_raw_bytes=self.compress_raw_bytes
            - earlier.compress_raw_bytes,
            compress_stored_bytes=self.compress_stored_bytes
            - earlier.compress_stored_bytes,
            decompress_stored_bytes=self.decompress_stored_bytes
            - earlier.decompress_stored_bytes,
            decompress_raw_bytes=self.decompress_raw_bytes
            - earlier.decompress_raw_bytes,
            cost_model=self.cost_model,
        )

    @property
    def total_reads(self) -> int:
        return sum(c.reads for c in self.by_category.values())

    @property
    def total_writes(self) -> int:
        return sum(c.writes for c in self.by_category.values())

    @property
    def total_ios(self) -> int:
        return self.total_reads + self.total_writes

    @property
    def sequential_ios(self) -> int:
        return sum(
            c.seq_reads + c.seq_writes for c in self.by_category.values()
        )

    @property
    def random_ios(self) -> int:
        return self.total_ios - self.sequential_ios

    @property
    def cache_hits(self) -> int:
        return sum(c.cache_hits for c in self.by_category.values())

    @property
    def cache_misses(self) -> int:
        return sum(c.cache_misses for c in self.by_category.values())

    @property
    def cache_evictions(self) -> int:
        return sum(c.cache_evictions for c in self.by_category.values())

    def plus(self, other: "StatsSnapshot") -> "StatsSnapshot":
        """Componentwise sum of two snapshots (the inverse of `minus`).

        Used to sum sibling span deltas when checking that a parent span's
        delta is fully covered by its children plus its own work.
        """
        categories: dict[str, CategoryCounters] = {
            name: CategoryCounters(
                c.reads,
                c.writes,
                c.seq_reads,
                c.seq_writes,
                c.cache_hits,
                c.cache_misses,
                c.cache_evictions,
            )
            for name, c in self.by_category.items()
        }
        for name, counters in other.by_category.items():
            mine = categories.get(name)
            if mine is None:
                categories[name] = CategoryCounters(
                    counters.reads,
                    counters.writes,
                    counters.seq_reads,
                    counters.seq_writes,
                    counters.cache_hits,
                    counters.cache_misses,
                    counters.cache_evictions,
                )
            else:
                categories[name] = mine.merged_with(counters)
        busy = dict(self.disk_busy)
        for disk, seconds in other.disk_busy.items():
            busy[disk] = busy.get(disk, 0.0) + seconds
        return StatsSnapshot(
            by_category=categories,
            comparisons=self.comparisons + other.comparisons,
            merge_comparisons=self.merge_comparisons
            + other.merge_comparisons,
            tokens=self.tokens + other.tokens,
            penalty_seconds=self.penalty_seconds + other.penalty_seconds,
            disk_busy=busy,
            stall_seconds=self.stall_seconds + other.stall_seconds,
            compress_raw_bytes=self.compress_raw_bytes
            + other.compress_raw_bytes,
            compress_stored_bytes=self.compress_stored_bytes
            + other.compress_stored_bytes,
            decompress_stored_bytes=self.decompress_stored_bytes
            + other.decompress_stored_bytes,
            decompress_raw_bytes=self.decompress_raw_bytes
            + other.decompress_raw_bytes,
            cost_model=self.cost_model,
        )

    def category_total(self, category: str) -> int:
        counters = self.by_category.get(category)
        return counters.total if counters else 0

    def io_breakdown(self) -> dict[str, int]:
        """Per-category total block accesses (reads + writes)."""
        return {
            name: counters.total
            for name, counters in sorted(self.by_category.items())
        }

    def io_seconds(self) -> float:
        """Simulated disk time for the counters in this snapshot."""
        return self.cost_model.io_seconds(
            self.sequential_ios, self.random_ios
        )

    def cpu_seconds(self) -> float:
        """Simulated CPU time for the counters in this snapshot."""
        return self.cost_model.cpu_seconds(
            self.comparisons, self.tokens
        ) + self.cost_model.compress_seconds(
            self.compress_raw_bytes, self.decompress_raw_bytes
        )

    def elapsed_seconds(self) -> float:
        return self.io_seconds() + self.cpu_seconds() + self.penalty_seconds

    def model_seconds(self) -> float:
        """Simulated time derived purely from the model counters.

        Excludes retry-backoff penalties (:attr:`penalty_seconds`), so it
        is identical between a fault-free run and a run that succeeded
        after transient-fault retries.
        """
        return self.io_seconds() + self.cpu_seconds()

    def disk_seconds(self) -> float:
        """Busy time of the busiest member disk (= serial io_seconds on D=1)."""
        if not self.disk_busy:
            return self.io_seconds()
        return max(self.disk_busy.values())

    def overlap_seconds(self) -> float:
        """I/O time hidden by disk parallelism: serial io minus max busy."""
        if not self.disk_busy:
            return 0.0
        return max(0.0, self.io_seconds() - self.disk_seconds())

    def disk_utilization(self) -> dict[int, float]:
        """Per-disk busy time as a fraction of the busiest disk's."""
        peak = self.disk_seconds()
        if not self.disk_busy or peak <= 0:
            return {}
        return {
            disk: busy / peak
            for disk, busy in sorted(self.disk_busy.items())
        }

    def counter_totals(self) -> dict:
        """Flat dictionary of every aggregate counter plus simulated times.

        This is the serialization the trace sinks and the trace diff tool
        agree on; keys are stable across formats.  ``seconds`` is
        :meth:`model_seconds` - counter-derived and therefore comparable
        across fault-free and recovered runs; retry backoff is reported
        separately as ``penalty_seconds`` (which the diff tool ignores).
        The parallel-disk keys appear only when a striped device recorded
        per-disk busy time, so serial-device traces stay bit-identical to
        pre-striping output.  Likewise the compression byte counters
        appear only when a codec actually ran, so uncompressed traces
        stay bit-identical to pre-compression output.
        """
        totals = {
            "reads": self.total_reads,
            "writes": self.total_writes,
            "total_ios": self.total_ios,
            "sequential_ios": self.sequential_ios,
            "random_ios": self.random_ios,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_evictions": self.cache_evictions,
            "comparisons": self.comparisons,
            "merge_comparisons": self.merge_comparisons,
            "tokens": self.tokens,
            "io_seconds": self.io_seconds(),
            "cpu_seconds": self.cpu_seconds(),
            "penalty_seconds": self.penalty_seconds,
            "seconds": self.model_seconds(),
        }
        if self.disk_busy:
            totals["disk_busy"] = {
                str(disk): seconds
                for disk, seconds in sorted(self.disk_busy.items())
            }
            totals["disk_seconds"] = self.disk_seconds()
            totals["overlap_seconds"] = self.overlap_seconds()
            totals["stall_seconds"] = self.stall_seconds
        if (
            self.compress_raw_bytes
            or self.compress_stored_bytes
            or self.decompress_stored_bytes
            or self.decompress_raw_bytes
        ):
            totals["compress_raw_bytes"] = self.compress_raw_bytes
            totals["compress_stored_bytes"] = self.compress_stored_bytes
            totals["decompress_stored_bytes"] = self.decompress_stored_bytes
            totals["decompress_raw_bytes"] = self.decompress_raw_bytes
        return totals
