"""Budget-charged LRU buffer pool between the algorithms and the device.

The paper's experimental substrate (TPIE over Linux) always ran behind a
buffer manager and OS readahead; the pure model in :mod:`repro.io.device`
charges every block access.  :class:`BufferPool` closes that gap without
giving up the model's honesty: the pool's capacity is *reserved from the
same* :class:`~repro.io.budget.MemoryBudget` that grants the stacks and the
subtree sorter their blocks, so cached blocks are never memory the model
does not account for.

The pool is device-shaped - it exposes ``read_block`` / ``write_block`` /
``read_blocks`` / ``write_blocks`` / ``allocate`` / ``free_blocks`` /
``block_size`` / ``stats`` - so every component that takes a
:class:`~repro.io.device.BlockDevice` (stacks, run readers and writers)
works unchanged against a pool.

Semantics:

* **read hit**: served from pool memory, *no device I/O*; counted as a
  ``cache_hit`` under the access's category.
* **read miss**: goes to the device exactly as today (one counted read)
  and the block enters the pool; counted as a ``cache_miss``.
* **write**: write-back.  The block is updated (or inserted) in the pool
  and marked dirty; no device I/O happens until the block is evicted,
  flushed, or the pool detaches.  A dirty block freed before eviction is
  never written at all - the stack page-out/page-in/free cycle becomes
  free once it fits in the pool.
* **eviction**: the least-recently-used unpinned block is displaced
  (counted as a ``cache_eviction``); if dirty, its contents go to the
  device as an ordinary counted write under the category that dirtied it.
* **pin**: pinned blocks are never evicted - the output phase pins the
  block holding each saved resume offset so the Lemma 4.12 re-read is a
  guaranteed hit.  Pinning a resident block always succeeds (even in a
  capacity-1 pool); when every entry is pinned, new blocks simply bypass
  the cache (reads go uncached, writes go write-through) instead of the
  pin being refused.  Pins are a strict contract: :meth:`unpin` of a
  block that is not resident or not pinned raises
  :class:`~repro.errors.DeviceError`, as does :meth:`free_blocks` of a
  still-pinned block - silent tolerance here masked real pin leaks.

A pool of capacity 0 is a pure pass-through: every call forwards to the
device and no cache counters move, which keeps the paper's I/O counts
bit-identical to an unpooled run.
"""

from __future__ import annotations

from collections import OrderedDict

from ..errors import DeviceError
from .budget import MemoryBudget, Reservation
from .device import BlockDevice

#: Readahead extent (in blocks) used when ``readahead`` is left automatic:
#: deep enough to amortize per-call overhead, small enough not to thrash
#: small pools.
DEFAULT_READAHEAD = 8


class _Entry:
    """One cached block."""

    __slots__ = ("data", "category", "stream", "dirty", "pins")

    def __init__(
        self,
        data: bytes,
        category: str,
        dirty: bool,
        stream: str | None = None,
    ):
        self.data = data
        self.category = category
        self.stream = stream
        self.dirty = dirty
        self.pins = 0


class BufferPool:
    """An LRU, pin-aware, write-back block cache charged to the budget.

    Args:
        device: the underlying block device.
        capacity_blocks: pool size in blocks; 0 disables caching entirely.
        budget: when given, ``capacity_blocks`` are reserved from it (and
            released on :meth:`close`); reserving more than is free raises
            :class:`~repro.errors.MemoryBudgetExceeded`.
        owner: reservation owner name shown in budget errors.
        readahead: blocks a sequential reader should prefetch through this
            pool per extent; ``None`` picks ``DEFAULT_READAHEAD`` capped to
            half the capacity.  Purely advisory - readers consult it.
        tracer: optional :class:`~repro.obs.tracer.Tracer`; write-back
            flushes open a ``pool-flush`` span so deferred device writes
            are attributed to the phase that triggered the flush.
    """

    def __init__(
        self,
        device: BlockDevice,
        capacity_blocks: int,
        budget: MemoryBudget | None = None,
        owner: str = "buffer-pool",
        readahead: int | None = None,
        tracer=None,
    ):
        if capacity_blocks < 0:
            raise DeviceError(
                f"buffer pool capacity cannot be negative: {capacity_blocks}"
            )
        self._device = device
        self.capacity = capacity_blocks
        self._reservation: Reservation | None = None
        if budget is not None:
            self._reservation = budget.reserve(capacity_blocks, owner)
        if readahead is None:
            readahead = min(DEFAULT_READAHEAD, max(1, capacity_blocks // 2))
        self.readahead = readahead if capacity_blocks else 0
        self._entries: "OrderedDict[int, _Entry]" = OrderedDict()
        self._pinned = 0
        self._closed = False
        self._tracer = tracer

    # -- device-shaped proxies ---------------------------------------------

    @property
    def device(self) -> BlockDevice:
        return self._device

    @property
    def block_size(self) -> int:
        return self._device.block_size

    @property
    def stats(self):
        return self._device.stats

    def allocate(self, count: int = 1, pool: str = "default") -> int:
        return self._device.allocate(count, pool)

    def bytes_to_blocks(self, nbytes: int) -> int:
        return self._device.bytes_to_blocks(nbytes)

    # -- parallel-disk surface (forwarded; see repro.io.parallel) ----------

    @property
    def disks(self) -> int:
        return getattr(self._device, "disks", 1)

    @property
    def prefetch_depth(self) -> int:
        return getattr(self._device, "prefetch_depth", 0)

    @property
    def prefetch_policy(self) -> str | None:
        return getattr(self._device, "prefetch_policy", None)

    def disk_of(self, block_id: int) -> int:
        disk_of = getattr(self._device, "disk_of", None)
        return disk_of(block_id) if disk_of is not None else 0

    def prefetch_blocks(
        self,
        block_ids,
        category: str = "other",
        stream: str | None = None,
    ) -> int:
        """Prefetch through the pool: cached blocks count as already issued.

        A block resident in the pool needs no device prefetch (the demand
        read will be a hit), so it is reported as satisfied rather than
        making the prefetcher believe the device window is full.
        """
        block_ids = list(block_ids)
        if self.capacity:
            uncached = [b for b in block_ids if b not in self._entries]
        else:
            uncached = block_ids
        satisfied = len(block_ids) - len(uncached)
        if not uncached:
            return satisfied
        prefetch = getattr(self._device, "prefetch_blocks", None)
        if prefetch is None:
            return satisfied
        return satisfied + prefetch(uncached, category, stream=stream)

    def write_block_behind(
        self,
        block_id: int,
        data: bytes,
        category: str = "other",
        stream: str | None = None,
    ) -> None:
        """Write-behind through the pool.

        With caching on, the pool's write-back already defers the device
        write, which is a stronger form of write-behind; a capacity-0
        (pass-through) pool forwards to the device's pipeline.
        """
        if self.capacity == 0:
            behind = getattr(
                self._device, "write_block_behind", self._device.write_block
            )
            behind(block_id, data, category, stream=stream)
            return
        self.write_block(block_id, data, category, stream=stream)

    # -- observers ---------------------------------------------------------

    @property
    def cached_blocks(self) -> int:
        return len(self._entries)

    @property
    def dirty_blocks(self) -> int:
        return sum(1 for e in self._entries.values() if e.dirty)

    @property
    def pinned_blocks(self) -> int:
        return self._pinned

    def assert_releasable(self) -> None:
        """Raise unless the pool's memory can be safely taken away.

        A pinned block is in active use by some caller (the pin ledger is
        strict - see :meth:`pin`), so tearing the pool down under it would
        corrupt in-flight work.  Lease release calls this before closing
        the pool.
        """
        if self._pinned:
            raise DeviceError(
                f"buffer pool still has {self._pinned} pinned "
                f"block(s); release them before tearing the pool down"
            )

    def is_cached(self, block_id: int) -> bool:
        return block_id in self._entries

    # -- access ------------------------------------------------------------

    def read_block(
        self,
        block_id: int,
        category: str = "other",
        stream: str | None = None,
    ) -> bytes:
        if self.capacity == 0:
            return self._device.read_block(block_id, category, stream=stream)
        entry = self._entries.get(block_id)
        if entry is not None:
            self._entries.move_to_end(block_id)
            self.stats.record_cache_hit(category)
            return entry.data
        data = self._device.read_block(block_id, category, stream=stream)
        self.stats.record_cache_miss(category)
        self._insert(block_id, data, category, dirty=False, stream=stream)
        return data

    def read_blocks(
        self,
        block_ids,
        category: str = "other",
        stream: str | None = None,
    ) -> list[bytes]:
        """Vectored read: hits from the pool, misses fetched per extent."""
        block_ids = list(block_ids)
        if self.capacity == 0:
            return self._device.read_blocks(block_ids, category, stream=stream)
        found: dict[int, bytes] = {}
        missing: list[int] = []
        hits = 0
        for block_id in block_ids:
            if block_id in found:
                continue
            entry = self._entries.get(block_id)
            if entry is not None:
                self._entries.move_to_end(block_id)
                found[block_id] = entry.data
                hits += 1
            else:
                missing.append(block_id)
        if hits:
            self.stats.record_cache_hit(category, hits)
        if missing:
            fetched = self._device.read_blocks(missing, category, stream=stream)
            self.stats.record_cache_miss(category, len(missing))
            for block_id, data in zip(missing, fetched):
                found[block_id] = data
                self._insert(
                    block_id, data, category, dirty=False, stream=stream
                )
        return [found[block_id] for block_id in block_ids]

    def write_block(
        self,
        block_id: int,
        data: bytes,
        category: str = "other",
        stream: str | None = None,
    ) -> None:
        if self.capacity == 0:
            self._device.write_block(block_id, data, category, stream=stream)
            return
        if len(data) > self.block_size:
            raise DeviceError(
                f"write of {len(data)} bytes exceeds block size "
                f"{self.block_size}"
            )
        if not 0 <= block_id < self._device.allocated_blocks:
            raise DeviceError(f"write of unallocated block {block_id}")
        data = bytes(data)
        entry = self._entries.get(block_id)
        if entry is not None:
            entry.data = data
            entry.category = category
            entry.stream = stream
            entry.dirty = True
            self._entries.move_to_end(block_id)
            self.stats.record_cache_hit(category)
            return
        self.stats.record_cache_miss(category)
        if not self._insert(block_id, data, category, dirty=True, stream=stream):
            # Nothing evictable (everything pinned): write through, under
            # the caller's stream so sequentiality is judged correctly.
            self._device.write_block(block_id, data, category, stream=stream)

    def write_blocks(
        self,
        block_ids,
        datas,
        category: str = "other",
        stream: str | None = None,
    ) -> None:
        block_ids = list(block_ids)
        datas = list(datas)
        if len(block_ids) != len(datas):
            raise DeviceError(
                f"write_blocks got {len(block_ids)} ids but "
                f"{len(datas)} payloads"
            )
        if self.capacity == 0:
            self._device.write_blocks(block_ids, datas, category, stream=stream)
            return
        for block_id, data in zip(block_ids, datas):
            self.write_block(block_id, data, category, stream=stream)

    def free_blocks(self, block_ids) -> None:
        """Drop freed blocks from pool and device; dirty data is discarded
        unwritten (the blocks are dead - this is the write the pool saves).

        Freeing a still-pinned block raises
        :class:`~repro.errors.DeviceError` - the pin says someone still
        needs the block, so the free is a bug, not a cleanup.
        """
        block_ids = list(block_ids)
        for block_id in block_ids:
            entry = self._entries.get(block_id)
            if entry is not None and entry.pins:
                raise DeviceError(
                    f"free of pinned block {block_id} "
                    f"({entry.pins} pin(s) outstanding)"
                )
        holding = getattr(self._device, "holding", False)
        for block_id in block_ids:
            entry = self._entries.pop(block_id, None)
            if entry is not None and entry.dirty and holding:
                # The device never saw this dirty data (the free elides
                # the write); stash it so a recovery restart can still
                # restore the block's contents.
                self._device.stash_block(block_id, entry.data)
        self._device.free_blocks(block_ids)

    # -- pinning -----------------------------------------------------------

    def pin(self, block_id: int) -> bool:
        """Protect a cached block from eviction; False if not resident.

        Pinning a resident block always succeeds - even in a capacity-1
        pool, and even when it pins the last unpinned entry.  A fully
        pinned pool still makes progress: :meth:`_insert` reports the
        cache as unavailable and accesses fall back to the device (reads
        uncached, writes write-through).
        """
        entry = self._entries.get(block_id)
        if entry is None:
            return False
        if not entry.pins:
            self._pinned += 1
        entry.pins += 1
        return True

    def unpin(self, block_id: int) -> None:
        """Release one pin; raises on a block that is not pinned.

        Unpinning a block that is not resident (or resident but unpinned)
        raises :class:`~repro.errors.DeviceError`: a silently ignored
        unpin means some pin() call leaked, and leaked pins quietly shrink
        the evictable pool.
        """
        entry = self._entries.get(block_id)
        if entry is None:
            raise DeviceError(f"unpin of non-resident block {block_id}")
        if not entry.pins:
            raise DeviceError(f"unpin of unpinned block {block_id}")
        entry.pins -= 1
        if not entry.pins:
            self._pinned -= 1

    # -- write-back --------------------------------------------------------

    def flush(self) -> None:
        """Write every dirty block back to the device.

        Dirty blocks are flushed in block-id order, grouped per
        (category, stream) into vectored writes, so a sequentially
        written run flushes as sequential device I/O judged under the
        stream that originally wrote it.
        """
        dirty = sorted(
            (block_id, entry)
            for block_id, entry in self._entries.items()
            if entry.dirty
        )
        if not dirty:
            return
        if self._tracer is not None and not self._tracer.finished:
            with self._tracer.span("pool-flush", dirty=len(dirty)):
                self._write_back(dirty)
        else:
            self._write_back(dirty)

    def _write_back(self, dirty: list) -> None:
        index = 0
        while index < len(dirty):
            category = dirty[index][1].category
            stream = dirty[index][1].stream
            group_ids: list[int] = []
            group_data: list[bytes] = []
            while (
                index < len(dirty)
                and dirty[index][1].category == category
                and dirty[index][1].stream == stream
            ):
                block_id, entry = dirty[index]
                group_ids.append(block_id)
                group_data.append(entry.data)
                entry.dirty = False
                index += 1
            self._device.write_blocks(
                group_ids, group_data, category, stream=stream
            )

    def close(self) -> None:
        """Flush dirty blocks, drop the cache, release the reservation."""
        if self._closed:
            return
        self._closed = True
        self.flush()
        self._entries.clear()
        self._pinned = 0
        if self._reservation is not None:
            self._reservation.release()

    def __enter__(self) -> "BufferPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- internals ---------------------------------------------------------

    def _insert(
        self,
        block_id: int,
        data: bytes,
        category: str,
        dirty: bool,
        stream: str | None = None,
    ) -> bool:
        """Cache a block, evicting if full; False if nothing was evictable."""
        while len(self._entries) >= self.capacity:
            if not self._evict_one():
                return False
        entry = _Entry(data, category, dirty, stream=stream)
        self._entries[block_id] = entry
        return True

    def _evict_one(self) -> bool:
        for block_id, entry in self._entries.items():
            if entry.pins:
                continue
            del self._entries[block_id]
            self.stats.record_cache_eviction(entry.category)
            if entry.dirty:
                self._device.write_block(
                    block_id, entry.data, entry.category, stream=entry.stream
                )
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BufferPool(capacity={self.capacity}, "
            f"cached={len(self._entries)}, dirty={self.dirty_blocks}, "
            f"pinned={self._pinned})"
        )
