"""Internal-memory budget for the external-memory model.

The model gives an algorithm exactly ``M`` blocks of internal memory
(Section 4 of the paper: "M: number of internal memory blocks available").
A :class:`MemoryBudget` enforces that accounting: components *reserve* blocks
(the path stack takes two, the data and output-location stacks one each, per
Section 3.1), and the subtree sorter uses whatever remains.  Over-reserving
raises :class:`~repro.errors.MemoryBudgetExceeded` - it would mean the
algorithm is quietly using memory the model does not grant it.
"""

from __future__ import annotations

from ..errors import MemoryBudgetExceeded

#: Minimum memory for NEXSORT: 2 path-stack blocks, 1 data-stack block,
#: 1 output-location block, and 2 transfer buffers (run read/write).
MINIMUM_NEXSORT_BLOCKS = 6


class Reservation:
    """A claim on some number of internal-memory blocks.

    Use as a context manager or call :meth:`release` explicitly.  Releasing
    twice is a no-op.
    """

    def __init__(self, budget: "MemoryBudget", blocks: int, owner: str):
        self._budget = budget
        self.blocks = blocks
        self.owner = owner
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._budget._release(self)

    def __enter__(self) -> "Reservation":
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "released" if self._released else "held"
        return f"Reservation({self.blocks} blocks, {self.owner!r}, {state})"


class MemoryBudget:
    """Tracks how the ``M`` internal-memory blocks are divided up.

    Args:
        total_blocks: the model parameter ``M``.
    """

    def __init__(self, total_blocks: int):
        if total_blocks < 1:
            raise MemoryBudgetExceeded(
                f"memory budget must be positive, got {total_blocks}"
            )
        self.total_blocks = total_blocks
        self._reserved = 0
        self._owners: dict[str, int] = {}

    @property
    def reserved_blocks(self) -> int:
        return self._reserved

    @property
    def available_blocks(self) -> int:
        return self.total_blocks - self._reserved

    def reserve(self, blocks: int, owner: str = "anonymous") -> Reservation:
        """Claim ``blocks`` blocks; raises if they are not available."""
        if blocks < 0:
            raise MemoryBudgetExceeded(f"cannot reserve {blocks} blocks")
        if blocks > self.available_blocks:
            raise MemoryBudgetExceeded(
                f"{owner} requested {blocks} blocks but only "
                f"{self.available_blocks} of {self.total_blocks} are free "
                f"(held: {self._owners})"
            )
        self._reserved += blocks
        self._owners[owner] = self._owners.get(owner, 0) + blocks
        return Reservation(self, blocks, owner)

    def reserve_rest(self, owner: str = "anonymous") -> Reservation:
        """Claim every remaining free block."""
        return self.reserve(self.available_blocks, owner)

    def carve(self, blocks: int, owner: str = "lease") -> "CarvedBudget":
        """Split off a sub-budget of ``blocks`` blocks.

        The carved blocks are reserved here (so two leases can never
        claim the same physical block) and handed to the returned
        :class:`CarvedBudget`, which behaves exactly like a fresh
        ``MemoryBudget(blocks)`` toward its user.  Releasing the carved
        budget returns the blocks to this pool.
        """
        if blocks < 1:
            raise MemoryBudgetExceeded(
                f"cannot carve a {blocks}-block budget from {self!r}"
            )
        return CarvedBudget(self.reserve(blocks, owner))

    def _release(self, reservation: Reservation) -> None:
        self._reserved -= reservation.blocks
        remaining = self._owners.get(reservation.owner, 0) - reservation.blocks
        if remaining > 0:
            self._owners[reservation.owner] = remaining
        else:
            self._owners.pop(reservation.owner, None)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MemoryBudget(total={self.total_blocks}, "
            f"reserved={self._reserved}, owners={self._owners})"
        )


class CarvedBudget(MemoryBudget):
    """A per-job slice of a parent :class:`MemoryBudget`.

    Acts as an independent budget of ``reservation.blocks`` blocks; the
    backing blocks stay reserved in the parent until :meth:`close` (or
    the parent reservation's release) hands them back.  Closing twice is
    a no-op, mirroring :class:`Reservation`.
    """

    def __init__(self, reservation: Reservation):
        super().__init__(reservation.blocks)
        self._parent_reservation = reservation

    @property
    def closed(self) -> bool:
        return self._parent_reservation._released

    def close(self) -> None:
        """Return the carved blocks to the parent budget (idempotent)."""
        self._parent_reservation.release()
