"""A block device backed by a real file.

:class:`~repro.io.device.BlockDevice` keeps blocks in a dict - "external
memory" as an accounting fiction.  :class:`FileBackedBlockDevice` stores
blocks in an actual file with ``seek``/``read``/``write``, so experiments
can also be run against a filesystem when genuine out-of-core behaviour is
wanted (e.g. documents larger than RAM).  Accounting is identical; only
the storage substrate changes.
"""

from __future__ import annotations

import os

from ..errors import DeviceError
from .device import BlockDevice, DEFAULT_BLOCK_SIZE
from .stats import CostModel, classify_extent


class FileBackedBlockDevice(BlockDevice):
    """Blocks live in one backing file; block id = file offset / size.

    Use as a context manager, or call :meth:`close` when done.  The
    backing file is removed on close unless ``keep_file=True``.
    """

    def __init__(
        self,
        path: str,
        block_size: int = DEFAULT_BLOCK_SIZE,
        cost_model: CostModel | None = None,
        keep_file: bool = False,
    ):
        super().__init__(block_size=block_size, cost_model=cost_model)
        self._path = path
        self._keep_file = keep_file
        self._file = open(path, "w+b")
        self._written: set[int] = set()
        # The dict-based storage is not used.
        self._blocks = _RefuseDict()

    # -- storage overrides ---------------------------------------------------

    def read_block(
        self,
        block_id: int,
        category: str = "other",
        stream: str | None = None,
    ) -> bytes:
        if not 0 <= block_id < self._next_block:
            raise DeviceError(f"read of unallocated block {block_id}")
        if block_id not in self._written:
            raise DeviceError(f"read of never-written block {block_id}")
        key = stream or category
        self.stats.record_read(category, self._is_sequential(key, block_id))
        self._last_by_category[key] = block_id
        self._file.seek(block_id * self.block_size)
        return self._file.read(self.block_size)

    def write_block(
        self,
        block_id: int,
        data: bytes,
        category: str = "other",
        stream: str | None = None,
    ) -> None:
        if not 0 <= block_id < self._next_block:
            raise DeviceError(f"write of unallocated block {block_id}")
        if len(data) > self.block_size:
            raise DeviceError(
                f"write of {len(data)} bytes exceeds block size "
                f"{self.block_size}"
            )
        key = stream or category
        self.stats.record_write(category, self._is_sequential(key, block_id))
        self._last_by_category[key] = block_id
        self._file.seek(block_id * self.block_size)
        padded = data + b"\x00" * (self.block_size - len(data))
        self._file.write(padded)
        self._written.add(block_id)

    def read_blocks(
        self,
        block_ids,
        category: str = "other",
        stream: str | None = None,
    ) -> list[bytes]:
        """Vectored read: one ``seek`` + ``read`` per contiguous extent.

        Counters are identical to a :meth:`read_block` loop; only the
        number of OS calls changes.
        """
        block_ids = list(block_ids)
        if not block_ids:
            return []
        size = self.block_size
        key = stream or category
        for block_id in block_ids:
            if not 0 <= block_id < self._next_block:
                raise DeviceError(f"read of unallocated block {block_id}")
            if block_id not in self._written:
                raise DeviceError(
                    f"read of never-written block {block_id}"
                )
        sequential, last = classify_extent(
            block_ids, self._last_by_category.get(key)
        )
        out: list[bytes] = []
        for start, length in _contiguous_extents(block_ids):
            self._file.seek(start * size)
            chunk = self._file.read(length * size)
            for index in range(length):
                out.append(chunk[index * size : (index + 1) * size])
        self.stats.record_reads(category, len(block_ids), sequential)
        self._last_by_category[key] = last
        return out

    def write_blocks(
        self,
        block_ids,
        datas,
        category: str = "other",
        stream: str | None = None,
    ) -> None:
        """Vectored write: one ``seek`` + ``write`` per contiguous extent."""
        block_ids = list(block_ids)
        datas = list(datas)
        if len(block_ids) != len(datas):
            raise DeviceError(
                f"write_blocks got {len(block_ids)} ids but "
                f"{len(datas)} payloads"
            )
        if not block_ids:
            return
        size = self.block_size
        key = stream or category
        for block_id, data in zip(block_ids, datas):
            if not 0 <= block_id < self._next_block:
                raise DeviceError(f"write of unallocated block {block_id}")
            if len(data) > size:
                raise DeviceError(
                    f"write of {len(data)} bytes exceeds block size {size}"
                )
        sequential, last = classify_extent(
            block_ids, self._last_by_category.get(key)
        )
        cursor = 0
        for start, length in _contiguous_extents(block_ids):
            self._file.seek(start * size)
            padded = b"".join(
                data + b"\x00" * (size - len(data))
                for data in datas[cursor : cursor + length]
            )
            self._file.write(padded)
            cursor += length
        self._written.update(block_ids)
        self.stats.record_writes(category, len(block_ids), sequential)
        self._last_by_category[key] = last

    def free_blocks(self, block_ids) -> None:
        block_ids = list(block_ids)
        if self._holds:
            # The file still holds the bytes; a None marker is enough to
            # make the block readable again on restore.
            hold = self._holds[-1]
            for block_id in block_ids:
                if block_id in self._written and block_id not in hold:
                    hold[block_id] = None
        for block_id in block_ids:
            self._written.discard(block_id)
        self._forget_last_access(block_ids)

    def _restore_held(self, held) -> None:
        for block_id, data in held.items():
            if data is not None:
                # Dirty pool data stashed at free time: put the bytes in
                # the file (uncounted) before marking the block readable.
                self.store_block_raw(block_id, data)
            else:
                self._written.add(block_id)

    def store_block_raw(self, block_id: int, data: bytes) -> None:
        if not 0 <= block_id < self._next_block:
            raise DeviceError(f"raw store to unallocated block {block_id}")
        size = self.block_size
        if len(data) > size:
            raise DeviceError(
                f"raw store of {len(data)} bytes exceeds block size {size}"
            )
        self._file.seek(block_id * size)
        self._file.write(data + b"\x00" * (size - len(data)))
        self._written.add(block_id)

    @property
    def occupied_blocks(self) -> int:
        return len(self._written)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()
            if not self._keep_file and os.path.exists(self._path):
                os.unlink(self._path)

    def __enter__(self) -> "FileBackedBlockDevice":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _contiguous_extents(block_ids: list[int]):
    """Yield ``(start, length)`` for each run of consecutive ids."""
    start = block_ids[0]
    length = 1
    for block_id in block_ids[1:]:
        if block_id == start + length:
            length += 1
        else:
            yield start, length
            start = block_id
            length = 1
    yield start, length


class _RefuseDict(dict):
    """Guards against accidental use of the in-memory storage path."""

    def __setitem__(self, key, value):  # pragma: no cover - defensive
        raise DeviceError(
            "file-backed device must not use in-memory block storage"
        )
