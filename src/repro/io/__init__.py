"""External-memory substrate: simulated device, budget, stacks, runs."""

from .budget import (
    CarvedBudget,
    MemoryBudget,
    MINIMUM_NEXSORT_BLOCKS,
    Reservation,
)
from .bufferpool import BufferPool, DEFAULT_READAHEAD
from .device import BlockDevice, DEFAULT_BLOCK_SIZE
from .file_device import FileBackedBlockDevice
from .lease import ResourceLease, ResourcePool, TeeIOStats
from .parallel import (
    DiskTimeline,
    MergePrefetcher,
    PREFETCH_POLICIES,
    StripedDevice,
    supports_prefetch,
)
from .compress import (
    CODEC_NAMES,
    CompressionConfig,
    RunSegment,
    decode_document_wire,
    decode_records,
    encode_document_wire,
    encode_records,
)
from .runs import (
    CompressedRunReader,
    CompressedRunWriter,
    RunHandle,
    RunReader,
    RunStore,
    RunWriter,
)
from .stacks import ExternalStack
from .stats import CategoryCounters, CostModel, IOStats, StatsSnapshot

__all__ = [
    "BlockDevice",
    "BufferPool",
    "CarvedBudget",
    "DEFAULT_READAHEAD",
    "CategoryCounters",
    "CostModel",
    "DEFAULT_BLOCK_SIZE",
    "DiskTimeline",
    "ExternalStack",
    "FileBackedBlockDevice",
    "IOStats",
    "MemoryBudget",
    "MINIMUM_NEXSORT_BLOCKS",
    "MergePrefetcher",
    "PREFETCH_POLICIES",
    "Reservation",
    "ResourceLease",
    "ResourcePool",
    "TeeIOStats",
    "CODEC_NAMES",
    "CompressedRunReader",
    "CompressedRunWriter",
    "CompressionConfig",
    "RunHandle",
    "RunReader",
    "RunSegment",
    "RunStore",
    "RunWriter",
    "decode_document_wire",
    "decode_records",
    "encode_document_wire",
    "encode_records",
    "StatsSnapshot",
    "StripedDevice",
    "supports_prefetch",
]
