"""Sorted runs on the block device.

A *sorted run* is the on-disk unit NEXSORT produces for every collapsed
subtree (Figure 3: "tree of sorted runs") and the unit external merge sort
produces per formation/merge pass.  A run is a sequential stream of
length-framed records packed into whole blocks; records may span block
boundaries because runs are only ever read sequentially.

Reading a run from a *mid-stream offset* - which the output phase does when
it returns from a nested run (Figure 4, Lines 15-16) - re-reads the block
containing that offset.  This is precisely the access pattern Lemma 4.12
counts: a run block is read ``1 + p(b)`` times, where ``p(b)`` is the number
of run pointers found on it.

Writers and readers each use a single block of buffer memory, matching the
transfer-buffer assumption of the I/O model.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, Iterator

from ..errors import RunCodecError, RunError
from .compress import (
    CompressionConfig,
    RunSegment,
    decode_records,
    encode_records,
)
from .device import BlockDevice

_LEN = struct.Struct("<I")


@dataclass(frozen=True)
class RunHandle:
    """Identifies one run on the device.

    Attributes:
        run_id: unique id (the RunStore assigns these).
        block_ids: device blocks holding the stream, in order.  For a
            compressed run these hold segment blobs, not the framed
            stream itself.
        stream_bytes: length of the *logical* framed stream (framing
            included) - identical whether or not the run is compressed,
            so offsets, ``tell()`` and resume points mean the same thing
            everywhere.
        payload_bytes: total record payload bytes.
        record_count: number of records in the run.
        codec: run-compression codec name, or None for a plain run.
        segments: per-segment geometry of a compressed run
            (:class:`~repro.io.compress.RunSegment`); empty when plain.
            Carried on the handle - not in store-side maps - so recovery
            paths that retain handles across a :meth:`RunStore.free` can
            still address every segment.
    """

    run_id: int
    block_ids: tuple[int, ...]
    stream_bytes: int
    payload_bytes: int
    record_count: int
    codec: str | None = None
    segments: tuple[RunSegment, ...] = ()

    @property
    def block_count(self) -> int:
        return len(self.block_ids)

    def physical_index_for(self, offset: int, block_size: int) -> int:
        """Index into ``block_ids`` of the block serving ``offset``.

        Plain runs map logical offsets to blocks linearly; compressed
        runs map them to the first block of the covering segment (the
        whole segment is read to serve any offset inside it).
        """
        if not self.block_ids:
            return 0
        if not self.segments:
            return min(offset // block_size, len(self.block_ids) - 1)
        for segment in self.segments:
            if offset < segment.logical_end:
                return segment.block_start
        return self.segments[-1].block_start


class RunStore:
    """Creates, registers, and opens runs on one device.

    A :class:`~repro.io.bufferpool.BufferPool` may be attached for the
    duration of an algorithm (:meth:`attach_pool` / :meth:`detach_pool`):
    while attached, every run read and write is routed through the pool,
    and readers default to the pool's readahead.  With no pool attached
    (the default) all I/O goes straight to the device, exactly as before.
    """

    def __init__(self, device: BlockDevice):
        self.device = device
        self._pool = None
        self._runs: dict[int, RunHandle] = {}
        self._next_id = 0
        # Run compression (ISSUE 10): when set, writers whose category is
        # in ``compression.categories`` produce compressed runs.  Readers
        # dispatch on the handle's codec, so mixed stores (compressed
        # intermediates, plain output) just work.
        self.compression: CompressionConfig | None = None
        # Columnar-kernel key sidecars: run_id -> the normalized key bytes
        # of the run's records, in record order.  Host-side acceleration
        # only - sidecars never touch the simulated device, they just let
        # later merge passes skip re-deriving keys the producing pass
        # already had in hand.  Dropped when the run is freed.
        self.key_sidecars: dict[int, list] = {}

    @property
    def pool(self):
        """The attached :class:`BufferPool`, or None."""
        return self._pool

    @property
    def io_target(self):
        """Where run I/O goes: the attached pool, else the raw device."""
        return self._pool if self._pool is not None else self.device

    def attach_pool(self, pool) -> None:
        """Route run I/O through ``pool`` until :meth:`detach_pool`."""
        if self._pool is not None:
            raise RunError("a buffer pool is already attached")
        self._pool = pool

    def detach_pool(self) -> None:
        """Flush the attached pool and route I/O to the device again."""
        if self._pool is None:
            return
        pool = self._pool
        self._pool = None
        pool.close()

    def create_writer(self, category: str = "run_write") -> "RunWriter":
        config = self.compression
        if config is not None and category in config.categories:
            return CompressedRunWriter(self, category, config)
        return RunWriter(self, category)

    def get(self, run_id: int) -> RunHandle:
        try:
            return self._runs[run_id]
        except KeyError:
            raise RunError(f"unknown run id {run_id}") from None

    def open_reader(
        self,
        run: RunHandle | int,
        offset: int = 0,
        category: str = "run_read",
        readahead: int | None = None,
        stream: str | None = None,
    ) -> "RunReader":
        handle = self.get(run) if isinstance(run, int) else run
        if handle.codec is not None:
            return CompressedRunReader(
                self.io_target,
                handle,
                self.device.stats,
                offset=offset,
                category=category,
                stream=stream,
            )
        if readahead is None:
            readahead = self._pool.readahead if self._pool else 0
        return RunReader(
            self.io_target,
            handle,
            offset,
            category,
            readahead=readahead,
            stream=stream,
        )

    def free(self, run: RunHandle | int) -> None:
        """Release a consumed run's blocks (bookkeeping, no counted I/O)."""
        handle = self.get(run) if isinstance(run, int) else run
        self.io_target.free_blocks(handle.block_ids)
        self._runs.pop(handle.run_id, None)
        self.key_sidecars.pop(handle.run_id, None)

    def total_run_blocks(self) -> int:
        """Blocks held by all live runs (used to check Lemma 4.8)."""
        return sum(h.block_count for h in self._runs.values())

    def live_run_ids(self) -> set[int]:
        """Ids of all currently registered runs.

        The recovery layer snapshots this before a restartable unit runs
        so that, on restart, runs registered by the failed attempt can be
        found and freed.
        """
        return set(self._runs)

    def _register(
        self,
        block_ids: list[int],
        stream_bytes: int,
        payload_bytes: int,
        record_count: int,
        codec: str | None = None,
        segments: tuple[RunSegment, ...] = (),
    ) -> RunHandle:
        run_id = self._next_id
        self._next_id += 1
        handle = RunHandle(
            run_id=run_id,
            block_ids=tuple(block_ids),
            stream_bytes=stream_bytes,
            payload_bytes=payload_bytes,
            record_count=record_count,
            codec=codec,
            segments=segments,
        )
        self._runs[run_id] = handle
        return handle


class RunWriter:
    """Appends records to a new run using one block of buffer memory."""

    def __init__(self, store: RunStore, category: str):
        self._store = store
        self._device = store.io_target
        self._category = category
        self._buffer = bytearray()
        self._block_ids: list[int] = []
        self._stream_bytes = 0
        self._payload_bytes = 0
        self._record_count = 0
        self._finished = False

    def write_record(self, payload: bytes) -> None:
        self._append((payload,))

    def write_records(self, payloads: Iterable[bytes]) -> None:
        """Append many records with one framing pass.

        Byte-identical to a loop of :meth:`write_record` calls - both
        frame through :meth:`_append`, so the framed stream, the block
        fill points, and the flush order are exactly the same.  Only the
        Python-side overhead (per-call dispatch) is batched away.
        """
        payloads = (
            payloads if isinstance(payloads, list) else list(payloads)
        )
        if self._finished:
            raise RunError("write to a finished run")
        if not payloads:
            return
        self._append(payloads)

    def _append(self, payloads) -> None:
        """The one framing path: length-prefix, buffer, flush full blocks."""
        if self._finished:
            raise RunError("write to a finished run")
        pack = _LEN.pack
        parts: list[bytes] = []
        payload_bytes = 0
        count = 0
        for payload in payloads:
            parts.append(pack(len(payload)))
            parts.append(payload)
            payload_bytes += len(payload)
            count += 1
        framed = b"".join(parts)
        self._buffer += framed
        self._stream_bytes += len(framed)
        self._payload_bytes += payload_bytes
        self._record_count += count
        size = self._device.block_size
        buffer = self._buffer
        if len(buffer) >= size:
            full = len(buffer) - (len(buffer) % size)
            for start in range(0, full, size):
                self._flush_block(bytes(buffer[start : start + size]))
            del buffer[:full]

    def finish(self) -> RunHandle:
        """Flush the tail block and register the run."""
        if self._finished:
            raise RunError("run already finished")
        self._finished = True
        if self._buffer:
            self._flush_block(bytes(self._buffer))
            self._buffer.clear()
        return self._store._register(
            self._block_ids,
            self._stream_bytes,
            self._payload_bytes,
            self._record_count,
        )

    def abandon(self) -> None:
        """Discard a partially written run (fault-recovery cleanup).

        Frees the blocks already flushed and marks the writer finished
        without registering a run.  Called when a device fault interrupts
        the unit of work producing this run; the restarted attempt starts
        a fresh writer.
        """
        if self._finished:
            raise RunError("run already finished")
        self._finished = True
        self._buffer.clear()
        if self._block_ids:
            self._device.free_blocks(self._block_ids)
        self._block_ids = []

    @property
    def stream_bytes(self) -> int:
        """Framed bytes written so far; ``tell()`` for the record stream."""
        return self._stream_bytes

    @property
    def record_count(self) -> int:
        return self._record_count

    def _flush_block(self, data: bytes) -> None:
        block_id = self._device.allocate(1, pool=self._category)
        # Write-behind: on a striped device the flush is queued (double
        # buffered) so run output overlaps with compute and reads; on a
        # serial device or through a caching pool this is the identically
        # accounted plain write.
        self._device.write_block_behind(block_id, data, self._category)
        self._block_ids.append(block_id)


class RunReader:
    """Sequential reader over a run, resumable at any record boundary.

    ``device`` may be a raw :class:`BlockDevice` or a
    :class:`~repro.io.bufferpool.BufferPool`.  With ``readahead > 0`` the
    reader fetches upcoming blocks in vectored extents of that many blocks;
    only use readahead through a pool - against a raw device the prefetched
    blocks have nowhere to live, so each would be charged again when the
    reader actually arrives at it.
    """

    def __init__(
        self,
        device: BlockDevice,
        handle: RunHandle,
        offset: int = 0,
        category: str = "run_read",
        readahead: int = 0,
        stream: str | None = None,
    ):
        if offset < 0 or offset > handle.stream_bytes:
            raise RunError(
                f"offset {offset} outside run of {handle.stream_bytes} bytes"
            )
        self._device = device
        self._handle = handle
        self._category = category
        self._stream = stream
        self._pos = offset
        self._block_index = -1
        self._block: bytes = b""
        # Readahead deeper than the run is meaningless: clamp it to the
        # run's block count so no extent can ever charge reads past
        # end-of-run, no matter how generous the pool's advisory depth is.
        self._readahead = max(0, min(readahead, handle.block_count))
        self._prefetched_until = 0

    @property
    def handle(self) -> RunHandle:
        return self._handle

    @property
    def block_index(self) -> int:
        """Run-relative index of the buffered block (-1 before any read).

        The merge prefetcher (:class:`~repro.io.parallel.MergePrefetcher`)
        uses this as each run's read frontier: ``block_index + 1`` is the
        next block this reader will demand.
        """
        return self._block_index

    def tell(self) -> int:
        """Framed-stream offset of the next record."""
        return self._pos

    @property
    def exhausted(self) -> bool:
        return self._pos >= self._handle.stream_bytes

    def read_record(self) -> bytes | None:
        """Return the next record payload, or None at end of run."""
        if self.exhausted:
            return None
        header = self._read_bytes(_LEN.size)
        (length,) = _LEN.unpack(header)
        return self._read_bytes(length)

    def __iter__(self) -> Iterator[bytes]:
        while True:
            record = self.read_record()
            if record is None:
                return
            yield record

    def read_available_records(self) -> list[bytes]:
        """Every record servable from the buffered block without new I/O.

        Returns the (possibly empty) list of records whose header and
        payload lie entirely inside the currently loaded block.  The next
        record - one that needs a block load, or the first record before
        any block is buffered - is *not* read; fetching it via
        :meth:`read_record` performs the load at exactly the moment a
        record-at-a-time reader would.  This is what keeps batched readers
        bit-identical in I/O order: draining a loaded block is free in
        the device model, exactly as the scalar fast path of
        :meth:`_read_bytes` is.
        """
        out: list[bytes] = []
        end = self._handle.stream_bytes
        if self._pos >= end or self._block_index < 0:
            return out
        size = self._device.block_size
        block = self._block
        base = self._block_index * size
        intra = self._pos - base
        if intra < 0 or intra >= size:
            return out
        unpack_from = _LEN.unpack_from
        header = _LEN.size
        limit = min(size, end - base)
        while intra + header <= limit:
            (length,) = unpack_from(block, intra)
            record_end = intra + header + length
            if record_end > limit:
                break
            out.append(block[intra + header : record_end])
            intra = record_end
        self._pos = base + intra
        return out

    def _read_bytes(self, count: int) -> bytes:
        if self._pos + count > self._handle.stream_bytes:
            raise RunError(
                f"truncated run {self._handle.run_id}: wanted {count} bytes "
                f"at offset {self._pos}"
            )
        size = self._device.block_size
        index, intra = divmod(self._pos, size)
        if index == self._block_index and intra + count <= size:
            # Fast path: the whole read lies inside the current block.
            self._pos += count
            return self._block[intra : intra + count]
        parts = []
        remaining = count
        while remaining:
            index, intra = divmod(self._pos, size)
            if index != self._block_index:
                self._load_block(index)
            take = min(remaining, size - intra)
            parts.append(self._block[intra : intra + take])
            self._pos += take
            remaining -= take
        return b"".join(parts)

    def _load_block(self, index: int) -> None:
        block_ids = self._handle.block_ids
        if self._readahead and index < self._prefetched_until:
            is_cached = getattr(self._device, "is_cached", None)
            if is_cached is not None and not is_cached(block_ids[index]):
                # A prefetched block was evicted before we reached it:
                # the pool is too contended for readahead to pay off, so
                # stop prefetching - otherwise every evicted block would
                # be charged twice (once fetched ahead, once on arrival).
                self._readahead = 0
        if self._readahead and index >= self._prefetched_until:
            # Clamp the extent at end-of-run: the final extent covers
            # exactly the remaining blocks, never charging reads past it.
            end = min(index + self._readahead, len(block_ids))
            extent = self._device.read_blocks(
                block_ids[index:end], self._category, stream=self._stream
            )
            self._prefetched_until = end
            self._block = extent[0]
        else:
            self._block = self._device.read_block(
                block_ids[index], self._category, stream=self._stream
            )
        self._block_index = index


class CompressedRunWriter:
    """Appends records to a new *compressed* run (ISSUE 10).

    Drop-in for :class:`RunWriter`: same interface, same logical stream
    semantics (``stream_bytes`` counts framed bytes as if uncompressed).
    Records buffer until roughly ``segment_blocks`` raw blocks are
    pending, then the whole group is container-split, encoded, and
    written as one vectored extent of ``ceil(blob/block_size)`` blocks.
    Compression CPU is charged per raw byte via
    :meth:`~repro.io.stats.IOStats.record_compression`.
    """

    def __init__(self, store: RunStore, category: str, config):
        self._store = store
        self._device = store.io_target
        self._stats = store.device.stats
        self._category = category
        self._config = config
        self._pending: list[bytes] = []
        self._pending_bytes = 0  # framed bytes of pending records
        self._block_ids: list[int] = []
        self._segments: list[RunSegment] = []
        self._logical_written = 0
        self._stream_bytes = 0
        self._payload_bytes = 0
        self._record_count = 0
        self._finished = False
        self._segment_bytes = (
            config.segment_blocks * store.device.block_size
        )

    def write_record(self, payload: bytes) -> None:
        self._append((payload,))

    def write_records(self, payloads: Iterable[bytes]) -> None:
        payloads = (
            payloads if isinstance(payloads, list) else list(payloads)
        )
        if self._finished:
            raise RunError("write to a finished run")
        if not payloads:
            return
        self._append(payloads)

    def _append(self, payloads) -> None:
        if self._finished:
            raise RunError("write to a finished run")
        header = _LEN.size
        for payload in payloads:
            self._pending.append(payload)
            self._pending_bytes += header + len(payload)
            self._stream_bytes += header + len(payload)
            self._payload_bytes += len(payload)
            self._record_count += 1
        while self._pending_bytes >= self._segment_bytes:
            self._close_segment()

    def _close_segment(self, final: bool = False) -> None:
        """Encode a prefix of pending records into one stored segment."""
        header = _LEN.size
        take_bytes = 0
        count = 0
        for payload in self._pending:
            take_bytes += header + len(payload)
            count += 1
            if take_bytes >= self._segment_bytes:
                break
        if not final and take_bytes < self._segment_bytes:
            return
        records = self._pending[:count]
        del self._pending[:count]
        self._pending_bytes -= take_bytes

        blob = encode_records(
            records, self._config.embedded_keys, self._config.codec
        )
        self._stats.record_compression(take_bytes, len(blob))
        size = self._store.device.block_size
        block_count = -(-len(blob) // size)
        padded = blob + b"\x00" * (block_count * size - len(blob))
        first = self._device.allocate(block_count, pool=self._category)
        block_ids = list(range(first, first + block_count))
        self._device.write_blocks(
            block_ids,
            [padded[i * size : (i + 1) * size] for i in range(block_count)],
            self._category,
        )
        self._segments.append(
            RunSegment(
                logical_start=self._logical_written,
                logical_bytes=take_bytes,
                block_start=len(self._block_ids),
                block_count=block_count,
                stored_bytes=len(blob),
                record_count=len(records),
            )
        )
        self._block_ids.extend(block_ids)
        self._logical_written += take_bytes

    def finish(self) -> RunHandle:
        """Flush the tail segment and register the run."""
        if self._finished:
            raise RunError("run already finished")
        self._finished = True
        if self._pending:
            self._close_segment(final=True)
        return self._store._register(
            self._block_ids,
            self._stream_bytes,
            self._payload_bytes,
            self._record_count,
            codec=self._config.codec,
            segments=tuple(self._segments),
        )

    def abandon(self) -> None:
        """Discard a partially written run (fault-recovery cleanup)."""
        if self._finished:
            raise RunError("run already finished")
        self._finished = True
        self._pending.clear()
        self._pending_bytes = 0
        if self._block_ids:
            self._device.free_blocks(self._block_ids)
        self._block_ids = []

    @property
    def stream_bytes(self) -> int:
        """Logical framed bytes appended so far (pending included)."""
        return self._stream_bytes

    @property
    def record_count(self) -> int:
        return self._record_count


class CompressedRunReader:
    """Sequential reader over a compressed run, resumable at any record.

    Decodes one whole segment at a time: any logical offset binary-maps
    to its covering segment, whose blocks are read in one vectored
    extent (honest, `stream`-aware accounting) and decoded into the
    framed byte range [``logical_start``, ``logical_end``).  Positions,
    ``tell()`` and ``exhausted`` all speak logical framed-stream
    offsets, exactly like :class:`RunReader`, so resume points are
    interchangeable between plain and compressed runs.

    Corrupt or truncated segments surface as
    :class:`~repro.errors.RunCodecError` naming the run id and the first
    physical block of the bad segment.
    """

    def __init__(
        self,
        device: BlockDevice,
        handle: RunHandle,
        stats,
        offset: int = 0,
        category: str = "run_read",
        stream: str | None = None,
    ):
        if offset < 0 or offset > handle.stream_bytes:
            raise RunError(
                f"offset {offset} outside run of {handle.stream_bytes} bytes"
            )
        self._device = device
        self._handle = handle
        self._stats = stats
        self._category = category
        self._stream = stream
        self._pos = offset
        self._segment_index = -1
        self._buffer = b""
        self._buffer_start = 0
        self._block_index = -1

    @property
    def handle(self) -> RunHandle:
        return self._handle

    @property
    def block_index(self) -> int:
        """Physical read frontier (last block of the decoded segment).

        Keeps the merge prefetcher's contract: ``block_index + 1`` is
        the next *device block* this reader will demand - the first
        block of the following segment.
        """
        return self._block_index

    def tell(self) -> int:
        """Logical framed-stream offset of the next record."""
        return self._pos

    @property
    def exhausted(self) -> bool:
        return self._pos >= self._handle.stream_bytes

    def read_record(self) -> bytes | None:
        """Return the next record payload, or None at end of run."""
        if self.exhausted:
            return None
        header = self._read_bytes(_LEN.size)
        (length,) = _LEN.unpack(header)
        return self._read_bytes(length)

    def __iter__(self) -> Iterator[bytes]:
        while True:
            record = self.read_record()
            if record is None:
                return
            yield record

    def read_available_records(self) -> list[bytes]:
        """Every record servable from the decoded segment without new I/O.

        The batch-drain contract of :meth:`RunReader.read_available_records`
        at segment granularity: records never span segments, so the
        decoded buffer always ends on a record boundary.
        """
        out: list[bytes] = []
        if self.exhausted or self._segment_index < 0:
            return out
        buffer = self._buffer
        intra = self._pos - self._buffer_start
        if intra < 0 or intra >= len(buffer):
            return out
        unpack_from = _LEN.unpack_from
        header = _LEN.size
        limit = len(buffer)
        while intra + header <= limit:
            (length,) = unpack_from(buffer, intra)
            record_end = intra + header + length
            if record_end > limit:
                break
            out.append(buffer[intra + header : record_end])
            intra = record_end
        self._pos = self._buffer_start + intra
        return out

    def _read_bytes(self, count: int) -> bytes:
        if self._pos + count > self._handle.stream_bytes:
            raise RunError(
                f"truncated run {self._handle.run_id}: wanted {count} bytes "
                f"at offset {self._pos}"
            )
        buffer = self._buffer
        intra = self._pos - self._buffer_start
        if (
            self._segment_index >= 0
            and 0 <= intra
            and intra + count <= len(buffer)
        ):
            # Fast path: the whole read lies inside the decoded segment.
            self._pos += count
            return buffer[intra : intra + count]
        parts = []
        remaining = count
        while remaining:
            intra = self._pos - self._buffer_start
            if (
                self._segment_index < 0
                or intra < 0
                or intra >= len(self._buffer)
            ):
                self._load_segment(self._segment_at(self._pos))
                intra = self._pos - self._buffer_start
            take = min(remaining, len(self._buffer) - intra)
            parts.append(self._buffer[intra : intra + take])
            self._pos += take
            remaining -= take
        return b"".join(parts)

    def _segment_at(self, pos: int) -> int:
        segments = self._handle.segments
        lo, hi = 0, len(segments) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if segments[mid].logical_end <= pos:
                lo = mid + 1
            else:
                hi = mid
        if lo >= len(segments) or not (
            segments[lo].logical_start <= pos < segments[lo].logical_end
        ):
            raise RunError(
                f"offset {pos} outside the segments of run "
                f"{self._handle.run_id}"
            )
        return lo

    def _load_segment(self, index: int) -> None:
        segment = self._handle.segments[index]
        block_ids = self._handle.block_ids[
            segment.block_start : segment.block_start + segment.block_count
        ]
        blocks = self._device.read_blocks(
            block_ids, self._category, stream=self._stream
        )
        blob = b"".join(blocks)[: segment.stored_bytes]
        try:
            records = decode_records(blob)
        except RunCodecError as exc:
            raise RunCodecError(
                f"run {self._handle.run_id}: corrupt compressed segment "
                f"at block {block_ids[0]}: {exc}",
                run_id=self._handle.run_id,
                block=block_ids[0],
            ) from exc
        pack = _LEN.pack
        framed = b"".join(
            pack(len(record)) + record for record in records
        )
        if len(framed) != segment.logical_bytes:
            raise RunCodecError(
                f"run {self._handle.run_id}: segment at block "
                f"{block_ids[0]} decoded to {len(framed)} framed bytes, "
                f"expected {segment.logical_bytes}",
                run_id=self._handle.run_id,
                block=block_ids[0],
            )
        self._stats.record_decompression(
            segment.stored_bytes, segment.logical_bytes
        )
        self._buffer = framed
        self._buffer_start = segment.logical_start
        self._segment_index = index
        self._block_index = segment.block_start + segment.block_count - 1
