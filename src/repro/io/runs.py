"""Sorted runs on the block device.

A *sorted run* is the on-disk unit NEXSORT produces for every collapsed
subtree (Figure 3: "tree of sorted runs") and the unit external merge sort
produces per formation/merge pass.  A run is a sequential stream of
length-framed records packed into whole blocks; records may span block
boundaries because runs are only ever read sequentially.

Reading a run from a *mid-stream offset* - which the output phase does when
it returns from a nested run (Figure 4, Lines 15-16) - re-reads the block
containing that offset.  This is precisely the access pattern Lemma 4.12
counts: a run block is read ``1 + p(b)`` times, where ``p(b)`` is the number
of run pointers found on it.

Writers and readers each use a single block of buffer memory, matching the
transfer-buffer assumption of the I/O model.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, Iterator

from ..errors import RunError
from .device import BlockDevice

_LEN = struct.Struct("<I")


@dataclass(frozen=True)
class RunHandle:
    """Identifies one run on the device.

    Attributes:
        run_id: unique id (the RunStore assigns these).
        block_ids: device blocks holding the framed stream, in order.
        stream_bytes: length of the framed stream (framing included).
        payload_bytes: total record payload bytes.
        record_count: number of records in the run.
    """

    run_id: int
    block_ids: tuple[int, ...]
    stream_bytes: int
    payload_bytes: int
    record_count: int

    @property
    def block_count(self) -> int:
        return len(self.block_ids)


class RunStore:
    """Creates, registers, and opens runs on one device.

    A :class:`~repro.io.bufferpool.BufferPool` may be attached for the
    duration of an algorithm (:meth:`attach_pool` / :meth:`detach_pool`):
    while attached, every run read and write is routed through the pool,
    and readers default to the pool's readahead.  With no pool attached
    (the default) all I/O goes straight to the device, exactly as before.
    """

    def __init__(self, device: BlockDevice):
        self.device = device
        self._pool = None
        self._runs: dict[int, RunHandle] = {}
        self._next_id = 0
        # Columnar-kernel key sidecars: run_id -> the normalized key bytes
        # of the run's records, in record order.  Host-side acceleration
        # only - sidecars never touch the simulated device, they just let
        # later merge passes skip re-deriving keys the producing pass
        # already had in hand.  Dropped when the run is freed.
        self.key_sidecars: dict[int, list] = {}

    @property
    def pool(self):
        """The attached :class:`BufferPool`, or None."""
        return self._pool

    @property
    def io_target(self):
        """Where run I/O goes: the attached pool, else the raw device."""
        return self._pool if self._pool is not None else self.device

    def attach_pool(self, pool) -> None:
        """Route run I/O through ``pool`` until :meth:`detach_pool`."""
        if self._pool is not None:
            raise RunError("a buffer pool is already attached")
        self._pool = pool

    def detach_pool(self) -> None:
        """Flush the attached pool and route I/O to the device again."""
        if self._pool is None:
            return
        pool = self._pool
        self._pool = None
        pool.close()

    def create_writer(self, category: str = "run_write") -> "RunWriter":
        return RunWriter(self, category)

    def get(self, run_id: int) -> RunHandle:
        try:
            return self._runs[run_id]
        except KeyError:
            raise RunError(f"unknown run id {run_id}") from None

    def open_reader(
        self,
        run: RunHandle | int,
        offset: int = 0,
        category: str = "run_read",
        readahead: int | None = None,
        stream: str | None = None,
    ) -> "RunReader":
        handle = self.get(run) if isinstance(run, int) else run
        if readahead is None:
            readahead = self._pool.readahead if self._pool else 0
        return RunReader(
            self.io_target,
            handle,
            offset,
            category,
            readahead=readahead,
            stream=stream,
        )

    def free(self, run: RunHandle | int) -> None:
        """Release a consumed run's blocks (bookkeeping, no counted I/O)."""
        handle = self.get(run) if isinstance(run, int) else run
        self.io_target.free_blocks(handle.block_ids)
        self._runs.pop(handle.run_id, None)
        self.key_sidecars.pop(handle.run_id, None)

    def total_run_blocks(self) -> int:
        """Blocks held by all live runs (used to check Lemma 4.8)."""
        return sum(h.block_count for h in self._runs.values())

    def live_run_ids(self) -> set[int]:
        """Ids of all currently registered runs.

        The recovery layer snapshots this before a restartable unit runs
        so that, on restart, runs registered by the failed attempt can be
        found and freed.
        """
        return set(self._runs)

    def _register(
        self,
        block_ids: list[int],
        stream_bytes: int,
        payload_bytes: int,
        record_count: int,
    ) -> RunHandle:
        run_id = self._next_id
        self._next_id += 1
        handle = RunHandle(
            run_id=run_id,
            block_ids=tuple(block_ids),
            stream_bytes=stream_bytes,
            payload_bytes=payload_bytes,
            record_count=record_count,
        )
        self._runs[run_id] = handle
        return handle


class RunWriter:
    """Appends records to a new run using one block of buffer memory."""

    def __init__(self, store: RunStore, category: str):
        self._store = store
        self._device = store.io_target
        self._category = category
        self._buffer = bytearray()
        self._block_ids: list[int] = []
        self._stream_bytes = 0
        self._payload_bytes = 0
        self._record_count = 0
        self._finished = False

    def write_record(self, payload: bytes) -> None:
        if self._finished:
            raise RunError("write to a finished run")
        self._buffer += _LEN.pack(len(payload))
        self._buffer += payload
        self._stream_bytes += _LEN.size + len(payload)
        self._payload_bytes += len(payload)
        self._record_count += 1
        size = self._device.block_size
        while len(self._buffer) >= size:
            self._flush_block(self._buffer[:size])
            del self._buffer[:size]

    def write_records(self, payloads: Iterable[bytes]) -> None:
        """Append many records with one framing pass.

        Device-sequence-identical to a loop of :meth:`write_record` calls:
        the framed stream is byte-for-byte the same, so blocks fill - and
        flush, in order - at exactly the same stream offsets.  Only the
        Python-side overhead (per-record struct packing and buffer
        growth) is batched away.
        """
        if self._finished:
            raise RunError("write to a finished run")
        payloads = (
            payloads if isinstance(payloads, list) else list(payloads)
        )
        if not payloads:
            return
        pack = _LEN.pack
        parts: list[bytes] = []
        payload_bytes = 0
        for payload in payloads:
            parts.append(pack(len(payload)))
            parts.append(payload)
            payload_bytes += len(payload)
        framed = b"".join(parts)
        self._buffer += framed
        self._stream_bytes += len(framed)
        self._payload_bytes += payload_bytes
        self._record_count += len(payloads)
        size = self._device.block_size
        buffer = self._buffer
        if len(buffer) >= size:
            full = len(buffer) - (len(buffer) % size)
            for start in range(0, full, size):
                self._flush_block(bytes(buffer[start : start + size]))
            del buffer[:full]

    def finish(self) -> RunHandle:
        """Flush the tail block and register the run."""
        if self._finished:
            raise RunError("run already finished")
        self._finished = True
        if self._buffer:
            self._flush_block(bytes(self._buffer))
            self._buffer.clear()
        return self._store._register(
            self._block_ids,
            self._stream_bytes,
            self._payload_bytes,
            self._record_count,
        )

    def abandon(self) -> None:
        """Discard a partially written run (fault-recovery cleanup).

        Frees the blocks already flushed and marks the writer finished
        without registering a run.  Called when a device fault interrupts
        the unit of work producing this run; the restarted attempt starts
        a fresh writer.
        """
        if self._finished:
            raise RunError("run already finished")
        self._finished = True
        self._buffer.clear()
        if self._block_ids:
            self._device.free_blocks(self._block_ids)
        self._block_ids = []

    @property
    def stream_bytes(self) -> int:
        """Framed bytes written so far; ``tell()`` for the record stream."""
        return self._stream_bytes

    @property
    def record_count(self) -> int:
        return self._record_count

    def _flush_block(self, data: bytes) -> None:
        block_id = self._device.allocate(1, pool=self._category)
        # Write-behind: on a striped device the flush is queued (double
        # buffered) so run output overlaps with compute and reads; on a
        # serial device or through a caching pool this is the identically
        # accounted plain write.
        self._device.write_block_behind(block_id, data, self._category)
        self._block_ids.append(block_id)


class RunReader:
    """Sequential reader over a run, resumable at any record boundary.

    ``device`` may be a raw :class:`BlockDevice` or a
    :class:`~repro.io.bufferpool.BufferPool`.  With ``readahead > 0`` the
    reader fetches upcoming blocks in vectored extents of that many blocks;
    only use readahead through a pool - against a raw device the prefetched
    blocks have nowhere to live, so each would be charged again when the
    reader actually arrives at it.
    """

    def __init__(
        self,
        device: BlockDevice,
        handle: RunHandle,
        offset: int = 0,
        category: str = "run_read",
        readahead: int = 0,
        stream: str | None = None,
    ):
        if offset < 0 or offset > handle.stream_bytes:
            raise RunError(
                f"offset {offset} outside run of {handle.stream_bytes} bytes"
            )
        self._device = device
        self._handle = handle
        self._category = category
        self._stream = stream
        self._pos = offset
        self._block_index = -1
        self._block: bytes = b""
        # Readahead deeper than the run is meaningless: clamp it to the
        # run's block count so no extent can ever charge reads past
        # end-of-run, no matter how generous the pool's advisory depth is.
        self._readahead = max(0, min(readahead, handle.block_count))
        self._prefetched_until = 0

    @property
    def handle(self) -> RunHandle:
        return self._handle

    @property
    def block_index(self) -> int:
        """Run-relative index of the buffered block (-1 before any read).

        The merge prefetcher (:class:`~repro.io.parallel.MergePrefetcher`)
        uses this as each run's read frontier: ``block_index + 1`` is the
        next block this reader will demand.
        """
        return self._block_index

    def tell(self) -> int:
        """Framed-stream offset of the next record."""
        return self._pos

    @property
    def exhausted(self) -> bool:
        return self._pos >= self._handle.stream_bytes

    def read_record(self) -> bytes | None:
        """Return the next record payload, or None at end of run."""
        if self.exhausted:
            return None
        header = self._read_bytes(_LEN.size)
        (length,) = _LEN.unpack(header)
        return self._read_bytes(length)

    def __iter__(self) -> Iterator[bytes]:
        while True:
            record = self.read_record()
            if record is None:
                return
            yield record

    def read_available_records(self) -> list[bytes]:
        """Every record servable from the buffered block without new I/O.

        Returns the (possibly empty) list of records whose header and
        payload lie entirely inside the currently loaded block.  The next
        record - one that needs a block load, or the first record before
        any block is buffered - is *not* read; fetching it via
        :meth:`read_record` performs the load at exactly the moment a
        record-at-a-time reader would.  This is what keeps batched readers
        bit-identical in I/O order: draining a loaded block is free in
        the device model, exactly as the scalar fast path of
        :meth:`_read_bytes` is.
        """
        out: list[bytes] = []
        end = self._handle.stream_bytes
        if self._pos >= end or self._block_index < 0:
            return out
        size = self._device.block_size
        block = self._block
        base = self._block_index * size
        intra = self._pos - base
        if intra < 0 or intra >= size:
            return out
        unpack_from = _LEN.unpack_from
        header = _LEN.size
        limit = min(size, end - base)
        while intra + header <= limit:
            (length,) = unpack_from(block, intra)
            record_end = intra + header + length
            if record_end > limit:
                break
            out.append(block[intra + header : record_end])
            intra = record_end
        self._pos = base + intra
        return out

    def _read_bytes(self, count: int) -> bytes:
        if self._pos + count > self._handle.stream_bytes:
            raise RunError(
                f"truncated run {self._handle.run_id}: wanted {count} bytes "
                f"at offset {self._pos}"
            )
        size = self._device.block_size
        index, intra = divmod(self._pos, size)
        if index == self._block_index and intra + count <= size:
            # Fast path: the whole read lies inside the current block.
            self._pos += count
            return self._block[intra : intra + count]
        parts = []
        remaining = count
        while remaining:
            index, intra = divmod(self._pos, size)
            if index != self._block_index:
                self._load_block(index)
            take = min(remaining, size - intra)
            parts.append(self._block[intra : intra + take])
            self._pos += take
            remaining -= take
        return b"".join(parts)

    def _load_block(self, index: int) -> None:
        block_ids = self._handle.block_ids
        if self._readahead and index < self._prefetched_until:
            is_cached = getattr(self._device, "is_cached", None)
            if is_cached is not None and not is_cached(block_ids[index]):
                # A prefetched block was evicted before we reached it:
                # the pool is too contended for readahead to pay off, so
                # stop prefetching - otherwise every evicted block would
                # be charged twice (once fetched ahead, once on arrival).
                self._readahead = 0
        if self._readahead and index >= self._prefetched_until:
            # Clamp the extent at end-of-run: the final extent covers
            # exactly the remaining blocks, never charging reads past it.
            end = min(index + self._readahead, len(block_ids))
            extent = self._device.read_blocks(
                block_ids[index:end], self._category, stream=self._stream
            )
            self._prefetched_until = end
            self._block = extent[0]
        else:
            self._block = self._device.read_block(
                block_ids[index], self._category, stream=self._stream
            )
        self._block_index = index
