"""NEXSORT: Sorting XML in External Memory - a full reproduction.

Reproduces Silberstein & Yang, "NEXSORT: Sorting XML in External Memory"
(ICDE 2004): the NEXSORT algorithm with all of its Section 3.2 extensions,
the external merge sort and internal recursive sort baselines, the
structural merge application, the I/O lower bound and cost analysis of
Section 4, and the full experimental evaluation of Section 5 - all on a
simulated block device with exact I/O accounting.

Quickstart::

    from repro import (
        BlockDevice, RunStore, Document, SortSpec, nexsort
    )

    device = BlockDevice(block_size=4096)
    store = RunStore(device)
    doc = Document.from_string(store, "<company>...</company>")
    spec = SortSpec.by_attribute("name", employee="ID")
    sorted_doc, report = nexsort(doc, spec, memory_blocks=16)
    print(sorted_doc.to_string(indent="  "))
    print(report.total_ios, report.simulated_seconds)
"""

from .baselines import (
    ExternalMergeSorter,
    MergeSortReport,
    external_merge_sort,
    is_fully_sorted,
    key_path_table,
    sort_element,
)
from .core import (
    NexSorter,
    NexsortOptions,
    NexsortReport,
    nexsort,
)
from .errors import (
    CodecError,
    DeviceError,
    DeviceFault,
    FaultPlanError,
    MemoryBudgetExceeded,
    MergeError,
    ReproError,
    RunError,
    SortRecoveryError,
    SortSpecError,
    StackError,
    XMLSyntaxError,
)
from .faults import (
    Checkpoint,
    FaultInjector,
    FaultPlan,
    FaultRule,
    RecoveryContext,
    RetryingDevice,
    RetryPolicy,
    build_faulty_device,
)
from .io import (
    BlockDevice,
    CostModel,
    ExternalStack,
    IOStats,
    MemoryBudget,
    RunStore,
)
from .keys import (
    ByAttribute,
    ByAttributes,
    ByChildPath,
    ByTag,
    ByText,
    DocumentOrder,
    KeyEvaluator,
    KeyRule,
    SortSpec,
)
from .merge import (
    BatchReport,
    MergeReport,
    NestedLoopReport,
    apply_batch,
    nested_loop_merge,
    structural_merge,
)
from .xml import (
    CompactionConfig,
    Document,
    Element,
    NameDictionary,
    element_to_string,
    events_to_string,
    parse_events,
)

__version__ = "1.0.0"

__all__ = [
    "BatchReport",
    "BlockDevice",
    "ByAttribute",
    "ByAttributes",
    "ByChildPath",
    "ByTag",
    "ByText",
    "Checkpoint",
    "CodecError",
    "CompactionConfig",
    "CostModel",
    "DeviceError",
    "DeviceFault",
    "Document",
    "DocumentOrder",
    "Element",
    "ExternalMergeSorter",
    "ExternalStack",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FaultRule",
    "IOStats",
    "KeyEvaluator",
    "KeyRule",
    "MemoryBudget",
    "MemoryBudgetExceeded",
    "MergeError",
    "MergeReport",
    "MergeSortReport",
    "NameDictionary",
    "NestedLoopReport",
    "NexSorter",
    "NexsortOptions",
    "NexsortReport",
    "RecoveryContext",
    "ReproError",
    "RetryPolicy",
    "RetryingDevice",
    "RunError",
    "RunStore",
    "SortRecoveryError",
    "SortSpec",
    "SortSpecError",
    "StackError",
    "XMLSyntaxError",
    "apply_batch",
    "build_faulty_device",
    "element_to_string",
    "events_to_string",
    "external_merge_sort",
    "is_fully_sorted",
    "key_path_table",
    "nested_loop_merge",
    "nexsort",
    "parse_events",
    "sort_element",
    "structural_merge",
]
