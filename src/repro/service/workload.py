"""Seeded Poisson workload generation for the sort service.

A workload is a list of :class:`JobSpec` values - who arrives, when, and
what they want sorted.  Arrival times are drawn from a seeded Poisson
process (exponential inter-arrival gaps via ``random.Random(seed)``), so
a workload string is a *complete, reproducible* description of an
experiment: the same spec always produces the same jobs at the same
simulated instants, which is what lets the benchmark and the CI smoke
job compare scheduled runs against solo goldens.

The mini-language mirrors the ``--faults`` DSL: ``;``- or ``,``-separated
``key=value`` clauses::

    jobs=8;rate=2.0;seed=7;shape=4x4x4;memory=24;algorithm=nexsort

See :meth:`WorkloadSpec.parse` for the full clause list.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field

from ..errors import ServiceError
from ..generators.level_fanout import level_fanout_events

_ALGORITHMS = ("nexsort", "mergesort")

_PRIORITY_RANGE = re.compile(r"(?P<lo>-?\d+)-(?P<hi>-?\d+)$")


@dataclass(frozen=True)
class JobSpec:
    """One tenant's sort request.

    Attributes:
        tenant: stable tenant id ("t0", "t1", ... in arrival order).
        arrival: simulated second at which the job arrives.
        priority: larger = more urgent (strict-priority policy only).
        algorithm: "nexsort" or "mergesort".
        fanouts: generator shape (children per level) of the document.
        doc_seed: seed for the document generator.
        memory_blocks: requested lease size, cache included.
        cache_blocks: requested buffer-pool blocks within the lease.
        pad_bytes: generator padding per element.
        wire: submit the document in the compact container wire format
            (``repro.io.compress.encode_document_wire``); the scheduler
            decodes it on ingest and charges the decode CPU, but the
            sort itself - and its digest - is unchanged.
    """

    tenant: str
    arrival: float
    priority: int = 0
    algorithm: str = "nexsort"
    fanouts: tuple[int, ...] = (4, 4, 4)
    doc_seed: int = 0
    memory_blocks: int = 24
    cache_blocks: int = 0
    pad_bytes: int | None = None
    wire: bool = False

    def events(self):
        """The job's input document as a generated event stream."""
        kwargs = {"seed": self.doc_seed}
        if self.pad_bytes is not None:
            kwargs["pad_bytes"] = self.pad_bytes
        return level_fanout_events(list(self.fanouts), **kwargs)


@dataclass(frozen=True)
class WorkloadSpec:
    """A parsed workload description; :meth:`jobs` materializes it."""

    job_count: int = 4
    rate: float = 0.0
    seed: int = 0
    shape: tuple[int, ...] = (4, 4, 4)
    memory_blocks: int = 24
    cache_blocks: int = 0
    algorithm: str = "nexsort"
    priority_range: tuple[int, int] = (0, 0)
    pad_bytes: int | None = None
    wire: bool = False

    @classmethod
    def parse(cls, text: str) -> "WorkloadSpec":
        """Parse the ``--workload`` mini-language.

        Clauses separated by ``;`` or ``,``:

        * ``jobs=8`` - number of jobs (default 4).
        * ``rate=2.0`` - Poisson arrival rate in jobs per simulated
          second; ``rate=0`` (default) makes every job arrive at t=0.
        * ``seed=42`` - seed for arrival gaps, priorities, documents.
        * ``shape=4x4x4`` - children per level of each job's document.
        * ``memory=24`` / ``cache=4`` - lease blocks requested per job
          (memory includes cache, as the sorters account it).
        * ``algorithm=nexsort|mergesort`` - which sorter each job runs.
        * ``priority=2`` or ``priority=0-3`` - fixed priority, or a
          seeded uniform draw per job from the inclusive range.
        * ``pad=64`` - generator pad bytes per element.
        * ``wire=1`` - submit each job's document in the compact
          container wire format (default 0: plain event submission).
        """
        spec = {}
        for raw in re.split(r"[;,]", text):
            clause = raw.strip()
            if not clause:
                continue
            if "=" not in clause:
                raise ServiceError(
                    f"bad workload clause {clause!r} (expected key=value)"
                )
            key, value = clause.split("=", 1)
            key = key.strip()
            value = value.strip()
            try:
                if key == "jobs":
                    spec["job_count"] = int(value)
                elif key == "rate":
                    spec["rate"] = float(value)
                elif key == "seed":
                    spec["seed"] = int(value)
                elif key == "shape":
                    spec["shape"] = tuple(
                        int(part) for part in value.split("x")
                    )
                elif key == "memory":
                    spec["memory_blocks"] = int(value)
                elif key == "cache":
                    spec["cache_blocks"] = int(value)
                elif key == "algorithm":
                    if value not in _ALGORITHMS:
                        raise ServiceError(
                            f"unknown algorithm {value!r} "
                            f"(expected one of {_ALGORITHMS})"
                        )
                    spec["algorithm"] = value
                elif key == "priority":
                    match = _PRIORITY_RANGE.match(value)
                    if match is not None:
                        lo, hi = int(match["lo"]), int(match["hi"])
                    else:
                        lo = hi = int(value)
                    if lo > hi:
                        raise ServiceError(
                            f"empty priority range {value!r}"
                        )
                    spec["priority_range"] = (lo, hi)
                elif key == "pad":
                    spec["pad_bytes"] = int(value)
                elif key == "wire":
                    if value not in ("0", "1", "on", "off"):
                        raise ServiceError(
                            f"bad wire flag {value!r} (expected 0/1/on/off)"
                        )
                    spec["wire"] = value in ("1", "on")
                else:
                    raise ServiceError(
                        f"unknown workload key {key!r} in {clause!r}"
                    )
            except ValueError:
                raise ServiceError(
                    f"bad workload value in clause {clause!r}"
                ) from None
        parsed = cls(**spec)
        if parsed.job_count < 1:
            raise ServiceError(f"need at least one job: {text!r}")
        if parsed.rate < 0:
            raise ServiceError(f"arrival rate cannot be negative: {text!r}")
        if not parsed.shape or any(f < 1 for f in parsed.shape):
            raise ServiceError(f"bad document shape in {text!r}")
        return parsed

    def jobs(self) -> list[JobSpec]:
        """Materialize the job list: arrivals, priorities, documents.

        One ``random.Random(seed)`` stream drives both the exponential
        inter-arrival gaps and the per-job priority draws, so the whole
        schedule is a deterministic function of the spec string.
        """
        rng = random.Random(self.seed)
        lo, hi = self.priority_range
        jobs: list[JobSpec] = []
        clock = 0.0
        for index in range(self.job_count):
            if self.rate > 0 and index > 0:
                clock += rng.expovariate(self.rate)
            priority = lo if lo == hi else rng.randint(lo, hi)
            jobs.append(
                JobSpec(
                    tenant=f"t{index}",
                    arrival=clock,
                    priority=priority,
                    algorithm=self.algorithm,
                    fanouts=self.shape,
                    doc_seed=self.seed + index,
                    memory_blocks=self.memory_blocks,
                    cache_blocks=self.cache_blocks,
                    pad_bytes=self.pad_bytes,
                    wire=self.wire,
                )
            )
        return jobs


def parse_workload(text: str) -> list[JobSpec]:
    """Parse a workload spec string and materialize its jobs."""
    return WorkloadSpec.parse(text).jobs()
