"""Deterministic event-loop scheduler: many sort jobs, one machine.

The service runs jobs in **simulated time**, like everything else in
this repository, and the scheme resolves the central tension of
multi-tenancy - sharing the disks without perturbing any tenant's
counters - in two phases per job:

1. **Execute on the lease.**  At admission the job runs to completion on
   its private :class:`~repro.io.lease.ResourceLease`: document staged
   onto the lease's store, then NEXSORT or the merge-sort baseline with
   the lease's budget, tracer, and (for chaos runs) fault plan.  The
   lease's private device guarantees output, counters, comparisons, and
   traces bit-identical to a solo run at the same grant, and its
   :class:`~repro.io.lease.TeeIOStats` records the job's cost **event
   list** - one ``(io, seconds)`` entry per block access in charge
   order, CPU charges coalesced between them.
2. **Replay over the shared disks.**  The scheduler then interleaves
   the event lists of all concurrent jobs over one
   :class:`~repro.io.parallel.DiskTimeline` of ``D`` disks, one event
   per scheduling decision - block-granular interleaving.  An I/O event
   starts at ``max(job clock, disk free-at)`` on the least-loaded disk;
   CPU advances only the job's clock.  The *fair* policy always advances
   the job with the smallest clock (processor sharing at block grain);
   *priority* strictly prefers higher-priority jobs, so their events
   claim disks first and low-priority jobs see the queueing delay.

Within one job the replay is serial (its clock passes through every
event), so a job running alone finishes in exactly its lease's
``elapsed_seconds`` regardless of ``D`` - and the serial back-to-back
baseline equals the sum of solo times, which is what the ``>= 2x``
throughput claim in ``BENCH_service.json`` is measured against.

Arrivals come from :mod:`repro.service.workload`; verdicts from
:mod:`repro.service.admission`.  Queued jobs re-enter admission when a
completion releases memory, at the completing job's clock - so the whole
schedule is a deterministic function of (workload, policy, pool).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..analysis.advisor import nearest_rank_percentile
from ..baselines.merge_sort import external_merge_sort
from ..core.nexsort import nexsort
from ..errors import ServiceError
from ..io.compress import decode_document_wire, encode_document_wire
from ..io.lease import ResourceLease, ResourcePool
from ..io.parallel import DiskTimeline
from ..keys import ByAttribute, SortSpec
from ..merge.engine import DEFAULT_MERGE_OPTIONS
from ..xml.document import Document
from .admission import AdmissionController, AdmissionDecision
from .workload import JobSpec

POLICIES = ("fair", "priority")

#: The service's ordering criterion (the benchmark standard).
SERVICE_SPEC = SortSpec(default=ByAttribute("name"))


def output_digest(document) -> str:
    """Stable digest of a sorted document's serialized text."""
    return hashlib.sha256(document.to_string().encode()).hexdigest()


@dataclass
class JobResult:
    """Everything the service knows about one job after the run."""

    spec: JobSpec
    decision: AdmissionDecision
    admitted_seconds: float | None = None
    completed_seconds: float | None = None
    digest: str | None = None
    counters: dict = field(default_factory=dict)
    phases: dict = field(default_factory=dict)
    service_seconds: float = 0.0
    wire_bytes: int | None = None
    wire_raw_bytes: int | None = None
    trace: object | None = field(default=None, repr=False, compare=False)

    @property
    def completed(self) -> bool:
        return self.completed_seconds is not None

    @property
    def latency_seconds(self) -> float | None:
        """Arrival-to-completion time in simulated seconds."""
        if self.completed_seconds is None:
            return None
        return self.completed_seconds - self.spec.arrival

    @property
    def queue_seconds(self) -> float | None:
        if self.admitted_seconds is None:
            return None
        return self.admitted_seconds - self.spec.arrival


def percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of ``values`` (fraction in [0, 1]).

    Delegates to the one nearest-rank implementation shared with the
    document profiler (:mod:`repro.analysis.advisor`).
    """
    return nearest_rank_percentile(sorted(values), fraction)


@dataclass
class ServiceReport:
    """The outcome of one scheduled workload."""

    policy: str
    disks: int
    results: list[JobResult]
    makespan_seconds: float
    pool_totals: dict
    tenant_totals: dict

    @property
    def completed(self) -> list[JobResult]:
        return [r for r in self.results if r.completed]

    @property
    def rejected(self) -> list[JobResult]:
        return [r for r in self.results if r.decision.action == "reject"]

    @property
    def throughput_jobs_per_second(self) -> float:
        done = len(self.completed)
        if not done or self.makespan_seconds <= 0:
            return 0.0
        return done / self.makespan_seconds

    def latency_percentiles(self) -> dict[str, float]:
        latencies = [
            r.latency_seconds for r in self.completed
            if r.latency_seconds is not None
        ]
        return {
            "p50": percentile(latencies, 0.50),
            "p95": percentile(latencies, 0.95),
            "p99": percentile(latencies, 0.99),
        }

    def isolation_errors(self) -> list[str]:
        """Per-tenant counters must tile exactly to the pool's globals."""
        errors = []
        keys = set(self.pool_totals) | set(self.tenant_totals)
        for key in sorted(keys):
            have = self.tenant_totals.get(key)
            want = self.pool_totals.get(key)
            if isinstance(have, float) or isinstance(want, float):
                ok = abs((have or 0.0) - (want or 0.0)) < 1e-9
            else:
                # A side with no tenants at all reports nothing; that
                # tiles to a zero total, not to a mismatch.
                ok = (have or 0) == (want or 0)
            if not ok:
                errors.append(
                    f"{key}: tenants sum to {have!r}, pool recorded {want!r}"
                )
        return errors

    def verify_isolation(self) -> None:
        errors = self.isolation_errors()
        if errors:
            raise ServiceError(
                "per-tenant counters do not tile to the pool totals: "
                + "; ".join(errors)
            )

    def summary(self) -> dict:
        """JSON-ready summary (the benchmark row body)."""
        return {
            "policy": self.policy,
            "disks": self.disks,
            "jobs": len(self.results),
            "completed": len(self.completed),
            "rejected": len(self.rejected),
            "degraded": sum(
                1 for r in self.results if r.decision.action == "degrade"
            ),
            "makespan_seconds": self.makespan_seconds,
            "throughput_jobs_per_second": self.throughput_jobs_per_second,
            **{
                f"latency_{name}_seconds": value
                for name, value in self.latency_percentiles().items()
            },
        }


class _ActiveJob:
    """Replay cursor of one admitted job."""

    __slots__ = (
        "result", "events", "cursor", "clock", "order", "priority",
    )

    def __init__(self, result: JobResult, events, clock: float, order: int):
        self.result = result
        self.events = events
        self.cursor = 0
        self.clock = clock
        self.order = order
        self.priority = result.spec.priority

    @property
    def done(self) -> bool:
        return self.cursor >= len(self.events)


class Scheduler:
    """Admit, execute, and interleave a workload over one resource pool.

    Args:
        pool: shared :class:`ResourcePool` (memory ledger + D disks).
        policy: "fair" (min-clock processor sharing) or "priority"
            (strict: higher ``JobSpec.priority`` first).
        admission: controller; defaults to a degrading
            :class:`AdmissionController` over ``pool``.
        merge_options: engine options applied to every job.
        fault_plan / retries: chaos configuration applied to every
            job's lease (per-tenant injection - each tenant's fault
            sequence depends only on its own access stream).
        keep_traces: finish and retain each tenant's Trace object
            (``results[i].phases``); disable for large fleets.
    """

    def __init__(
        self,
        pool: ResourcePool,
        policy: str = "fair",
        admission: AdmissionController | None = None,
        merge_options=None,
        fault_plan=None,
        retries: int = 0,
        keep_traces: bool = True,
    ):
        if policy not in POLICIES:
            raise ServiceError(
                f"unknown scheduling policy {policy!r} "
                f"(expected one of {POLICIES})"
            )
        self.pool = pool
        self.policy = policy
        self.admission = admission or AdmissionController(pool)
        self.merge_options = merge_options or DEFAULT_MERGE_OPTIONS
        self.fault_plan = fault_plan
        self.retries = retries
        self.keep_traces = keep_traces
        self.timeline = DiskTimeline(pool.disks)
        self.traces: dict[str, object] = {}

    # -- one job, for real, on its lease ---------------------------------

    def _execute(self, result: JobResult) -> ResourceLease:
        """Run the job to completion on a fresh lease; fill in ``result``."""
        spec = result.spec
        decision = result.decision
        lease = self.pool.lease(
            decision.memory_blocks,
            tenant=spec.tenant,
            fault_plan=self.fault_plan,
            retries=self.retries,
            trace=self.keep_traces,
        )
        document = self._stage(result, lease)
        # A decision-carried plan (planner-enabled admission) overrides
        # the service-wide merge options for this job only; the grant
        # split already lives in decision.memory/cache_blocks.
        merge_options = (
            decision.plan.merge_options()
            if decision.plan is not None
            else self.merge_options
        )
        if spec.algorithm == "nexsort":
            output, _report = nexsort(
                document,
                SERVICE_SPEC,
                memory_blocks=decision.memory_blocks,
                cache_blocks=decision.cache_blocks,
                merge_options=merge_options,
                tracer=lease.tracer,
                lease=lease,
            )
        else:
            output, _report = external_merge_sort(
                document,
                SERVICE_SPEC,
                memory_blocks=decision.memory_blocks,
                cache_blocks=decision.cache_blocks,
                merge_options=merge_options,
                tracer=lease.tracer,
                lease=lease,
            )
        result.digest = output_digest(output)
        snapshot = lease.snapshot()
        result.counters = snapshot.counter_totals()
        result.service_seconds = snapshot.elapsed_seconds()
        if lease.tracer is not None:
            trace = lease.tracer.finish()
            result.phases = trace.phase_breakdown()
            result.trace = trace
            self.traces[spec.tenant] = trace
        return lease

    def _stage(self, result: JobResult, lease: ResourceLease):
        """Stage the job's input document onto the lease's store.

        Plain jobs hand their event stream straight to
        :meth:`Document.from_events`.  Wire jobs (``spec.wire``) travel
        as a compact container-codec blob: the scheduler encodes the
        submission (standing in for the tenant's client), decodes it on
        ingest, and charges the decode CPU against the lease so the
        smaller footprint is honestly paid for.  The decoded token list
        is exact, so the staged document - and everything downstream:
        digest, comparisons, trace spans - is bit-identical to a plain
        submission of the same job.
        """
        spec = result.spec
        if not spec.wire:
            return Document.from_events(lease.store, spec.events())
        blob = encode_document_wire(spec.events())
        tokens = decode_document_wire(blob)
        document = Document.from_events(lease.store, tokens)
        raw = document.handle.stream_bytes
        lease.store.device.stats.record_decompression(len(blob), raw)
        result.wire_bytes = len(blob)
        result.wire_raw_bytes = raw
        return document

    # -- policy picks ----------------------------------------------------

    def _pick(self, active: list[_ActiveJob]) -> _ActiveJob:
        if self.policy == "priority":
            return min(
                active, key=lambda j: (-j.priority, j.clock, j.order)
            )
        return min(active, key=lambda j: (j.clock, j.order))

    # -- the event loop --------------------------------------------------

    def run(self, jobs: list[JobSpec]) -> ServiceReport:
        """Schedule ``jobs``; returns the full :class:`ServiceReport`."""
        pending = sorted(jobs, key=lambda j: (j.arrival, j.tenant))
        results: list[JobResult] = []
        waiting: list[JobResult] = []
        active: list[_ActiveJob] = []
        leases: dict[str, ResourceLease] = {}
        tenant_sum = None
        order = 0
        completed_at = 0.0

        def admit(result: JobResult, at: float) -> None:
            nonlocal order, tenant_sum
            result.admitted_seconds = at
            lease = self._execute(result)
            leases[result.spec.tenant] = lease
            snapshot = lease.snapshot()
            tenant_sum = (
                snapshot if tenant_sum is None else tenant_sum.plus(snapshot)
            )
            active.append(_ActiveJob(result, lease.events, at, order))
            order += 1

        def try_admission(result: JobResult, at: float) -> bool:
            """Decide now; admit, queue, or reject.  True = admitted."""
            decision = self.admission.decide(result.spec)
            result.decision = decision
            if decision.admitted:
                admit(result, at)
                return True
            if decision.action == "queue":
                waiting.append(result)
            return False

        def drain_waiting(at: float) -> None:
            if self.policy == "priority":
                waiting.sort(
                    key=lambda r: (-r.spec.priority, r.spec.arrival)
                )
            progressed = True
            while progressed:
                progressed = False
                for result in list(waiting):
                    decision = self.admission.decide(result.spec)
                    if decision.admitted:
                        waiting.remove(result)
                        result.decision = decision
                        admit(result, at)
                        progressed = True

        while pending or active or waiting:
            # Admit arrivals that are due: a job is due once simulated
            # time - the smallest active clock, or the arrival itself on
            # an idle service - has reached its arrival instant.
            while pending:
                horizon = (
                    min(j.clock for j in active)
                    if active
                    else max(completed_at, pending[0].arrival)
                )
                if pending[0].arrival > horizon:
                    break
                spec = pending.pop(0)
                result = JobResult(
                    spec=spec,
                    decision=AdmissionDecision(
                        action="queue",
                        memory_blocks=spec.memory_blocks,
                        cache_blocks=spec.cache_blocks,
                        reason="pending",
                    ),
                )
                results.append(result)
                try_admission(result, max(spec.arrival, completed_at))

            if not active:
                if waiting and not pending:
                    # Memory can no longer free up on its own: everything
                    # admitted has completed, so re-admission must succeed
                    # against the idle pool.
                    drain_waiting(completed_at)
                    if not active:
                        stuck = ", ".join(
                            r.spec.tenant for r in waiting
                        )
                        raise ServiceError(
                            f"queued jobs cannot be admitted against an "
                            f"idle pool: {stuck}"
                        )
                    continue
                if pending:
                    continue
                break

            job = self._pick(active)
            kind, seconds = job.events[job.cursor]
            job.cursor += 1
            if kind == "io":
                job.clock = self.timeline.issue(job.clock, seconds)
            else:
                job.clock += seconds

            if job.done:
                active.remove(job)
                job.result.completed_seconds = job.clock
                completed_at = max(completed_at, job.clock)
                lease = leases.pop(job.result.spec.tenant)
                lease.release()
                drain_waiting(job.clock)

        makespan = max(
            (r.completed_seconds for r in results if r.completed),
            default=0.0,
        )
        pool_snapshot = self.pool.stats.snapshot()
        return ServiceReport(
            policy=self.policy,
            disks=self.pool.disks,
            results=results,
            makespan_seconds=makespan,
            pool_totals=pool_snapshot.counter_totals(),
            tenant_totals=(
                tenant_sum.counter_totals() if tenant_sum is not None else {}
            ),
        )


def run_solo(
    spec: JobSpec,
    memory_blocks: int | None = None,
    cache_blocks: int | None = None,
    block_size: int = 4096,
    merge_options=None,
    fault_plan=None,
    retries: int = 0,
) -> JobResult:
    """Run one job alone on a fresh single-tenant pool.

    The golden for bit-identity checks: a scheduled job must match its
    solo run at the same effective grant - digest, counter totals, and
    per-phase trace breakdown, all of it.
    """
    grant = memory_blocks if memory_blocks is not None else spec.memory_blocks
    cache = cache_blocks if cache_blocks is not None else spec.cache_blocks
    pool = ResourcePool(grant, block_size=block_size, disks=1)
    scheduler = Scheduler(
        pool,
        policy="fair",
        merge_options=merge_options,
        fault_plan=fault_plan,
        retries=retries,
    )
    solo_spec = JobSpec(
        tenant=spec.tenant,
        arrival=0.0,
        priority=spec.priority,
        algorithm=spec.algorithm,
        fanouts=spec.fanouts,
        doc_seed=spec.doc_seed,
        memory_blocks=grant,
        cache_blocks=cache,
        pad_bytes=spec.pad_bytes,
        wire=spec.wire,
    )
    report = scheduler.run([solo_spec])
    return report.results[0]
