"""Sort-as-a-service: multi-tenant scheduling over shared resources.

The control plane above the single-job engine (ROADMAP item 1): a
:class:`~repro.service.scheduler.Scheduler` admits jobs from a seeded
Poisson :mod:`~repro.service.workload` through a cost-bound-guided
:class:`~repro.service.admission.AdmissionController`, executes each on
a private :class:`~repro.io.lease.ResourceLease`, and interleaves their
recorded cost events over the shared disks in simulated time - fair or
strict-priority, with per-tenant counter/trace isolation that tiles
exactly to the global totals, and every job bit-identical to its solo
run.
"""

from .admission import AdmissionController, AdmissionDecision
from .scheduler import (
    JobResult,
    POLICIES,
    Scheduler,
    SERVICE_SPEC,
    ServiceReport,
    output_digest,
    percentile,
    run_solo,
)
from .workload import JobSpec, WorkloadSpec, parse_workload

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "JobResult",
    "JobSpec",
    "POLICIES",
    "SERVICE_SPEC",
    "Scheduler",
    "ServiceReport",
    "WorkloadSpec",
    "output_digest",
    "parse_workload",
    "percentile",
    "run_solo",
]
