"""Admission control: who gets in, at what memory grant, and why.

The controller stands between arriving :class:`~repro.service.workload.
JobSpec` requests and the shared :class:`~repro.io.lease.ResourcePool`.
For each request it picks one of four actions, grounded in the cost
bounds rather than ad-hoc thresholds:

* **admit** - the requested grant fits the free pool right now.
* **degrade** - the full request does not fit, but a smaller grant does.
  Degradation sheds, in order: the *incoming* job's cache blocks
  ("victims lose cache before anyone loses correctness" - in-flight
  jobs are never touched, which is what keeps every admitted job
  bit-identical to its solo run), then working memory, re-costed at
  each step against the Arge-Thorup merge-depth bound
  (:func:`~repro.analysis.bounds.arge_thorup_merge_depth`): the grant
  may shrink only while the predicted merge depth stays within
  ``max_extra_depth`` levels of the full-request depth.
* **queue** - no acceptable grant fits *now*, but one would fit an idle
  pool; wait for leases to release.
* **reject** - even an idle pool could never run the job acceptably:
  the floor grant exceeds the pool, or it sits below the engine's hard
  ``MINIMUM_NEXSORT_BLOCKS`` minimum.  Refusal past a provable boundary
  follows the Grohe-Koch-Schweikardt lower-bound argument: below the
  boundary extra passes are *forced*, so running the job degraded would
  not serve the tenant, just burn shared disk time.

Decisions carry the predicted solo seconds (from
:mod:`repro.analysis.cost_model`) so the scheduler can report predicted
vs. achieved latency per tenant.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.advisor import DocumentProfile
from ..analysis.bounds import arge_thorup_merge_depth
from ..analysis.cost_model import (
    ModelGeometry,
    predicted_merge_sort_seconds,
    predicted_nexsort_seconds,
)
from ..analysis.planner import PlanConfig, Planner
from ..generators.level_fanout import level_fanout_element_count
from ..io.budget import MINIMUM_NEXSORT_BLOCKS
from .workload import JobSpec

#: Baseline merge sort's hard minimum (2 I/O buffers + 1 formation block).
_MERGESORT_FLOOR = 3


@dataclass(frozen=True)
class AdmissionDecision:
    """The controller's verdict on one job.

    Attributes:
        action: "admit", "degrade", "queue", or "reject".
        memory_blocks / cache_blocks: the effective grant ("admit" and
            "degrade" only; the request's own numbers otherwise).
        reason: one-line human explanation.
        predicted_seconds: modeled solo run time at the effective grant.
        merge_depth: Arge-Thorup merge-depth bound at the effective
            grant (0 = the job sorts in one formation pass).
        plan: re-planned knobs for a degraded grant (planner-enabled
            controllers only); None means run with the service defaults.
    """

    action: str
    memory_blocks: int
    cache_blocks: int
    reason: str
    predicted_seconds: float = 0.0
    merge_depth: int = 0
    plan: PlanConfig | None = None

    @property
    def admitted(self) -> bool:
        return self.action in ("admit", "degrade")


class AdmissionController:
    """Cost-bound-guided admission over one :class:`ResourcePool`.

    Args:
        pool: the shared resource pool leases are carved from.
        degrade: allow shrunken grants (False = admit-or-queue only).
        max_extra_depth: how many extra Arge-Thorup merge-tree levels a
            degraded grant may cost the job relative to its full
            request.  0 (default) shrinks memory only while provably
            free; raising it trades tenant latency for throughput.
        plan: re-plan a degraded job's knobs with the cost-based
            :class:`~repro.analysis.planner.Planner` instead of only
            shedding cache/memory; the chosen :class:`PlanConfig` rides
            on the decision for the scheduler to apply.
    """

    def __init__(
        self,
        pool,
        degrade: bool = True,
        max_extra_depth: int = 0,
        plan: bool = False,
    ):
        self.pool = pool
        self.degrade = degrade
        self.max_extra_depth = max_extra_depth
        self.plan = plan

    # -- geometry ---------------------------------------------------------

    def _geometry(self, job: JobSpec, memory_blocks: int) -> ModelGeometry:
        """Model geometry of the job at a hypothetical grant.

        Elements per block comes from the generator shape (the exact
        element count is a pure function of the fanouts) and the
        document's approximate encoded element size; admission runs
        before any bytes are staged, so this is an estimate - fine,
        because it feeds relative comparisons between grants of the
        *same* job, not cross-job accounting.
        """
        elements = level_fanout_element_count(list(job.fanouts))
        approx_bytes = 45 + (job.pad_bytes or 0)
        per_block = max(1, self.pool.block_size // approx_bytes)
        return ModelGeometry(
            N=elements,
            B=per_block,
            M=max(1, memory_blocks) * per_block,
            k=max(1, max(job.fanouts)),
        )

    def _floor_blocks(self, job: JobSpec) -> int:
        if job.algorithm == "nexsort":
            return MINIMUM_NEXSORT_BLOCKS
        return _MERGESORT_FLOOR

    def _depth(self, job: JobSpec, memory_blocks: int) -> int:
        g = self._geometry(job, memory_blocks)
        return arge_thorup_merge_depth(g.N, g.B, g.M)

    def arge_thorup_floor(self, job: JobSpec) -> int:
        """Smallest acceptable degraded grant for ``job``.

        The smallest block count whose Arge-Thorup merge depth stays
        within ``max_extra_depth`` of the depth at the job's *working*
        request (its memory net of cache - cache blocks are not sort
        memory, so costing the baseline at the cache-inflated request
        would compare grants against a depth the sorter never sees).
        Never below the engine's hard minimum.  Depth is non-increasing
        in the grant, so a binary search finds the boundary exactly.
        """
        floor = self._floor_blocks(job)
        working = max(floor, job.memory_blocks - job.cache_blocks)
        base_depth = self._depth(job, working)
        low, high = floor, working
        while low < high:
            mid = (low + high) // 2
            if self._depth(job, mid) - base_depth <= self.max_extra_depth:
                high = mid
            else:
                low = mid + 1
        return low

    def _replan(self, job: JobSpec, grant: int) -> PlanConfig | None:
        """Planner-chosen knobs for a degraded grant (opt-in).

        The algorithm and threshold stay the job's own (they change the
        output-identity contract a tenant verified against); the planner
        re-splits cache vs. working memory and picks the merge knobs for
        the shrunken grant.
        """
        if not self.plan:
            return None
        profile = DocumentProfile.from_fanouts(
            job.fanouts,
            pad_bytes=job.pad_bytes or 0,
            block_size=self.pool.block_size,
        )
        planner = Planner(
            profile,
            memory_blocks=grant,
            block_size=self.pool.block_size,
            disks=self.pool.disks,
            cost_model=self.pool.cost_model,
        )
        algorithm = (
            "merge_sort" if job.algorithm != "nexsort" else "nexsort"
        )
        plan = planner.choose(fixed={
            "algorithm": algorithm,
            "memory_blocks": grant,
            "threshold_blocks": 2,
            "flat_optimization": False,
            "disks": 1,
            "prefetch_depth": 0,
        })
        return plan.config

    def _predicted(self, job: JobSpec, memory_blocks: int) -> float:
        g = self._geometry(job, memory_blocks)
        if job.algorithm == "nexsort":
            seconds = predicted_nexsort_seconds(
                g, cost_model=self.pool.cost_model
            )
        else:
            seconds = predicted_merge_sort_seconds(
                g, cost_model=self.pool.cost_model
            )
        if job.wire:
            seconds += self._wire_ingest_seconds(job)
        return seconds

    #: Planning estimate for the container wire codec's size reduction
    #: on generated documents.  Conservative relative to the measured
    #: ratios (the Figure-5 shapes compress >4x) so admission never
    #: over-promises on a wire submission.
    WIRE_RATIO_ESTIMATE = 2.0

    def _wire_ingest_seconds(self, job: JobSpec) -> float:
        """Net admission-cost adjustment for a wire-format submission.

        A wire job arrives as a container-codec blob instead of a plain
        event stream: the service transfers ``raw / ratio`` ingest bytes
        (a saving, charged at the block transfer rate) but pays the
        decode CPU over the full raw footprint.  The term can be
        negative - the whole point of the wire format is that the
        transfer saving usually beats the decode cost.
        """
        elements = level_fanout_element_count(list(job.fanouts))
        raw_bytes = elements * (45 + (job.pad_bytes or 0))
        saved_blocks = (
            raw_bytes * (1.0 - 1.0 / self.WIRE_RATIO_ESTIMATE)
            / self.pool.block_size
        )
        model = self.pool.cost_model
        decode_cpu = model.compress_seconds(0, raw_bytes)
        return decode_cpu - saved_blocks * model.transfer_seconds

    # -- the verdict ------------------------------------------------------

    def decide(self, job: JobSpec) -> AdmissionDecision:
        """Judge ``job`` against the pool's current free memory."""
        free = self.pool.available_blocks
        total = self.pool.total_blocks
        requested = job.memory_blocks
        floor = self._floor_blocks(job)

        if requested < floor + job.cache_blocks:
            return AdmissionDecision(
                action="reject",
                memory_blocks=requested,
                cache_blocks=job.cache_blocks,
                reason=(
                    f"request of {requested} blocks is below the "
                    f"algorithm's {floor}-block minimum plus "
                    f"{job.cache_blocks} cache blocks"
                ),
            )
        if floor > total:
            return AdmissionDecision(
                action="reject",
                memory_blocks=requested,
                cache_blocks=job.cache_blocks,
                reason=(
                    f"even the degraded floor of {floor} blocks exceeds "
                    f"the pool's {total}; extra passes would be forced "
                    f"below it (lower-bound boundary), so the job is "
                    f"refused rather than run degraded"
                ),
            )

        if requested <= free:
            return AdmissionDecision(
                action="admit",
                memory_blocks=requested,
                cache_blocks=job.cache_blocks,
                reason=f"{requested} blocks fit the {free} free",
                predicted_seconds=self._predicted(job, requested),
                merge_depth=self._depth(job, requested),
            )

        if self.degrade and free >= floor:
            # Shed the incoming job's cache first, then working memory -
            # but never below the Arge-Thorup floor: the smallest grant
            # whose merge depth stays within max_extra_depth of the
            # job's working request.  A pool too drained to clear the
            # floor queues the job instead of running it degraded below
            # the lower bound.
            working = max(floor, requested - job.cache_blocks)
            base_depth = self._depth(job, working)
            at_floor = self.arge_thorup_floor(job)
            grant = min(working, free)
            if grant >= at_floor:
                depth = self._depth(job, grant)
                plan = self._replan(job, grant)
                dropped_cache = job.cache_blocks
                shed_memory = working - grant
                reason = (
                    f"degraded: shed {dropped_cache} cache + "
                    f"{shed_memory} working blocks; merge depth "
                    f"{base_depth} -> {depth} stays within "
                    f"+{self.max_extra_depth} of the full grant "
                    f"(Arge-Thorup floor {at_floor})"
                )
                if plan is not None:
                    reason += (
                        f"; re-planned: cache={plan.cache_blocks} "
                        f"formation={plan.run_formation} "
                        f"kernel={plan.merge_kernel}"
                    )
                return AdmissionDecision(
                    action="degrade",
                    memory_blocks=grant,
                    cache_blocks=(
                        plan.cache_blocks if plan is not None else 0
                    ),
                    reason=reason,
                    predicted_seconds=self._predicted(job, grant),
                    merge_depth=depth,
                    plan=plan,
                )

        if requested <= total or (self.degrade and floor <= total):
            return AdmissionDecision(
                action="queue",
                memory_blocks=requested,
                cache_blocks=job.cache_blocks,
                reason=(
                    f"{requested} blocks do not fit the {free} free now; "
                    f"an idle pool could serve the job, so it waits"
                ),
                predicted_seconds=self._predicted(job, requested),
                merge_depth=self._depth(job, requested),
            )

        return AdmissionDecision(
            action="reject",
            memory_blocks=requested,
            cache_blocks=job.cache_blocks,
            reason=(
                f"{requested} blocks exceed the pool's {total} and "
                f"degradation is disabled"
            ),
        )
