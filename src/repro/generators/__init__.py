"""Workload generators: the paper's two generators plus Figure 1 data."""

from .auction import auction_events, auction_spec
from .company import (
    figure1_d1,
    figure1_d2,
    figure1_merged,
    figure1_spec,
    payroll_events,
    personnel_events,
)
from .ibm_style import ibm_style_events, ibm_style_expected_elements
from .level_fanout import (
    DEFAULT_PAD_BYTES,
    PAPER_TABLE2_SHAPES,
    PAPER_TABLE2_SIZES,
    level_fanout_element_count,
    level_fanout_events,
    scaled_table2_shapes,
)

__all__ = [
    "DEFAULT_PAD_BYTES",
    "auction_events",
    "auction_spec",
    "PAPER_TABLE2_SHAPES",
    "PAPER_TABLE2_SIZES",
    "figure1_d1",
    "figure1_d2",
    "figure1_merged",
    "figure1_spec",
    "ibm_style_events",
    "ibm_style_expected_elements",
    "level_fanout_element_count",
    "level_fanout_events",
    "payroll_events",
    "personnel_events",
    "scaled_table2_shapes",
]
