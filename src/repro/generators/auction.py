"""An XMark-style auction-site workload.

The paper motivates XML sorting with Internet data exchange; the classic
realistic XML workload of that era is XMark's auction site.  This module
generates a seeded, streaming approximation of it: a site of regions, each
holding open auctions with seller info, item descriptions, and bid
histories - a document that mixes wide fan-outs (auctions per region),
deep paths (bidder personalia), text content, and skewed subtree sizes,
unlike the uniform shapes of the paper's generators.

The matching ordering criterion (:func:`auction_spec`) sorts regions by
name, auctions by their id, bids by amount, and everything else by tag -
a realistic "prepare for structural merge" specification.
"""

from __future__ import annotations

import random
from typing import Iterator

from ..keys import ByAttribute, ByAttributes, SortSpec
from ..xml.tokens import EndTag, StartTag, Text, Token

_REGIONS = (
    "africa", "asia", "australia", "europe", "namerica", "samerica"
)
_FIRST = ("Ada", "Grace", "Edsger", "Alan", "Barbara", "Donald", "Leslie")
_LAST = ("Lovelace", "Hopper", "Dijkstra", "Turing", "Liskov", "Knuth")
_WORDS = (
    "vintage", "rare", "boxed", "signed", "mint", "restored", "antique",
    "original", "limited", "classic",
)


def auction_spec() -> SortSpec:
    """The ordering criterion the auction documents are meant for."""
    return SortSpec(
        default=ByAttribute("name", missing_uses_tag=True),
        rules={
            "open_auction": ByAttribute("id"),
            "bid": ByAttributes(("amount", "at")),
            "item": ByAttribute("id"),
        },
    )


def auction_events(
    auctions_per_region: int = 20,
    max_bids: int = 8,
    seed: int = 0,
    regions: int = len(_REGIONS),
) -> Iterator[Token]:
    """Stream one auction-site document.

    Element count is roughly
    ``regions * auctions_per_region * (6 + bids)`` with bids uniform in
    ``[0, max_bids]``; subtree sizes are skewed the way real catalogue
    data is.
    """
    rng = random.Random(seed)
    next_id = 1000

    yield StartTag("site", (("name", "auctions"),))
    for region_index in range(regions):
        region = _REGIONS[region_index % len(_REGIONS)]
        suffix = region_index // len(_REGIONS)
        region_name = f"{region}{suffix}" if suffix else region
        yield StartTag("region", (("name", region_name),))
        for _ in range(auctions_per_region):
            auction_id = next_id
            next_id += rng.randint(1, 7)
            yield StartTag(
                "open_auction", (("id", str(auction_id)),)
            )

            yield StartTag("seller")
            yield StartTag("person", (("name", _person(rng)),))
            yield StartTag("emailaddress")
            yield Text(f"seller{auction_id}@example.net")
            yield EndTag("emailaddress")
            yield StartTag("phone")
            yield Text(f"+1-555-{rng.randrange(10**7):07d}")
            yield EndTag("phone")
            yield StartTag("address")
            yield StartTag("city")
            yield Text(rng.choice(_WORDS).title() + "ville")
            yield EndTag("city")
            yield StartTag("zipcode")
            yield Text(f"{rng.randrange(10**5):05d}")
            yield EndTag("zipcode")
            yield EndTag("address")
            yield EndTag("person")
            yield EndTag("seller")

            yield StartTag("item", (("id", f"i{auction_id}"),))
            yield StartTag("description")
            yield Text(
                " ".join(
                    rng.choice(_WORDS)
                    for _ in range(rng.randint(8, 20))
                )
            )
            yield EndTag("description")
            yield StartTag("quantity")
            yield Text(str(rng.randint(1, 12)))
            yield EndTag("quantity")
            yield StartTag("shipping")
            yield Text(rng.choice(("ground", "air", "pickup")))
            yield EndTag("shipping")
            yield EndTag("item")

            amount = rng.randint(5, 50)
            for bid_index in range(rng.randint(0, max_bids)):
                amount += rng.randint(1, 25)
                # Zero-padded so the composite (string) key orders the
                # bids numerically.
                yield StartTag(
                    "bid",
                    (
                        ("amount", f"{amount:06d}"),
                        ("at", f"t{bid_index:03d}"),
                    ),
                )
                yield StartTag("bidder", (("name", _person(rng)),))
                yield EndTag("bidder")
                yield EndTag("bid")
            yield EndTag("open_auction")
        yield EndTag("region")
    yield EndTag("site")


def _person(rng: random.Random) -> str:
    return f"{rng.choice(_FIRST)} {rng.choice(_LAST)}"
