"""IBM alphaWorks-style XML generator (paper Section 5).

"The IBM generator allows us to specify height and maximum fan-out for the
document to be generated.  The fan-out of each element is a random number
between 1 and the specified maximum."  The alphaWorks tool itself is long
gone; this module reimplements exactly that distribution, streaming and
seeded.
"""

from __future__ import annotations

import random
from typing import Iterator

from ..errors import ReproError
from ..xml.tokens import EndTag, StartTag, Text, Token
from .level_fanout import DEFAULT_PAD_BYTES


def ibm_style_events(
    height: int,
    max_fanout: int,
    seed: int = 0,
    key_attribute: str = "name",
    pad_bytes: int = DEFAULT_PAD_BYTES,
    root_tag: str = "root",
    tag: str = "node",
    text_leaves: bool = False,
) -> Iterator[Token]:
    """Stream a random document of the given height and max fan-out.

    Every element above the leaf level draws its fan-out uniformly from
    ``[1, max_fanout]``; expected element count is roughly
    ``((1 + max_fanout) / 2) ** (height - 1)``.
    """
    if height < 1:
        raise ReproError(f"height must be >= 1, got {height}")
    if max_fanout < 1:
        raise ReproError(f"max_fanout must be >= 1, got {max_fanout}")
    rng = random.Random(seed)
    key_space = max(10, 10 * max_fanout)
    width = len(str(key_space))
    pad = "x" * pad_bytes

    def attrs_for() -> tuple[tuple[str, str], ...]:
        key = rng.randrange(key_space)
        return (
            (key_attribute, f"k{key:0{width}d}"),
            ("pad", pad),
        )

    yield StartTag(root_tag, ((key_attribute, "root"), ("pad", pad)))
    if height == 1:
        yield EndTag(root_tag)
        return
    # Stack of remaining-children counters; index = depth - 1.
    stack = [rng.randint(1, max_fanout)]
    while stack:
        if stack[-1] == 0:
            stack.pop()
            yield EndTag(root_tag if not stack else tag)
            continue
        stack[-1] -= 1
        yield StartTag(tag, attrs_for())
        if len(stack) < height - 1:
            stack.append(rng.randint(1, max_fanout))
        else:
            if text_leaves:
                yield Text(f"v{rng.randrange(key_space)}")
            yield EndTag(tag)


def ibm_style_expected_elements(height: int, max_fanout: int) -> float:
    """Expected element count of :func:`ibm_style_events`."""
    mean = (1 + max_fanout) / 2
    total = 1.0
    layer = 1.0
    for _ in range(height - 1):
        layer *= mean
        total += layer
    return total
