"""The Figure 1 company documents, exact and scalable.

``figure1_d1`` / ``figure1_d2`` reproduce the two documents of the paper's
Example 1.1 verbatim (personnel and payroll).  ``figure1_merged`` is the
expected merge result shown at the bottom of Figure 1.

``personnel_events`` / ``payroll_events`` scale the same schema up for the
merge benchmarks: a company of many regions, branches per region, and
employees per branch, with a configurable fraction of employees present in
both documents (matching the outerjoin semantics of the merge operator).
"""

from __future__ import annotations

import random
from typing import Iterator

from ..keys import SortSpec
from ..xml.model import Element
from ..xml.tokens import EndTag, StartTag, Text, Token


def figure1_spec() -> SortSpec:
    """The ordering criterion of Figure 1: regions and branches by name,
    employees by ID."""
    return SortSpec.by_attribute("name", employee="ID")


def figure1_d1() -> Element:
    """D1 - the personnel department's document (top-left of Figure 1)."""
    return Element.parse(
        """
        <company>
          <region name="NE"></region>
          <region name="AC">
            <branch name="Durham">
              <employee ID="454"></employee>
              <employee ID="323">
                <name>Smith</name>
                <phone>5552345</phone>
              </employee>
            </branch>
            <branch name="Atlanta"></branch>
          </region>
        </company>
        """
    )


def figure1_d2() -> Element:
    """D2 - the payroll department's document (top-right of Figure 1)."""
    return Element.parse(
        """
        <company>
          <region name="NW"></region>
          <region name="AC">
            <branch name="Durham">
              <employee ID="844"></employee>
              <employee ID="323">
                <salary>45000</salary>
                <bonus>5000</bonus>
              </employee>
            </branch>
            <branch name="Miami"></branch>
          </region>
        </company>
        """
    )


def figure1_merged() -> Element:
    """The merged document at the bottom of Figure 1 (fully sorted)."""
    return Element.parse(
        """
        <company>
          <region name="AC">
            <branch name="Atlanta"></branch>
            <branch name="Durham">
              <employee ID="323">
                <name>Smith</name>
                <phone>5552345</phone>
                <salary>45000</salary>
                <bonus>5000</bonus>
              </employee>
              <employee ID="454"></employee>
              <employee ID="844"></employee>
            </branch>
            <branch name="Miami"></branch>
          </region>
          <region name="NE"></region>
          <region name="NW"></region>
        </company>
        """
    )


def _company_events(
    regions: int,
    branches: int,
    employees: int,
    seed: int,
    shared_fraction: float,
    leaf_tags: tuple[str, str],
    leaf_values: tuple[str, str],
    id_salt: int,
) -> Iterator[Token]:
    rng = random.Random(seed)
    region_names = [f"R{index:04d}" for index in range(regions)]
    rng.shuffle(region_names)
    yield StartTag("company")
    for region_name in region_names:
        yield StartTag("region", (("name", region_name),))
        branch_names = [f"B{index:04d}" for index in range(branches)]
        rng.shuffle(branch_names)
        for branch_name in branch_names:
            yield StartTag("branch", (("name", branch_name),))
            # Shared employees derive from the branch identity so both
            # documents agree on them regardless of generation order;
            # private employees come from per-side disjoint ID ranges.
            shared_rng = random.Random(f"shared-{region_name}-{branch_name}")
            shared_count = int(employees * shared_fraction)
            ids = [
                shared_rng.randrange(10**6) for _ in range(shared_count)
            ]
            ids += [
                rng.randrange(
                    (id_salt + 1) * 10**6, (id_salt + 2) * 10**6
                )
                for _ in range(employees - shared_count)
            ]
            rng.shuffle(ids)
            for employee_id in ids:
                yield StartTag("employee", (("ID", str(employee_id)),))
                for leaf_tag, leaf_value in zip(leaf_tags, leaf_values):
                    yield StartTag(leaf_tag)
                    yield Text(f"{leaf_value}{employee_id % 9999}")
                    yield EndTag(leaf_tag)
                yield EndTag("employee")
            yield EndTag("branch")
        yield EndTag("region")
    yield EndTag("company")


def personnel_events(
    regions: int = 4,
    branches: int = 4,
    employees: int = 16,
    seed: int = 1,
    shared_fraction: float = 0.5,
) -> Iterator[Token]:
    """A scaled-up D1: employees with name and phone."""
    return _company_events(
        regions,
        branches,
        employees,
        seed,
        shared_fraction,
        ("name", "phone"),
        ("Emp", "555"),
        id_salt=1,
    )


def payroll_events(
    regions: int = 4,
    branches: int = 4,
    employees: int = 16,
    seed: int = 2,
    shared_fraction: float = 0.5,
) -> Iterator[Token]:
    """A scaled-up D2: employees with salary and bonus."""
    return _company_events(
        regions,
        branches,
        employees,
        seed,
        shared_fraction,
        ("salary", "bonus"),
        ("4", "1"),
        id_salt=2,
    )
