"""The authors' custom XML generator (paper Section 5).

"Our custom generator allows us to specify the exact fan-out for each
level, giving us more precise control over the shape and the size of the
generated document."  This is the generator behind Figure 6 (input-size
sweep at capped fan-out) and Table 2 / Figure 7 (tree-shape sweep).

Documents stream out as events - nothing is materialized - so arbitrarily
large inputs can be written straight to the device.  Sort keys are random
(seeded) so that sorting has real work to do, and elements carry a padding
attribute so the average element size can be controlled (the paper used
~150 bytes per element).
"""

from __future__ import annotations

import random
from typing import Iterator

from ..errors import ReproError
from ..xml.tokens import EndTag, StartTag, Text, Token

#: Default padding chosen so a typical encoded element lands near the
#: paper's ~150-byte average when stored without compaction.
DEFAULT_PAD_BYTES = 96


def level_fanout_events(
    fanouts: list[int],
    seed: int = 0,
    key_attribute: str = "name",
    pad_bytes: int = DEFAULT_PAD_BYTES,
    root_tag: str = "root",
    tag: str = "node",
    text_leaves: bool = False,
) -> Iterator[Token]:
    """Stream a document with exactly ``fanouts[i]`` children at level i+1.

    ``fanouts`` lists the fan-out of every non-leaf level, root first: the
    paper's height-4 Table 2 row is ``[144, 144, 144]``.  Element count is
    ``1 + f1 + f1*f2 + ...`` (see :func:`level_fanout_element_count`).

    Keys are drawn uniformly (with replacement) from a zero-padded numeric
    space sized to the widest level, so duplicate keys occur and the
    position tie-break is exercised.
    """
    if not fanouts:
        raise ReproError("fanouts must list at least one level")
    if any(f < 1 for f in fanouts):
        raise ReproError(f"fan-outs must be positive: {fanouts}")
    rng = random.Random(seed)
    key_space = max(10, 10 * max(fanouts))
    width = len(str(key_space))
    pad = "x" * pad_bytes

    def attrs_for() -> tuple[tuple[str, str], ...]:
        key = rng.randrange(key_space)
        return (
            (key_attribute, f"k{key:0{width}d}"),
            ("pad", pad),
        )

    yield StartTag(root_tag, ((key_attribute, "root"), ("pad", pad)))
    # Iterative DFS: each stack entry is the number of children still to
    # emit at that level.
    stack = [fanouts[0]]
    while stack:
        if stack[-1] == 0:
            stack.pop()
            if stack:
                yield EndTag(tag)
            else:
                yield EndTag(root_tag)
            continue
        stack[-1] -= 1
        yield StartTag(tag, attrs_for())
        depth = len(stack)
        if depth < len(fanouts):
            stack.append(fanouts[depth])
        else:
            if text_leaves:
                yield Text(f"v{rng.randrange(key_space)}")
            yield EndTag(tag)


def level_fanout_element_count(fanouts: list[int]) -> int:
    """Elements in a :func:`level_fanout_events` document."""
    total = 1
    layer = 1
    for fanout in fanouts:
        layer *= fanout
        total += layer
    return total


#: The exact document shapes of Table 2 ("Input document shapes").
PAPER_TABLE2_SHAPES: dict[int, list[int]] = {
    2: [3000000],
    3: [1733, 1733],
    4: [144, 144, 144],
    5: [41, 41, 42, 42],
    6: [19, 19, 20, 20, 20],
}

#: Element counts the paper reports for those shapes.
PAPER_TABLE2_SIZES: dict[int, int] = {
    2: 3000001,
    3: 3005023,
    4: 3006865,
    5: 3037609,
    6: 3040001,
}


def scaled_table2_shapes(target_elements: int) -> dict[int, list[int]]:
    """Table-2-style shapes scaled to roughly ``target_elements``.

    For each height h in 2..6, picks near-uniform per-level fan-outs whose
    product of layers approximates the target, mirroring how the authors
    built Table 2 (near-uniform fan-out, near-constant size across
    heights).
    """
    if target_elements < 64:
        raise ReproError("target too small for a height-6 shape")
    shapes: dict[int, list[int]] = {}
    for height in range(2, 7):
        levels = height - 1
        base = round(target_elements ** (1.0 / levels))
        fanouts = [max(2, base)] * levels
        # Nudge the deepest levels up/down to land near the target, the way
        # Table 2 uses 41,41,42,42 rather than a uniform value.
        def count(fs: list[int]) -> int:
            return level_fanout_element_count(fs)

        for index in range(levels - 1, -1, -1):
            while count(fanouts) < target_elements:
                fanouts[index] += 1
            while fanouts[index] > 2 and count(fanouts) > target_elements:
                fanouts[index] -= 1
        shapes[height] = fanouts
    return shapes
