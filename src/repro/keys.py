"""Ordering criteria for XML sorting.

A fully sorted document orders the children of *every* non-leaf element
under a criterion chosen per element (Figure 1: regions by ``name``,
branches by ``name``, employees by ``ID``).  A :class:`SortSpec` carries one
:class:`KeyRule` per tag plus a default.

Rules come in two flavours, mirroring the paper:

* **start-computable** (Section 3: "simple ordering criteria that can be
  evaluated for each element using its tag name and/or attribute values") -
  :class:`ByAttribute`, :class:`ByTag`, :class:`DocumentOrder`.  The key is
  known the moment the start tag is scanned.
* **subtree-evaluated** (Section 3.2, "complex ordering criteria") -
  :class:`ByText`, :class:`ByChildPath` (e.g. order employees by
  ``personalInfo/name/lastName``).  The key requires a single pass over the
  element's subtree; by the time the end tag is scanned the key is ready and
  travels on the end tag, exactly as the paper's augmented path stack does.

Keys are made unique among siblings by appending the element's document
position ("if not [unique], we can make it unique by appending it with the
element's location in the input"), which also makes every sort stable.

:class:`KeyEvaluator` is the streaming annotator NEXSORT runs during its
scan; it implements the paper's path-stack augmentation for subtree
expressions with one small state machine per open element that needs one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from .errors import SortSpecError
from .xml.model import Element
from .xml.tokens import (
    EndTag,
    KeyAtom,
    MISSING_KEY,
    StartTag,
    Text,
    Token,
    coerce_key,
    string_key,
)


class KeyRule:
    """Base class: how to compute one element's sort key."""

    #: True when the key is known from the start tag alone.
    start_computable = False

    def key_from_start(self, start: StartTag) -> KeyAtom:
        """Key from the start tag (start-computable rules only)."""
        raise SortSpecError(
            f"{type(self).__name__} cannot compute keys from a start tag"
        )

    def key_of_element(self, element: Element) -> KeyAtom:
        """Key from a materialized element (oracle / in-memory path)."""
        raise NotImplementedError


@dataclass(frozen=True)
class ByAttribute(KeyRule):
    """Order by an attribute value (``order region by name``).

    Args:
        attribute: attribute name.
        numeric_coercion: interpret numeric-looking values as numbers, so
            ``ID="454"`` sorts numerically.
        missing_uses_tag: elements without the attribute key by their tag
            name instead of the MISSING atom - the convention of the
            paper's Table 1, where ``<name>`` and ``<phone>`` contribute
            their tags to the key path.
    """

    attribute: str
    numeric_coercion: bool = True
    missing_uses_tag: bool = False
    start_computable = True

    def key_from_start(self, start: StartTag) -> KeyAtom:
        return self._atom(start.attr(self.attribute), start.tag)

    def key_of_element(self, element: Element) -> KeyAtom:
        return self._atom(element.attrs.get(self.attribute), element.tag)

    def _atom(self, value: str | None, tag: str) -> KeyAtom:
        if value is None:
            if self.missing_uses_tag:
                return string_key(tag)
            return MISSING_KEY
        return coerce_key(value) if self.numeric_coercion else string_key(
            value
        )


@dataclass(frozen=True)
class ByAttributes(KeyRule):
    """Order by several attributes at once (a composite key).

    The component values are joined into one string atom with an
    unprintable separator, so the composite orders lexicographically by
    attribute priority.  Useful when an element's identity spans more
    than one attribute - e.g. the archiving application keys readings by
    ``(name, value)`` so a changed value is a *different* element, the
    deterministic-model convention of Buneman et al.
    """

    attributes: tuple[str, ...]
    start_computable = True

    def key_from_start(self, start: StartTag) -> KeyAtom:
        return self._atom(
            [start.attr(name) for name in self.attributes]
        )

    def key_of_element(self, element: Element) -> KeyAtom:
        return self._atom(
            [element.attrs.get(name) for name in self.attributes]
        )

    @staticmethod
    def _atom(values: list[str | None]) -> KeyAtom:
        if all(value is None for value in values):
            return MISSING_KEY
        return string_key(
            "\x1f".join(value if value is not None else "" for value in values)
        )


@dataclass(frozen=True)
class ByTag(KeyRule):
    """Order children by their tag name."""

    start_computable = True

    def key_from_start(self, start: StartTag) -> KeyAtom:
        return string_key(start.tag)

    def key_of_element(self, element: Element) -> KeyAtom:
        return string_key(element.tag)


@dataclass(frozen=True)
class DocumentOrder(KeyRule):
    """Keep children in their original document order.

    Every key is MISSING; the position tie-break preserves input order.
    This is the rule behind the paper's remark that merge "can be adapted to
    preserve the original document ordering (by recording an additional
    sequence number ...)".
    """

    start_computable = True

    def key_from_start(self, start: StartTag) -> KeyAtom:
        return MISSING_KEY

    def key_of_element(self, element: Element) -> KeyAtom:
        return MISSING_KEY


@dataclass(frozen=True)
class ByText(KeyRule):
    """Order by the element's own text content (a subtree expression)."""

    numeric_coercion: bool = True

    def key_of_element(self, element: Element) -> KeyAtom:
        if not element.text:
            return MISSING_KEY
        return (
            coerce_key(element.text)
            if self.numeric_coercion
            else string_key(element.text)
        )


@dataclass(frozen=True)
class ByChildPath(KeyRule):
    """Order by the text of a descendant reached via a child-tag path.

    The paper's example: order employee elements by
    ``personalInfo/name/lastName``.  Evaluable in a single pass over the
    subtree with constant space, which is exactly the class of expressions
    Section 3.2 supports.
    """

    path: str
    numeric_coercion: bool = True

    def steps(self) -> tuple[str, ...]:
        steps = tuple(step for step in self.path.split("/") if step)
        if not steps:
            raise SortSpecError(f"empty child path {self.path!r}")
        return steps

    def key_of_element(self, element: Element) -> KeyAtom:
        target = element.find_path("/".join(self.steps()))
        if target is None or not target.text:
            return MISSING_KEY
        return (
            coerce_key(target.text)
            if self.numeric_coercion
            else string_key(target.text)
        )


class SortSpec:
    """Per-tag ordering rules with a default.

    Args:
        default: rule for tags without a specific rule.
        rules: mapping of tag name to rule.
    """

    def __init__(
        self,
        default: KeyRule | None = None,
        rules: dict[str, KeyRule] | None = None,
    ):
        self.default = default if default is not None else DocumentOrder()
        self.rules = dict(rules) if rules else {}

    @classmethod
    def by_attribute(cls, attribute: str, **tag_attributes: str) -> "SortSpec":
        """Shorthand: default ByAttribute, plus per-tag attribute overrides.

        ``SortSpec.by_attribute("name", employee="ID")`` orders everything
        by ``name`` except employees, ordered by ``ID`` - the Figure 1 spec.
        Elements missing the attribute key by their tag, as in Table 1.
        """
        rules = {
            tag: ByAttribute(attr, missing_uses_tag=True)
            for tag, attr in tag_attributes.items()
        }
        return cls(
            default=ByAttribute(attribute, missing_uses_tag=True),
            rules=rules,
        )

    @classmethod
    def parse(cls, text: str, missing_uses_tag: bool = True) -> "SortSpec":
        """Build a spec from a compact clause syntax.

        Comma-separated ``selector=expression`` clauses; ``*`` (or an
        omitted selector) sets the default rule.  Expressions:

        * ``@attr``                - order by an attribute
        * ``@a+@b``                - composite attribute key
        * ``text()``               - order by the element's text
        * ``tag()``                - order by the tag name
        * ``document()``           - keep document order
        * ``path/to/elem``         - order by a descendant's text
          (the paper's ``personalInfo/name/lastName`` example)

        Example::

            SortSpec.parse("*=@name, employee=@ID, note=text()")
        """
        default: KeyRule | None = None
        rules: dict[str, KeyRule] = {}
        for clause in text.split(","):
            clause = clause.strip()
            if not clause:
                continue
            if "=" in clause:
                selector, expression = clause.split("=", 1)
                selector = selector.strip()
            else:
                selector, expression = "*", clause
            rule = cls._parse_rule(
                expression.strip(), missing_uses_tag
            )
            if selector in ("*", ""):
                default = rule
            else:
                rules[selector] = rule
        return cls(default=default, rules=rules)

    @staticmethod
    def _parse_rule(expression: str, missing_uses_tag: bool) -> KeyRule:
        if not expression:
            raise SortSpecError("empty ordering expression")
        if expression == "text()":
            return ByText()
        if expression == "tag()":
            return ByTag()
        if expression == "document()":
            return DocumentOrder()
        if expression.startswith("@"):
            names = [part.strip() for part in expression.split("+")]
            if any(not name.startswith("@") or len(name) < 2
                   for name in names):
                raise SortSpecError(
                    f"bad attribute expression {expression!r}"
                )
            if len(names) == 1:
                return ByAttribute(
                    names[0][1:], missing_uses_tag=missing_uses_tag
                )
            return ByAttributes(tuple(name[1:] for name in names))
        if "(" in expression or ")" in expression:
            raise SortSpecError(
                f"unknown ordering expression {expression!r}"
            )
        rule = ByChildPath(expression)
        name_start = set(
            "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz_:"
        )
        for step in rule.steps():
            if step[0] not in name_start:
                raise SortSpecError(
                    f"bad child-path step {step!r} in {expression!r}"
                )
        return rule

    def rule_for(self, tag: str) -> KeyRule:
        return self.rules.get(tag, self.default)

    @property
    def start_computable(self) -> bool:
        """True when every rule is evaluable from start tags alone."""
        rules = [self.default, *self.rules.values()]
        return all(rule.start_computable for rule in rules)

    def key_of_element(self, element: Element) -> KeyAtom:
        return self.rule_for(element.tag).key_of_element(element)

    def element_order(self, children: Iterable[Element]) -> list[Element]:
        """Children sorted under this spec (stable)."""
        return sorted(children, key=self.key_of_element)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SortSpec(default={self.default!r}, rules={self.rules!r})"


class _PathMatchState:
    """Single-pass evaluator for one open element's ByChildPath rule."""

    __slots__ = ("steps", "progress", "capturing", "value", "numeric")

    def __init__(self, rule: ByChildPath):
        self.steps = rule.steps()
        self.progress = 0
        self.capturing = False
        self.value: str | None = None
        self.numeric = rule.numeric_coercion

    def enter(self, tag: str, relative_depth: int) -> bool:
        """A descendant opened at 1-based depth below the rule's element.

        Returns True if this element advanced the match (so ``leave`` must
        be called when it closes).
        """
        if self.value is not None:
            return False
        if relative_depth != self.progress + 1:
            return False
        if self.steps[self.progress] != tag:
            return False
        self.progress += 1
        self.capturing = self.progress == len(self.steps)
        return True

    def leave(self) -> None:
        self.progress -= 1
        self.capturing = False

    def text(self, content: str) -> None:
        if self.capturing and self.value is None:
            self.value = content

    def key(self) -> KeyAtom:
        if self.value is None:
            return MISSING_KEY
        return coerce_key(self.value) if self.numeric else string_key(
            self.value
        )


class _Frame:
    """Per-open-element state during streaming key evaluation."""

    __slots__ = (
        "tag",
        "pos",
        "rule",
        "start",
        "own_text",
        "matcher",
        "advanced",
    )

    def __init__(self, tag: str, pos: int, rule: KeyRule, start: StartTag):
        self.tag = tag
        self.pos = pos
        self.rule = rule
        self.start = start
        self.own_text: list[str] = []
        self.matcher = (
            _PathMatchState(rule) if isinstance(rule, ByChildPath) else None
        )
        # Which ancestor matchers this element advanced (to undo on close).
        self.advanced: list[_PathMatchState] = []


class KeyEvaluator:
    """Streams events, attaching positions and sort keys.

    Start tags always receive ``pos`` (preorder index) and ``level``; when
    the spec is start-computable they also receive ``key``.  End tags
    receive ``pos`` and, for subtree-evaluated specs, the element's ``key``
    (evaluated by the single pass, per Section 3.2).
    """

    def __init__(self, spec: SortSpec):
        self.spec = spec
        self._start_computable = spec.start_computable

    def annotate(self, events: Iterable[Token]) -> Iterator[Token]:
        frames: list[_Frame] = []
        next_pos = 0
        for event in events:
            if isinstance(event, StartTag):
                pos = next_pos
                next_pos += 1
                frame = _Frame(
                    event.tag, pos, self.spec.rule_for(event.tag), event
                )
                # Advance ancestor ByChildPath matchers.
                for depth_below, ancestor in enumerate(
                    reversed(frames), start=1
                ):
                    matcher = ancestor.matcher
                    if matcher is not None and matcher.enter(
                        event.tag, depth_below
                    ):
                        frame.advanced.append(matcher)
                frames.append(frame)
                key = None
                if self._start_computable:
                    key = frame.rule.key_from_start(event)
                yield event.with_annotations(
                    key=key, pos=pos, level=len(frames)
                )
            elif isinstance(event, Text):
                if frames:
                    frames[-1].own_text.append(event.text)
                    for frame in frames:
                        if frame.matcher is not None:
                            frame.matcher.text(event.text)
                yield event
            elif isinstance(event, EndTag):
                frame = frames.pop()
                for matcher in frame.advanced:
                    matcher.leave()
                key = None
                if not self._start_computable:
                    key = self._end_key(frame)
                yield EndTag(event.tag, key=key, pos=frame.pos)
            else:
                raise SortSpecError(
                    f"unexpected token during key evaluation: {event!r}"
                )

    def _end_key(self, frame: _Frame) -> KeyAtom:
        rule = frame.rule
        if rule.start_computable:
            # Mixed spec: this rule could have keyed the start, but the
            # spec as a whole is end-keyed, so the key travels on the end.
            return rule.key_from_start(frame.start)
        if isinstance(rule, ByChildPath):
            assert frame.matcher is not None
            return frame.matcher.key()
        if isinstance(rule, ByText):
            text = "".join(frame.own_text)
            if not text:
                return MISSING_KEY
            return (
                coerce_key(text)
                if rule.numeric_coercion
                else string_key(text)
            )
        raise SortSpecError(f"rule {rule!r} cannot be evaluated at end tag")
