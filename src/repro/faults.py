"""Deterministic fault injection and checkpointed recovery for sorts.

The paper's cost model assumes every I/O succeeds; a production-scale
external sort cannot.  This module adds the robustness layer without
bending the model:

* :class:`FaultPlan` - a declarative, seeded description of which device
  accesses fail: "the Nth read", "every write from the Mth on", "the Kth
  vectored write tears", "0.1% of accesses, seeded".  Plans parse from a
  compact string (``repro sort --faults "read@5;write@12:persistent"``).
* :class:`FaultInjector` - a device-shaped wrapper that counts access
  *attempts* and raises :class:`~repro.errors.DeviceFault` where the plan
  says so.  Failed attempts charge **nothing** to :class:`IOStats` - the
  model counts successful block transfers, so a sort that recovers ends
  with counters bit-identical to a fault-free run.
* :class:`RetryPolicy` / :class:`RetryingDevice` - bounded retries with
  exponential backoff charged to the *simulated* clock
  (:meth:`IOStats.record_penalty`), never wall time.
* :class:`Checkpoint` / :class:`RecoveryContext` - run-granular recovery:
  the merge engine and the NEXSORT subtree sorter record a checkpoint
  after every completed run, and restartable units (one merge group, one
  subtree sort) re-run from their inputs when a transient fault escapes
  the retry layer.  Device-level *recovery holds*
  (:meth:`BlockDevice.push_hold`) keep the inputs a failed attempt
  already freed restorable.  Persistent faults (and exhausted budgets)
  surface as :class:`~repro.errors.SortRecoveryError` naming the last
  completed checkpoint.

Determinism: a plan is a pure function of its rules, its seed, and the
device-call sequence, so the same configuration faults - and recovers -
identically on every run.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field

from .errors import DeviceFault, FaultPlanError, SortRecoveryError

#: Operations a fault rule can target.  ``torn`` counts vectored writes
#: (``write_blocks`` calls moving 2+ blocks), not individual blocks.
FAULT_OPS = ("read", "write", "torn")


@dataclass(frozen=True)
class FaultRule:
    """One deterministic fault: attempts ``nth .. nth+count-1`` fail.

    Attributes:
        op: "read", "write", or "torn".
        nth: 1-based attempt index at which the fault starts firing.
        count: how many consecutive attempts fail (transient rules only;
            persistent rules fail every attempt from ``nth`` on).
        transient: whether retrying can succeed.
        category: restrict the rule to one accounting category (and count
            attempts within that category); None counts device-wide.
        disk: restrict the rule to one member disk of a striped device
            (``read@3:disk=2`` fails the 3rd read attempt that touches
            disk 2); attempts are counted among accesses touching that
            disk.  None counts across all disks.
    """

    op: str
    nth: int
    count: int = 1
    transient: bool = True
    category: str | None = None
    disk: int | None = None

    def __post_init__(self):
        if self.op not in FAULT_OPS:
            raise FaultPlanError(f"unknown fault op {self.op!r}")
        if self.nth < 1:
            raise FaultPlanError(f"fault attempt index must be >= 1: {self.nth}")
        if self.count < 1:
            raise FaultPlanError(f"fault count must be >= 1: {self.count}")
        if self.disk is not None and self.disk < 0:
            raise FaultPlanError(f"fault disk cannot be negative: {self.disk}")

    def covers(self, attempt: int) -> bool:
        """Does this rule fail the given 1-based attempt index?"""
        if attempt < self.nth:
            return False
        return not self.transient or attempt < self.nth + self.count


_CLAUSE = re.compile(
    r"(?P<op>read|write|torn)@(?P<nth>\d+)(?:\*(?P<count>\d+))?"
    r"(?P<suffixes>(?::[A-Za-z_][\w.=-]*)*)"
)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic set of fault rules plus a random fault rate.

    ``rate`` injects *transient* faults on read/write attempts with the
    given probability, drawn from ``random.Random(seed)`` - one draw per
    device call, so the fault sequence is a deterministic function of the
    plan and the access sequence.
    """

    rules: tuple[FaultRule, ...] = ()
    rate: float = 0.0
    seed: int = 0

    def __post_init__(self):
        if not 0.0 <= self.rate < 1.0:
            raise FaultPlanError(f"fault rate must be in [0, 1): {self.rate}")

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the ``--faults`` mini-language.

        Clauses are separated by ``;`` or ``,``:

        * ``read@5`` - the 5th read attempt fails (transient, once).
        * ``write@3*4`` - write attempts 3-6 fail (transient).
        * ``read@7:persistent`` - every read attempt from the 7th on fails.
        * ``write@2:run_write`` - the 2nd ``run_write`` write fails; the
          attempt counter is scoped to that category.
        * ``read@4:disk=2`` - the 4th read attempt touching member disk 2
          of a striped device fails; the counter is scoped to that disk
          (combinable with a category: ``read@4:run_read:disk=2``).
        * ``torn@1`` - the 1st vectored write tears: a prefix of its
          blocks is persisted, then the call fails (transient).
        * ``rate=0.001`` / ``seed=42`` - seeded random transient faults.
        """
        rules: list[FaultRule] = []
        rate = 0.0
        seed = 0
        for raw in re.split(r"[;,]", text):
            clause = raw.strip()
            if not clause:
                continue
            if clause.startswith("rate="):
                try:
                    rate = float(clause[5:])
                except ValueError:
                    raise FaultPlanError(f"bad fault rate {clause!r}") from None
                continue
            if clause.startswith("seed="):
                try:
                    seed = int(clause[5:])
                except ValueError:
                    raise FaultPlanError(f"bad fault seed {clause!r}") from None
                continue
            match = _CLAUSE.fullmatch(clause)
            if match is None:
                raise FaultPlanError(
                    f"bad fault clause {clause!r} (expected e.g. 'read@5', "
                    f"'write@3*2:persistent', 'torn@1', 'rate=0.01', "
                    f"'seed=42')"
                )
            transient = True
            category: str | None = None
            disk: int | None = None
            for suffix in match["suffixes"].split(":"):
                if not suffix:
                    continue
                if suffix == "persistent":
                    transient = False
                elif suffix == "transient":
                    transient = True
                elif suffix.startswith("disk="):
                    if disk is not None:
                        raise FaultPlanError(
                            f"fault clause {clause!r} names two disks"
                        )
                    try:
                        disk = int(suffix[5:])
                    except ValueError:
                        raise FaultPlanError(
                            f"bad fault disk in clause {clause!r}"
                        ) from None
                else:
                    if category is not None:
                        raise FaultPlanError(
                            f"fault clause {clause!r} names two categories"
                        )
                    category = suffix
            rules.append(
                FaultRule(
                    op=match["op"],
                    nth=int(match["nth"]),
                    count=int(match["count"] or 1),
                    transient=transient,
                    category=category,
                    disk=disk,
                )
            )
        return cls(rules=tuple(rules), rate=rate, seed=seed)

    def describe(self) -> str:
        parts = []
        for rule in self.rules:
            clause = f"{rule.op}@{rule.nth}"
            if rule.count > 1:
                clause += f"*{rule.count}"
            if not rule.transient:
                clause += ":persistent"
            if rule.category:
                clause += f":{rule.category}"
            if rule.disk is not None:
                clause += f":disk={rule.disk}"
            parts.append(clause)
        if self.rate:
            parts.append(f"rate={self.rate}")
            parts.append(f"seed={self.seed}")
        return ";".join(parts) if parts else "<empty>"


@dataclass
class FaultStats:
    """What a :class:`FaultInjector` did - wrapper-level, not IOStats."""

    injected: int = 0
    transient: int = 0
    persistent: int = 0
    torn: int = 0
    by_op: dict[str, int] = field(default_factory=dict)

    def note(self, op: str, transient: bool, torn: bool) -> None:
        self.injected += 1
        if transient:
            self.transient += 1
        else:
            self.persistent += 1
        if torn:
            self.torn += 1
        self.by_op[op] = self.by_op.get(op, 0) + 1


class _DeviceProxy:
    """Delegates the full device surface to a wrapped device.

    Both fault-layer wrappers are device-shaped, so they can sit anywhere
    a :class:`~repro.io.device.BlockDevice` can: under a
    :class:`~repro.io.bufferpool.BufferPool`, inside a
    :class:`~repro.io.runs.RunStore`, behind an
    :class:`~repro.io.stacks.ExternalStack`.
    """

    def __init__(self, device):
        self._device = device

    @property
    def device(self):
        """The wrapped device (possibly itself a wrapper)."""
        return self._device

    @property
    def block_size(self) -> int:
        return self._device.block_size

    @property
    def stats(self):
        return self._device.stats

    @property
    def allocated_blocks(self) -> int:
        return self._device.allocated_blocks

    @property
    def occupied_blocks(self) -> int:
        return self._device.occupied_blocks

    def allocate(self, count: int = 1, pool: str = "default") -> int:
        return self._device.allocate(count, pool)

    def bytes_to_blocks(self, nbytes: int) -> int:
        return self._device.bytes_to_blocks(nbytes)

    def free_blocks(self, block_ids) -> None:
        self._device.free_blocks(block_ids)

    def read_block(self, block_id, category="other", stream=None):
        return self._device.read_block(block_id, category, stream=stream)

    def write_block(self, block_id, data, category="other", stream=None):
        self._device.write_block(block_id, data, category, stream=stream)

    def read_blocks(self, block_ids, category="other", stream=None):
        return self._device.read_blocks(block_ids, category, stream=stream)

    def write_blocks(self, block_ids, datas, category="other", stream=None):
        self._device.write_blocks(block_ids, datas, category, stream=stream)

    # Recovery-hold surface (see BlockDevice.push_hold).

    @property
    def holding(self) -> bool:
        return self._device.holding

    def push_hold(self) -> None:
        self._device.push_hold()

    def pop_hold(self, restore: bool) -> None:
        self._device.pop_hold(restore)

    def stash_block(self, block_id, data) -> None:
        self._device.stash_block(block_id, data)

    def store_block_raw(self, block_id, data) -> None:
        self._device.store_block_raw(block_id, data)

    # Parallel-disk surface (see repro.io.parallel).

    @property
    def disks(self) -> int:
        return getattr(self._device, "disks", 1)

    @property
    def prefetch_depth(self) -> int:
        return getattr(self._device, "prefetch_depth", 0)

    @property
    def prefetch_policy(self):
        return getattr(self._device, "prefetch_policy", None)

    def disk_of(self, block_id) -> int:
        disk_of = getattr(self._device, "disk_of", None)
        return disk_of(block_id) if disk_of is not None else 0

    def prefetch_blocks(self, block_ids, category="other", stream=None):
        prefetch = getattr(self._device, "prefetch_blocks", None)
        if prefetch is None:
            return 0
        return prefetch(block_ids, category, stream=stream)

    def write_block_behind(self, block_id, data, category="other", stream=None):
        behind = getattr(
            self._device, "write_block_behind", self._device.write_block
        )
        behind(block_id, data, category, stream=stream)


class FaultInjector(_DeviceProxy):
    """Raises :class:`DeviceFault` where a :class:`FaultPlan` says so.

    Attempts are counted per op, both device-wide and per category, and a
    failed attempt still advances the counters - so "the 5th read" means
    the 5th *attempt*, whether or not earlier attempts succeeded, and a
    retried access occupies a fresh attempt index.  Failed attempts never
    touch :class:`IOStats`: only the eventually successful access is
    charged, keeping recovered runs bit-identical to fault-free ones.

    A vectored access of ``k`` blocks advances the op counter by ``k``
    (it *is* ``k`` block transfers) and fails whole if any of its attempt
    indices is covered by a rule.  Vectored writes of 2+ blocks
    additionally advance the ``torn`` counter by one call; a torn fault
    persists the first half of the blocks (uncounted) before failing.
    """

    def __init__(self, device, plan: FaultPlan, tracer=None):
        super().__init__(device)
        self.plan = plan
        self.fault_stats = FaultStats()
        self._tracer = tracer
        self._rng = random.Random(plan.seed)
        # Attempt counters keyed (op, category scope, disk scope); the
        # per-disk counters only exist when the plan has disk-scoped
        # rules, so plain plans pay nothing for the striping support.
        self._attempts: dict[tuple[str, str | None, int | None], int] = {}
        self._disk_scoped = any(r.disk is not None for r in plan.rules)

    # -- attempt counting --------------------------------------------------

    def _disk_counts(self, block_ids) -> dict[int, int]:
        """Blocks per member disk, for disk-scoped attempt counting."""
        if not self._disk_scoped or not block_ids:
            return {}
        disk_of = getattr(self._device, "disk_of", None)
        counts: dict[int, int] = {}
        for block_id in block_ids:
            disk = disk_of(block_id) if disk_of is not None else 0
            counts[disk] = counts.get(disk, 0) + 1
        return counts

    def _advance(
        self,
        op: str,
        category: str,
        count: int,
        disk_counts: dict[int, int],
    ):
        """Advance counters; return per-rule-scope attempt ranges.

        The returned map is keyed ``(category scope, disk scope)``; a
        disk-scoped rule whose disk this access never touched simply has
        no entry, so it cannot fire.
        """
        ranges = {}
        for cat_scope in (None, category):
            key = (op, cat_scope, None)
            start = self._attempts.get(key, 0)
            self._attempts[key] = start + count
            ranges[(cat_scope, None)] = (start + 1, start + count)
            for disk, disk_count in disk_counts.items():
                disk_key = (op, cat_scope, disk)
                disk_start = self._attempts.get(disk_key, 0)
                self._attempts[disk_key] = disk_start + disk_count
                ranges[(cat_scope, disk)] = (
                    disk_start + 1,
                    disk_start + disk_count,
                )
        return ranges

    def _check(
        self, op: str, category: str, count: int = 1, block_ids=None
    ) -> None:
        ranges = self._advance(
            op, category, count, self._disk_counts(block_ids)
        )
        for rule in self.plan.rules:
            if rule.op != op:
                continue
            if rule.category is not None and rule.category != category:
                continue
            scope = (rule.category, rule.disk)
            if scope not in ranges:
                continue
            first, last = ranges[scope]
            for attempt in range(first, last + 1):
                if rule.covers(attempt):
                    self._fault(
                        op, category, attempt, rule.transient,
                        disk=rule.disk,
                    )
        if self.plan.rate and op in ("read", "write"):
            if self._rng.random() < self.plan.rate:
                self._fault(op, category, ranges[(None, None)][1], True)

    def _fault(
        self,
        op: str,
        category: str,
        attempt: int,
        transient: bool,
        torn: bool = False,
        disk: int | None = None,
    ) -> None:
        kind = "transient" if transient else "persistent"
        label = "torn " if torn else ""
        self.fault_stats.note(op, transient, torn)
        if self._tracer is not None and not self._tracer.finished:
            self._tracer.event(
                "fault-injected",
                op=op,
                category=category,
                attempt=attempt,
                transient=transient,
                torn=torn,
                disk=disk,
            )
        where = f"category={category}"
        if disk is not None:
            where += f", disk={disk}"
        raise DeviceFault(
            f"injected {kind} {label}{op} fault at attempt {attempt} "
            f"({where})",
            op=op,
            category=category,
            transient=transient,
            torn=torn,
            attempt=attempt,
            disk=disk,
        )

    # -- faulting access paths ---------------------------------------------

    def read_block(self, block_id, category="other", stream=None):
        self._check("read", category, 1, [block_id])
        return self._device.read_block(block_id, category, stream=stream)

    def read_blocks(self, block_ids, category="other", stream=None):
        block_ids = list(block_ids)
        if block_ids:
            self._check("read", category, len(block_ids), block_ids)
        return self._device.read_blocks(block_ids, category, stream=stream)

    def prefetch_blocks(self, block_ids, category="other", stream=None):
        # Prefetch reads are read attempts: injected read faults hit the
        # pipeline exactly as they would hit the demand read it replaces.
        block_ids = list(block_ids)
        if block_ids:
            self._check("read", category, len(block_ids), block_ids)
        prefetch = getattr(self._device, "prefetch_blocks", None)
        if prefetch is None:
            return 0
        return prefetch(block_ids, category, stream=stream)

    def write_block(self, block_id, data, category="other", stream=None):
        self._check("write", category, 1, [block_id])
        self._device.write_block(block_id, data, category, stream=stream)

    def write_block_behind(self, block_id, data, category="other", stream=None):
        self._check("write", category, 1, [block_id])
        behind = getattr(
            self._device, "write_block_behind", self._device.write_block
        )
        behind(block_id, data, category, stream=stream)

    def write_blocks(self, block_ids, datas, category="other", stream=None):
        block_ids = list(block_ids)
        datas = list(datas)
        if len(block_ids) >= 2:
            self._check_torn(block_ids, datas, category)
        if block_ids:
            self._check("write", category, len(block_ids), block_ids)
        self._device.write_blocks(block_ids, datas, category, stream=stream)

    def _check_torn(self, block_ids, datas, category) -> None:
        # One torn attempt per call; disk scopes count a call once per
        # member disk it touches.
        torn_counts = {
            disk: 1 for disk in self._disk_counts(block_ids)
        }
        ranges = self._advance("torn", category, 1, torn_counts)
        for rule in self.plan.rules:
            if rule.op != "torn":
                continue
            if rule.category is not None and rule.category != category:
                continue
            scope = (rule.category, rule.disk)
            if scope not in ranges:
                continue
            attempt = ranges[scope][0]
            if rule.covers(attempt):
                # Tear: persist a prefix (uncounted), then fail the call.
                prefix = len(block_ids) // 2
                for block_id, data in zip(block_ids[:prefix], datas[:prefix]):
                    self._device.store_block_raw(block_id, data)
                self._fault(
                    "torn", category, attempt, rule.transient, torn=True,
                    disk=rule.disk,
                )


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff on the simulated clock.

    The nth retry of one access waits ``backoff_seconds * multiplier**n``
    simulated seconds (n = 0 for the first retry), charged via
    :meth:`IOStats.record_penalty` - it advances the simulated clock but
    not the model counters, so recovery never distorts the paper's I/O
    accounting.
    """

    max_retries: int = 3
    backoff_seconds: float = 8e-3
    multiplier: float = 2.0

    def __post_init__(self):
        if self.max_retries < 0:
            raise FaultPlanError(
                f"max_retries cannot be negative: {self.max_retries}"
            )
        if self.backoff_seconds < 0:
            raise FaultPlanError(
                f"backoff cannot be negative: {self.backoff_seconds}"
            )

    def delay(self, retry_index: int) -> float:
        return self.backoff_seconds * self.multiplier**retry_index


@dataclass
class RetryStats:
    """What a :class:`RetryingDevice` did."""

    retries: int = 0
    penalty_seconds: float = 0.0
    exhausted: int = 0


class RetryingDevice(_DeviceProxy):
    """Absorbs transient :class:`DeviceFault`\\ s by retrying the access.

    Persistent faults, and transient faults still failing after
    ``policy.max_retries`` retries, are re-raised to the caller (where a
    :class:`RecoveryContext`, if active, takes over).  Each retry emits a
    deterministic ``io-retry`` trace event and charges its backoff to the
    simulated clock.
    """

    def __init__(self, device, policy: RetryPolicy | None = None, tracer=None):
        super().__init__(device)
        self.policy = policy or RetryPolicy()
        self.retry_stats = RetryStats()
        self._tracer = tracer

    def _with_retries(self, op: str, category: str, fn):
        retry = 0
        while True:
            try:
                return fn()
            except DeviceFault as fault:
                if not fault.transient:
                    raise
                if retry >= self.policy.max_retries:
                    self.retry_stats.exhausted += 1
                    raise
                delay = self.policy.delay(retry)
                self.stats.record_penalty(delay)
                self.retry_stats.retries += 1
                self.retry_stats.penalty_seconds += delay
                retry += 1
                if self._tracer is not None and not self._tracer.finished:
                    self._tracer.event(
                        "io-retry",
                        op=op,
                        category=category,
                        retry=retry,
                        backoff=delay,
                    )

    def read_block(self, block_id, category="other", stream=None):
        return self._with_retries(
            "read",
            category,
            lambda: self._device.read_block(block_id, category, stream=stream),
        )

    def read_blocks(self, block_ids, category="other", stream=None):
        block_ids = list(block_ids)
        return self._with_retries(
            "read",
            category,
            lambda: self._device.read_blocks(
                block_ids, category, stream=stream
            ),
        )

    def prefetch_blocks(self, block_ids, category="other", stream=None):
        block_ids = list(block_ids)
        prefetch = getattr(self._device, "prefetch_blocks", None)
        if prefetch is None:
            return 0
        return self._with_retries(
            "read",
            category,
            lambda: prefetch(block_ids, category, stream=stream),
        )

    def write_block(self, block_id, data, category="other", stream=None):
        self._with_retries(
            "write",
            category,
            lambda: self._device.write_block(
                block_id, data, category, stream=stream
            ),
        )

    def write_block_behind(self, block_id, data, category="other", stream=None):
        behind = getattr(
            self._device, "write_block_behind", self._device.write_block
        )
        self._with_retries(
            "write",
            category,
            lambda: behind(block_id, data, category, stream=stream),
        )

    def write_blocks(self, block_ids, datas, category="other", stream=None):
        block_ids = list(block_ids)
        datas = list(datas)
        self._with_retries(
            "write",
            category,
            lambda: self._device.write_blocks(
                block_ids, datas, category, stream=stream
            ),
        )


# -- checkpointed recovery ----------------------------------------------------


@dataclass(frozen=True)
class Checkpoint:
    """One completed, durable unit of sort work.

    Attributes:
        phase: which engine recorded it ("run-formation", "merge-pass-2",
            "subtree-sort"...).
        unit: 0-based index of the unit within its phase.
        run_id: the completed run, when the unit produced one.
    """

    phase: str
    unit: int
    run_id: int | None = None

    def describe(self) -> str:
        base = f"{self.phase}#{self.unit}"
        if self.run_id is not None:
            base += f" (run {self.run_id})"
        return base


class RecoveryContext:
    """Run-granular checkpointing and restart for one sort.

    Thread one instance through a sort (like a tracer).  Engines call
    :meth:`checkpoint` after each completed run and wrap restartable
    units in :meth:`attempt`; when a transient fault escapes the
    I/O-level retries, the failed unit re-runs from its inputs - a device
    *recovery hold* keeps inputs the failed attempt freed restorable -
    instead of the sort redoing its ``O(n log_m n)`` work from scratch.
    Persistent faults and exhausted budgets raise
    :class:`SortRecoveryError` naming the last completed checkpoint.
    """

    def __init__(self, max_restarts: int = 4, tracer=None):
        if max_restarts < 0:
            raise FaultPlanError(
                f"max_restarts cannot be negative: {max_restarts}"
            )
        self.max_restarts = max_restarts
        self.restarts = 0
        self.checkpoints: list[Checkpoint] = []
        self._tracer = tracer

    @property
    def last(self) -> Checkpoint | None:
        return self.checkpoints[-1] if self.checkpoints else None

    def describe_last(self) -> str:
        return self.last.describe() if self.last else "no completed checkpoint"

    def checkpoint(
        self, phase: str, unit: int, run_id: int | None = None
    ) -> Checkpoint:
        mark = Checkpoint(phase=phase, unit=unit, run_id=run_id)
        self.checkpoints.append(mark)
        if self._tracer is not None and not self._tracer.finished:
            self._tracer.event(
                "checkpoint", phase=phase, unit=unit, run=run_id
            )
        return mark

    def to_error(self, fault: DeviceFault) -> SortRecoveryError:
        kind = "persistent device fault" if not fault.transient else (
            "unrecovered transient device fault"
        )
        return SortRecoveryError(
            f"sort failed: {kind} ({fault}); last completed checkpoint: "
            f"{self.describe_last()}",
            checkpoint=self.last,
        )

    def attempt(self, phase: str, unit: int, fn, device=None):
        """Run ``fn`` with restart-on-transient-fault semantics.

        With ``device`` given, each try runs under a recovery hold so
        inputs freed by a failed try are restored for the next one.
        ``fn`` must be re-runnable from its (held) inputs and must clean
        up its own partial output on failure (e.g.
        :meth:`RunWriter.abandon`).
        """
        while True:
            if device is not None:
                device.push_hold()
            try:
                result = fn()
            except DeviceFault as fault:
                if device is not None:
                    device.pop_hold(restore=True)
                if not fault.transient or self.restarts >= self.max_restarts:
                    raise self.to_error(fault) from fault
                self.restarts += 1
                if self._tracer is not None and not self._tracer.finished:
                    self._tracer.event(
                        "unit-restart",
                        phase=phase,
                        unit=unit,
                        restart=self.restarts,
                    )
                continue
            except BaseException:
                if device is not None:
                    device.pop_hold(restore=False)
                raise
            else:
                if device is not None:
                    device.pop_hold(restore=False)
                return result


def build_faulty_device(
    device,
    plan: FaultPlan | str | None,
    retries: int = 0,
    policy: RetryPolicy | None = None,
    tracer=None,
):
    """Wrap ``device`` per the plan; returns (top device, injector, retrier).

    ``plan=None`` returns ``(device, None, None)`` unchanged.  With a
    plan, a :class:`FaultInjector` is stacked on the device; with
    ``retries > 0`` (or an explicit ``policy``) a :class:`RetryingDevice`
    goes on top of that.
    """
    if plan is None:
        return device, None, None
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    injector = FaultInjector(device, plan, tracer=tracer)
    top = injector
    retrier = None
    if policy is None and retries > 0:
        policy = RetryPolicy(max_retries=retries)
    if policy is not None:
        retrier = RetryingDevice(injector, policy, tracer=tracer)
        top = retrier
    return top, injector, retrier
