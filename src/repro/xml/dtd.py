"""Document Type Definitions: parsing, validation, and dictionary seeding.

The paper's compaction discussion (Section 3.2) notes that "the
availability of a DTD can greatly simplify this conversion" - a DTD names
every tag and attribute up front, so the name dictionary can be built
before any document is scanned (and shared across documents, which the
structural merge needs anyway).

This module implements the classic DTD subset:

* ``<!ELEMENT name EMPTY|ANY|(#PCDATA|a|b)*|(content model)>`` with
  sequences ``,``, choices ``|``, and the ``? * +`` occurrence operators;
* ``<!ATTLIST elem attr CDATA|ID|IDREF|NMTOKEN|(enum) #REQUIRED|#IMPLIED|
  #FIXED "v"|"default">``.

Content models compile to small NFAs (Thompson construction), so
validation checks each element's child-tag sequence against the grammar
exactly.  :meth:`DTD.name_dictionary` seeds a
:class:`~repro.xml.compact.NameDictionary`;
:meth:`DTD.compaction_config` wires it into document storage.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..errors import XMLSyntaxError
from .compact import CompactionConfig, NameDictionary
from .model import Element

_NAME_START = set(
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz_:"
)
_NAME_CHARS = _NAME_START | set("0123456789-.")


# -- content-model expression tree -------------------------------------------


@dataclass(frozen=True)
class _Name:
    name: str


@dataclass(frozen=True)
class _Seq:
    parts: tuple


@dataclass(frozen=True)
class _Choice:
    parts: tuple


@dataclass(frozen=True)
class _Repeat:
    inner: object
    operator: str  # '?', '*', or '+'


@dataclass(frozen=True)
class ContentModel:
    """One element's declared content.

    Attributes:
        kind: 'EMPTY', 'ANY', 'MIXED', or 'CHILDREN'.
        mixed_names: for MIXED, the element names allowed among #PCDATA.
        expression: for CHILDREN, the parsed model tree.
    """

    kind: str
    mixed_names: frozenset = frozenset()
    expression: object = None

    def allows_text(self) -> bool:
        return self.kind in ("ANY", "MIXED")

    def allowed_children(self) -> frozenset:
        """Every tag that may appear as a child (ANY -> None sentinel)."""
        if self.kind == "EMPTY":
            return frozenset()
        if self.kind == "MIXED":
            return self.mixed_names
        if self.kind == "ANY":
            return frozenset()  # unconstrained; validator special-cases
        names: set[str] = set()

        def collect(node) -> None:
            if isinstance(node, _Name):
                names.add(node.name)
            elif isinstance(node, (_Seq, _Choice)):
                for part in node.parts:
                    collect(part)
            elif isinstance(node, _Repeat):
                collect(node.inner)

        collect(self.expression)
        return frozenset(names)


@dataclass(frozen=True)
class AttributeDef:
    """One declared attribute."""

    name: str
    att_type: str  # CDATA, ID, IDREF, NMTOKEN, or 'ENUM'
    enum_values: tuple = ()
    presence: str = "#IMPLIED"  # #REQUIRED, #IMPLIED, #FIXED, or DEFAULT
    default: str | None = None


@dataclass
class Violation:
    """One validation failure."""

    element: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.element}>: {self.message}"


# -- NFA compilation of content models ----------------------------------------


class _NFA:
    """Thompson-constructed NFA over child tag names."""

    def __init__(self):
        self.transitions: list[dict[str, set[int]]] = []
        self.epsilon: list[set[int]] = []
        self.start = self._new_state()
        self.accept = self._new_state()

    def _new_state(self) -> int:
        self.transitions.append({})
        self.epsilon.append(set())
        return len(self.transitions) - 1

    def add(self, source: int, symbol: str, target: int) -> None:
        self.transitions[source].setdefault(symbol, set()).add(target)

    def add_epsilon(self, source: int, target: int) -> None:
        self.epsilon[source].add(target)

    def _closure(self, states: set[int]) -> set[int]:
        stack = list(states)
        closed = set(states)
        while stack:
            state = stack.pop()
            for target in self.epsilon[state]:
                if target not in closed:
                    closed.add(target)
                    stack.append(target)
        return closed

    def matches(self, symbols: list[str]) -> bool:
        current = self._closure({self.start})
        for symbol in symbols:
            following: set[int] = set()
            for state in current:
                following |= self.transitions[state].get(symbol, set())
            if not following:
                return False
            current = self._closure(following)
        return self.accept in current


def _compile(expression) -> _NFA:
    nfa = _NFA()

    def build(node, entry: int, exit_: int) -> None:
        if isinstance(node, _Name):
            nfa.add(entry, node.name, exit_)
        elif isinstance(node, _Seq):
            previous = entry
            for part in node.parts[:-1]:
                mid = nfa._new_state()
                build(part, previous, mid)
                previous = mid
            build(node.parts[-1], previous, exit_)
        elif isinstance(node, _Choice):
            for part in node.parts:
                build(part, entry, exit_)
        elif isinstance(node, _Repeat):
            inner_entry = nfa._new_state()
            inner_exit = nfa._new_state()
            build(node.inner, inner_entry, inner_exit)
            nfa.add_epsilon(entry, inner_entry)
            nfa.add_epsilon(inner_exit, exit_)
            if node.operator in ("?", "*"):
                nfa.add_epsilon(entry, exit_)
            if node.operator in ("*", "+"):
                nfa.add_epsilon(inner_exit, inner_entry)
        else:  # pragma: no cover - defensive
            raise XMLSyntaxError(f"bad content model node {node!r}")

    build(expression, nfa.start, nfa.accept)
    return nfa


# -- the DTD ----------------------------------------------------------------


class DTD:
    """A parsed document type definition."""

    def __init__(self):
        self.elements: dict[str, ContentModel] = {}
        self.attributes: dict[str, dict[str, AttributeDef]] = {}
        self._nfas: dict[str, _NFA] = {}

    # -- parsing ----------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "DTD":
        """Parse DTD declarations (a bare DTD or a full DOCTYPE)."""
        dtd = cls()
        scanner = _DTDScanner(text)
        scanner.skip_to_declarations()
        while True:
            declaration = scanner.next_declaration()
            if declaration is None:
                break
            kind, body = declaration
            if kind == "ELEMENT":
                name, model = _parse_element_declaration(body)
                dtd.elements[name] = model
            elif kind == "ATTLIST":
                name, attribute_defs = _parse_attlist_declaration(body)
                dtd.attributes.setdefault(name, {}).update(attribute_defs)
        return dtd

    # -- uses -------------------------------------------------------------

    def name_dictionary(self) -> NameDictionary:
        """Every declared element and attribute name, pre-interned."""
        names = NameDictionary()
        for element in self.elements:
            names.intern(element)
        for element, attrs in self.attributes.items():
            names.intern(element)
            for attr in attrs:
                names.intern(attr)
        return names

    def compaction_config(
        self, eliminate_end_tags: bool = True
    ) -> CompactionConfig:
        """A compaction config seeded from this DTD (Section 3.2)."""
        return CompactionConfig(
            names=self.name_dictionary(),
            eliminate_end_tags=eliminate_end_tags,
        )

    def validate(self, root: Element) -> list[Violation]:
        """Check a document against the DTD; returns all violations."""
        violations: list[Violation] = []
        for node in root.iter():
            model = self.elements.get(node.tag)
            if model is None:
                violations.append(
                    Violation(node.tag, "element not declared")
                )
            else:
                self._check_content(node, model, violations)
            self._check_attributes(node, violations)
        return violations

    def is_valid(self, root: Element) -> bool:
        return not self.validate(root)

    def _check_content(
        self, node: Element, model: ContentModel, violations: list
    ) -> None:
        child_tags = [child.tag for child in node.children]
        if model.kind == "EMPTY":
            if node.children or node.text:
                violations.append(
                    Violation(node.tag, "declared EMPTY but has content")
                )
            return
        if model.kind == "ANY":
            return
        if model.kind == "MIXED":
            bad = [
                tag for tag in child_tags if tag not in model.mixed_names
            ]
            if bad:
                violations.append(
                    Violation(
                        node.tag,
                        f"children {sorted(set(bad))} not in mixed model",
                    )
                )
            return
        # CHILDREN: match the child sequence against the model's NFA.
        if node.text and node.text.strip():
            violations.append(
                Violation(
                    node.tag, "text content in an element-only model"
                )
            )
        nfa = self._nfas.get(node.tag)
        if nfa is None:
            nfa = _compile(model.expression)
            self._nfas[node.tag] = nfa
        if not nfa.matches(child_tags):
            violations.append(
                Violation(
                    node.tag,
                    f"child sequence {child_tags} does not match the "
                    "content model",
                )
            )

    def _check_attributes(self, node: Element, violations: list) -> None:
        declared = self.attributes.get(node.tag, {})
        for attr in node.attrs:
            if attr not in declared:
                violations.append(
                    Violation(node.tag, f"attribute {attr!r} not declared")
                )
        for attr, definition in declared.items():
            value = node.attrs.get(attr)
            if value is None:
                if definition.presence == "#REQUIRED":
                    violations.append(
                        Violation(
                            node.tag,
                            f"required attribute {attr!r} missing",
                        )
                    )
                continue
            if (
                definition.att_type == "ENUM"
                and value not in definition.enum_values
            ):
                violations.append(
                    Violation(
                        node.tag,
                        f"attribute {attr!r} value {value!r} not in "
                        f"{definition.enum_values}",
                    )
                )
            if (
                definition.presence == "#FIXED"
                and value != definition.default
            ):
                violations.append(
                    Violation(
                        node.tag,
                        f"attribute {attr!r} must be fixed to "
                        f"{definition.default!r}",
                    )
                )

    def apply_defaults(self, root: Element) -> None:
        """Fill in declared default attribute values, in place."""
        for node in root.iter():
            for attr, definition in self.attributes.get(
                node.tag, {}
            ).items():
                if attr not in node.attrs and definition.default is not None:
                    node.attrs[attr] = definition.default


# -- declaration scanning ------------------------------------------------------


class _DTDScanner:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def skip_to_declarations(self) -> None:
        doctype = self.text.find("<!DOCTYPE")
        if doctype >= 0:
            bracket = self.text.find("[", doctype)
            if bracket >= 0:
                self.pos = bracket + 1

    def next_declaration(self) -> tuple[str, str] | None:
        while True:
            start = self.text.find("<!", self.pos)
            if start < 0:
                return None
            if self.text.startswith("<!--", start):
                end = self.text.find("-->", start)
                if end < 0:
                    raise XMLSyntaxError("unterminated comment in DTD")
                self.pos = end + 3
                continue
            end = self.text.find(">", start)
            if end < 0:
                raise XMLSyntaxError("unterminated declaration in DTD")
            self.pos = end + 1
            body = self.text[start + 2 : end].strip()
            if body.startswith("ELEMENT"):
                return "ELEMENT", body[len("ELEMENT") :].strip()
            if body.startswith("ATTLIST"):
                return "ATTLIST", body[len("ATTLIST") :].strip()
            if body.startswith("DOCTYPE"):
                continue  # DOCTYPE without internal subset braces
            # ENTITY/NOTATION and others: skipped.


def _read_name(text: str, pos: int) -> tuple[str, int]:
    while pos < len(text) and text[pos] in " \t\r\n":
        pos += 1
    start = pos
    if pos >= len(text) or text[pos] not in _NAME_START:
        raise XMLSyntaxError(f"expected a name in DTD at {text[pos:pos+20]!r}")
    while pos < len(text) and text[pos] in _NAME_CHARS:
        pos += 1
    return text[start:pos], pos


def _parse_element_declaration(body: str) -> tuple[str, ContentModel]:
    name, pos = _read_name(body, 0)
    rest = body[pos:].strip()
    if rest == "EMPTY":
        return name, ContentModel("EMPTY")
    if rest == "ANY":
        return name, ContentModel("ANY")
    if not rest.startswith("("):
        raise XMLSyntaxError(f"bad content model for {name}: {rest!r}")
    if "#PCDATA" in rest:
        inner = rest.strip()
        inner = inner.rstrip("*").strip()
        inner = inner[1:-1]  # parentheses
        names = frozenset(
            part.strip()
            for part in inner.split("|")
            if part.strip() and part.strip() != "#PCDATA"
        )
        return name, ContentModel("MIXED", mixed_names=names)
    expression, end = _parse_model(rest, 0)
    if body[pos:].strip()[end:].strip():
        raise XMLSyntaxError(
            f"trailing content-model text for {name}: {rest[end:]!r}"
        )
    return name, ContentModel("CHILDREN", expression=expression)


def _parse_model(text: str, pos: int):
    """Parse one parenthesized group (with its occurrence suffix)."""
    if text[pos] != "(":
        raise XMLSyntaxError(f"expected '(' at {text[pos:pos+10]!r}")
    pos += 1
    parts = []
    separators: set[str] = set()
    while True:
        pos = _skip_ws(text, pos)
        if text[pos] == "(":
            node, pos = _parse_model(text, pos)
        else:
            name, pos = _read_name(text, pos)
            node = _Name(name)
            node, pos = _maybe_repeat(text, pos, node)
        parts.append(node)
        pos = _skip_ws(text, pos)
        if pos >= len(text):
            raise XMLSyntaxError("unterminated content model")
        if text[pos] in (",", "|"):
            separators.add(text[pos])
            pos += 1
            continue
        if text[pos] == ")":
            pos += 1
            break
        raise XMLSyntaxError(
            f"unexpected character in content model: {text[pos]!r}"
        )
    if len(separators) > 1:
        raise XMLSyntaxError(
            "content model mixes ',' and '|' at one level"
        )
    if len(parts) == 1:
        node = parts[0]
    elif "|" in separators:
        node = _Choice(tuple(parts))
    else:
        node = _Seq(tuple(parts))
    return _maybe_repeat(text, pos, node)


def _maybe_repeat(text: str, pos: int, node):
    if pos < len(text) and text[pos] in "?*+":
        return _Repeat(node, text[pos]), pos + 1
    return node, pos


def _skip_ws(text: str, pos: int) -> int:
    while pos < len(text) and text[pos] in " \t\r\n":
        pos += 1
    return pos


def _parse_attlist_declaration(
    body: str,
) -> tuple[str, dict[str, AttributeDef]]:
    element, pos = _read_name(body, 0)
    definitions: dict[str, AttributeDef] = {}
    while True:
        pos = _skip_ws(body, pos)
        if pos >= len(body):
            break
        attr, pos = _read_name(body, pos)
        pos = _skip_ws(body, pos)
        enum_values: tuple = ()
        if body[pos] == "(":
            end = body.find(")", pos)
            if end < 0:
                raise XMLSyntaxError("unterminated enumeration in ATTLIST")
            enum_values = tuple(
                value.strip() for value in body[pos + 1 : end].split("|")
            )
            att_type = "ENUM"
            pos = end + 1
        else:
            att_type, pos = _read_name(body, pos)
        pos = _skip_ws(body, pos)
        presence = "#IMPLIED"
        default: str | None = None
        if body[pos : pos + 1] == "#":
            hash_name_end = pos + 1
            while (
                hash_name_end < len(body)
                and body[hash_name_end] in _NAME_CHARS
            ):
                hash_name_end += 1
            presence = body[pos:hash_name_end]
            pos = hash_name_end
            if presence == "#FIXED":
                pos = _skip_ws(body, pos)
                default, pos = _read_quoted(body, pos)
        elif body[pos : pos + 1] in ("'", '"'):
            presence = "DEFAULT"
            default, pos = _read_quoted(body, pos)
        definitions[attr] = AttributeDef(
            name=attr,
            att_type=att_type,
            enum_values=enum_values,
            presence=presence,
            default=default,
        )
    return element, definitions


def _read_quoted(text: str, pos: int) -> tuple[str, int]:
    quote = text[pos]
    if quote not in ("'", '"'):
        raise XMLSyntaxError("expected a quoted default value")
    end = text.find(quote, pos + 1)
    if end < 0:
        raise XMLSyntaxError("unterminated default value")
    return text[pos + 1 : end], end + 1
