"""A hand-written, event-based (SAX-style) XML tokenizer.

The paper's scanning loop "can be implemented using a simple event-based XML
parser (e.g., SAX)" (Section 3.1).  This module is that parser: it walks the
input text once and yields :class:`~repro.xml.tokens.StartTag`,
:class:`~repro.xml.tokens.Text`, and :class:`~repro.xml.tokens.EndTag`
events in document order, with strict well-formedness checking (tag
balance, attribute syntax, single root).

Supported XML subset: elements, attributes (single- or double-quoted),
character data with the five predefined entities plus numeric character
references, CDATA sections, comments, processing instructions, and a
DOCTYPE prologue (comments/PIs/DOCTYPE are skipped).  Namespace prefixes
are treated as part of the name, as the paper does.
"""

from __future__ import annotations

from typing import Iterator

from ..errors import XMLSyntaxError
from .tokens import EndTag, StartTag, Text, Token

def _is_name_start(char: str) -> bool:
    """XML name start characters: letters (any script), '_', ':'."""
    return char.isalpha() or char in "_:"


def _is_name_char(char: str) -> bool:
    return char.isalnum() or char in "_:-."

_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
}


class _Scanner:
    """Character-level cursor with error reporting."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def error(self, message: str) -> XMLSyntaxError:
        line = self.text.count("\n", 0, self.pos) + 1
        return XMLSyntaxError(message, position=self.pos, line=line)

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def startswith(self, prefix: str) -> bool:
        return self.text.startswith(prefix, self.pos)

    def advance(self, count: int = 1) -> None:
        self.pos += count

    def skip_whitespace(self) -> None:
        text = self.text
        pos = self.pos
        while pos < len(text) and text[pos] in " \t\r\n":
            pos += 1
        self.pos = pos

    def expect(self, literal: str) -> None:
        if not self.startswith(literal):
            raise self.error(f"expected {literal!r}")
        self.pos += len(literal)

    def read_until(self, terminator: str) -> str:
        index = self.text.find(terminator, self.pos)
        if index < 0:
            raise self.error(f"unterminated construct, missing {terminator!r}")
        chunk = self.text[self.pos : index]
        self.pos = index + len(terminator)
        return chunk

    def read_name(self) -> str:
        start = self.pos
        text = self.text
        if start >= len(text) or not _is_name_start(text[start]):
            raise self.error("expected a name")
        pos = start + 1
        while pos < len(text) and _is_name_char(text[pos]):
            pos += 1
        self.pos = pos
        return text[start:pos]


def _decode_entities(raw: str, scanner: _Scanner) -> str:
    if "&" not in raw:
        return raw
    parts = []
    pos = 0
    while True:
        amp = raw.find("&", pos)
        if amp < 0:
            parts.append(raw[pos:])
            break
        parts.append(raw[pos:amp])
        semi = raw.find(";", amp)
        if semi < 0:
            raise scanner.error("unterminated entity reference")
        entity = raw[amp + 1 : semi]
        if entity.startswith("#x") or entity.startswith("#X"):
            parts.append(chr(int(entity[2:], 16)))
        elif entity.startswith("#"):
            parts.append(chr(int(entity[1:])))
        elif entity in _ENTITIES:
            parts.append(_ENTITIES[entity])
        else:
            raise scanner.error(f"unknown entity &{entity};")
        pos = semi + 1
    return "".join(parts)


def _parse_attributes(scanner: _Scanner) -> tuple[tuple[str, str], ...]:
    attrs: list[tuple[str, str]] = []
    seen: set[str] = set()
    while True:
        scanner.skip_whitespace()
        ch = scanner.peek()
        if ch in (">", "/", ""):
            return tuple(attrs)
        name = scanner.read_name()
        scanner.skip_whitespace()
        scanner.expect("=")
        scanner.skip_whitespace()
        quote = scanner.peek()
        if quote not in ("'", '"'):
            raise scanner.error("attribute value must be quoted")
        scanner.advance()
        raw = scanner.read_until(quote)
        if name in seen:
            raise scanner.error(f"duplicate attribute {name!r}")
        seen.add(name)
        attrs.append((name, _decode_entities(raw, scanner)))


def parse_events(
    text: str, strip_whitespace: bool = True
) -> Iterator[Token]:
    """Yield Start/Text/End events for a well-formed XML document.

    Args:
        text: the document text.
        strip_whitespace: drop text nodes that are entirely whitespace
            (indentation); other text is yielded verbatim.

    Raises:
        XMLSyntaxError: on any well-formedness violation.
    """
    scanner = _Scanner(text)
    open_tags: list[str] = []
    seen_root = False

    while not scanner.at_end():
        if scanner.peek() != "<":
            index = scanner.text.find("<", scanner.pos)
            if index < 0:
                raw = scanner.text[scanner.pos :]
                scanner.pos = len(scanner.text)
            else:
                raw = scanner.text[scanner.pos : index]
                scanner.pos = index
            content = _decode_entities(raw, scanner)
            if open_tags:
                if not strip_whitespace or content.strip():
                    yield Text(content)
            elif content.strip():
                raise scanner.error("text outside the root element")
            continue

        if scanner.startswith("<!--"):
            scanner.advance(4)
            scanner.read_until("-->")
            continue
        if scanner.startswith("<![CDATA["):
            scanner.advance(9)
            content = scanner.read_until("]]>")
            if not open_tags:
                raise scanner.error("CDATA outside the root element")
            yield Text(content)
            continue
        if scanner.startswith("<?"):
            scanner.advance(2)
            scanner.read_until("?>")
            continue
        if scanner.startswith("<!DOCTYPE") or scanner.startswith("<!doctype"):
            _skip_doctype(scanner)
            continue
        if scanner.startswith("</"):
            scanner.advance(2)
            name = scanner.read_name()
            scanner.skip_whitespace()
            scanner.expect(">")
            if not open_tags:
                raise scanner.error(f"unmatched end tag </{name}>")
            expected = open_tags.pop()
            if name != expected:
                raise scanner.error(
                    f"mismatched end tag </{name}>, expected </{expected}>"
                )
            yield EndTag(name)
            continue

        # A start tag.
        scanner.advance(1)
        if seen_root and not open_tags:
            raise scanner.error("multiple root elements")
        name = scanner.read_name()
        attrs = _parse_attributes(scanner)
        scanner.skip_whitespace()
        if scanner.startswith("/>"):
            scanner.advance(2)
            seen_root = True
            yield StartTag(name, attrs)
            yield EndTag(name)
            continue
        scanner.expect(">")
        seen_root = True
        open_tags.append(name)
        yield StartTag(name, attrs)

    if open_tags:
        raise scanner.error(
            f"unexpected end of input, unclosed <{open_tags[-1]}>"
        )
    if not seen_root:
        raise scanner.error("no root element")


def _skip_doctype(scanner: _Scanner) -> None:
    # Skip "<!DOCTYPE ... >", honouring one level of [...] internal subset.
    scanner.advance(len("<!DOCTYPE"))
    depth = 0
    while not scanner.at_end():
        ch = scanner.peek()
        scanner.advance()
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        elif ch == ">" and depth <= 0:
            return
    raise scanner.error("unterminated DOCTYPE")
