"""Binary encoding of tokens and key atoms.

Everything that crosses the simulated-device boundary (data-stack spill
blocks, sorted runs, stored documents) is encoded with this codec, so that
byte counts - and therefore block counts, the paper's primary metric - are
honest.

Two dialects exist:

* **plain** - tag and attribute names stored as UTF-8 strings.
* **dictionary-coded** - names replaced by varint ids into a shared
  :class:`~repro.xml.compact.NameDictionary` (paper Section 3.2: "each
  unique string can be converted to an integer before sorting and back
  during output").

End-tag elimination (the other compaction of Section 3.2) happens at the
stream level, not here: a compacted stream simply contains no
:class:`~repro.xml.tokens.EndTag` records and start tags carry levels.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING, Iterable

from ..errors import CodecError
from .tokens import (
    EndTag,
    KEY_MISSING,
    KEY_NUMBER,
    KEY_STRING,
    RunPointer,
    StartTag,
    Text,
    Token,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .compact import NameDictionary

_DOUBLE = struct.Struct("<d")

_TYPE_START = 1
_TYPE_TEXT = 2
_TYPE_END = 3
_TYPE_POINTER = 4

#: Public aliases of the record type bytes, for batch decoders
#: (:mod:`repro.core.columnar`) that dispatch on the raw leading byte
#: without materializing token objects.
TYPE_START = _TYPE_START
TYPE_TEXT = _TYPE_TEXT
TYPE_END = _TYPE_END
TYPE_POINTER = _TYPE_POINTER

# Flag bits shared by start/end/pointer encodings.
_FLAG_KEY = 1
_FLAG_POS = 2
_FLAG_LEVEL = 4


def is_pointer_record(data: bytes) -> bool:
    """True if an encoded token record is a RunPointer (cheap peek)."""
    return bool(data) and data[0] == _TYPE_POINTER


def write_varint(out: bytearray, value: int) -> None:
    """Append an unsigned LEB128 varint."""
    if value < 0:
        raise CodecError(f"varint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_varint(data: bytes, pos: int) -> tuple[int, int]:
    """Read an unsigned LEB128 varint; returns (value, new_pos)."""
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise CodecError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def encode_varint(value: int) -> bytes:
    """The LEB128 frame of ``value`` as standalone bytes.

    The one varint implementation in the package: callers that used to
    carry private copies (:mod:`repro.xml.compact`'s frame cache, the
    run-compression layer) all frame through here.
    """
    out = bytearray()
    write_varint(out, value)
    return bytes(out)


def _write_string(out: bytearray, value: str) -> None:
    encoded = value.encode("utf-8")
    write_varint(out, len(encoded))
    out += encoded


def _read_string(data: bytes, pos: int) -> tuple[str, int]:
    length, pos = read_varint(data, pos)
    end = pos + length
    if end > len(data):
        raise CodecError("truncated string")
    return data[pos:end].decode("utf-8"), end


def encode_key_atom(out: bytearray, atom: tuple) -> None:
    """Append one key atom (kind byte + payload)."""
    kind, value = atom
    out.append(kind)
    if kind == KEY_MISSING:
        return
    if kind == KEY_NUMBER:
        out += _DOUBLE.pack(value)
        return
    if kind == KEY_STRING:
        _write_string(out, value)
        return
    raise CodecError(f"unknown key atom kind {kind}")


def decode_key_atom(data: bytes, pos: int) -> tuple[tuple, int]:
    """Read one key atom; returns (atom, new_pos)."""
    if pos >= len(data):
        raise CodecError("truncated key atom")
    kind = data[pos]
    pos += 1
    if kind == KEY_MISSING:
        return (KEY_MISSING, 0.0), pos
    if kind == KEY_NUMBER:
        end = pos + _DOUBLE.size
        if end > len(data):
            raise CodecError("truncated number atom")
        return (KEY_NUMBER, _DOUBLE.unpack(data[pos:end])[0]), end
    if kind == KEY_STRING:
        value, pos = _read_string(data, pos)
        return (KEY_STRING, value), pos
    raise CodecError(f"unknown key atom kind {kind}")


class TokenCodec:
    """Encodes and decodes tokens, optionally via a name dictionary."""

    def __init__(self, names: "NameDictionary | None" = None):
        self.names = names

    # -- encoding ----------------------------------------------------------

    def encode(self, token: Token) -> bytes:
        out = bytearray()
        if isinstance(token, StartTag):
            self._encode_start(out, token)
        elif isinstance(token, Text):
            out.append(_TYPE_TEXT)
            out.append(_FLAG_LEVEL if token.level is not None else 0)
            _write_string(out, token.text)
            if token.level is not None:
                write_varint(out, token.level)
        elif isinstance(token, EndTag):
            self._encode_end(out, token)
        elif isinstance(token, RunPointer):
            self._encode_pointer(out, token)
        else:
            raise CodecError(f"cannot encode {token!r}")
        return bytes(out)

    def encoded_size(self, token: Token) -> int:
        """Size of ``encode(token)`` (used for threshold arithmetic)."""
        return len(self.encode(token))

    def encode_batch(self, tokens: Iterable[Token]) -> list[bytes]:
        """Encode many tokens; one bound-method lookup for the batch."""
        encode = self.encode
        return [encode(token) for token in tokens]

    def decode_batch(self, records: Iterable[bytes]) -> list[Token]:
        """Decode many records; one bound-method lookup for the batch."""
        decode = self.decode
        return [decode(record) for record in records]

    def _flags(self, token) -> int:
        flags = 0
        if token.key is not None:
            flags |= _FLAG_KEY
        if token.pos is not None:
            flags |= _FLAG_POS
        if getattr(token, "level", None) is not None:
            flags |= _FLAG_LEVEL
        return flags

    def _write_name(self, out: bytearray, name: str) -> None:
        if self.names is None:
            _write_string(out, name)
        else:
            # One dict probe + cached varint frame: the dictionary keeps
            # the encoded form of every id, so dictionary-coded encoding
            # never re-serializes an integer (hot in compacted scans).
            out += self.names.intern_frame(name)

    def _read_name(self, data: bytes, pos: int) -> tuple[str, int]:
        if self.names is None:
            return _read_string(data, pos)
        name_id, pos = read_varint(data, pos)
        return self.names.lookup(name_id), pos

    def _encode_annotations(self, out: bytearray, token, flags: int) -> None:
        if flags & _FLAG_KEY:
            encode_key_atom(out, token.key)
        if flags & _FLAG_POS:
            write_varint(out, token.pos)
        if flags & _FLAG_LEVEL:
            write_varint(out, token.level)

    def _encode_start(self, out: bytearray, token: StartTag) -> None:
        out.append(_TYPE_START)
        flags = self._flags(token)
        out.append(flags)
        self._write_name(out, token.tag)
        write_varint(out, len(token.attrs))
        for name, value in token.attrs:
            self._write_name(out, name)
            _write_string(out, value)
        self._encode_annotations(out, token, flags)

    def _encode_end(self, out: bytearray, token: EndTag) -> None:
        out.append(_TYPE_END)
        flags = self._flags(token)
        out.append(flags)
        self._write_name(out, token.tag)
        self._encode_annotations(out, token, flags)

    def _encode_pointer(self, out: bytearray, token: RunPointer) -> None:
        out.append(_TYPE_POINTER)
        flags = self._flags(token)
        out.append(flags)
        write_varint(out, token.run_id)
        write_varint(out, token.element_count)
        write_varint(out, token.payload_bytes)
        self._encode_annotations(out, token, flags)

    # -- decoding ----------------------------------------------------------

    def decode(self, data: bytes) -> Token:
        if not data:
            raise CodecError("empty token record")
        token_type = data[0]
        if token_type in (
            _TYPE_START,
            _TYPE_TEXT,
            _TYPE_END,
            _TYPE_POINTER,
        ) and len(data) < 2:
            raise CodecError("truncated token record")
        if token_type == _TYPE_TEXT:
            flags = data[1]
            text, pos = _read_string(data, 2)
            level = None
            if flags & _FLAG_LEVEL:
                level, pos = read_varint(data, pos)
            return Text(text, level=level)
        if token_type == _TYPE_START:
            return self._decode_start(data)
        if token_type == _TYPE_END:
            return self._decode_end(data)
        if token_type == _TYPE_POINTER:
            return self._decode_pointer(data)
        raise CodecError(f"unknown token type byte {token_type}")

    def _decode_annotations(
        self, data: bytes, pos: int, flags: int
    ) -> tuple[tuple | None, int | None, int | None, int]:
        key = position = level = None
        if flags & _FLAG_KEY:
            key, pos = decode_key_atom(data, pos)
        if flags & _FLAG_POS:
            position, pos = read_varint(data, pos)
        if flags & _FLAG_LEVEL:
            level, pos = read_varint(data, pos)
        return key, position, level, pos

    def _decode_start(self, data: bytes) -> StartTag:
        flags = data[1]
        tag, pos = self._read_name(data, 2)
        attr_count, pos = read_varint(data, pos)
        attrs = []
        for _ in range(attr_count):
            name, pos = self._read_name(data, pos)
            value, pos = _read_string(data, pos)
            attrs.append((name, value))
        key, position, level, pos = self._decode_annotations(data, pos, flags)
        return StartTag(
            tag=tag, attrs=tuple(attrs), key=key, pos=position, level=level
        )

    def _decode_end(self, data: bytes) -> EndTag:
        flags = data[1]
        tag, pos = self._read_name(data, 2)
        key, position, _, pos = self._decode_annotations(data, pos, flags)
        return EndTag(tag=tag, key=key, pos=position)

    def _decode_pointer(self, data: bytes) -> RunPointer:
        flags = data[1]
        run_id, pos = read_varint(data, 2)
        element_count, pos = read_varint(data, pos)
        payload_bytes, pos = read_varint(data, pos)
        key, position, level, pos = self._decode_annotations(data, pos, flags)
        return RunPointer(
            run_id=run_id,
            key=key,
            pos=position,
            level=level,
            element_count=element_count,
            payload_bytes=payload_bytes,
        )
