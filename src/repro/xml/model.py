"""An in-memory element tree (DOM-like), used as the small-scale substrate.

The paper's first "popular algorithm" is an internal-memory recursive sort
over a DOM representation; NEXSORT itself builds small trees when sorting a
popped subtree that fits in memory.  :class:`Element` is that tree.

Text model: character data is owned by the enclosing element and
concatenated in document order (``<name>Smith</name>`` has
``text == "Smith"``).  Mixed content interleavings between children are
normalized to a single text field; the paper's data model (elements either
contain children or a value) never exercises interleavings, and the
normalization is documented here for anyone who feeds richer documents in.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from ..errors import XMLSyntaxError
from .parser import parse_events
from .tokens import EndTag, StartTag, Text, Token


class Element:
    """One XML element: tag, attributes, text, and child elements."""

    __slots__ = ("tag", "attrs", "text", "children")

    def __init__(
        self,
        tag: str,
        attrs: dict[str, str] | Iterable[tuple[str, str]] | None = None,
        text: str = "",
        children: list["Element"] | None = None,
    ):
        self.tag = tag
        self.attrs: dict[str, str] = dict(attrs) if attrs else {}
        self.text = text
        self.children: list[Element] = children if children is not None else []

    # -- construction --------------------------------------------------

    @classmethod
    def from_events(cls, events: Iterable[Token]) -> "Element":
        """Build a tree from a Start/Text/End event stream."""
        root: Element | None = None
        stack: list[Element] = []
        for event in events:
            if isinstance(event, StartTag):
                node = cls(event.tag, event.attrs)
                if stack:
                    stack[-1].children.append(node)
                elif root is None:
                    root = node
                else:
                    raise XMLSyntaxError("multiple root elements in stream")
                stack.append(node)
            elif isinstance(event, Text):
                if not stack:
                    raise XMLSyntaxError("text outside the root element")
                stack[-1].text += event.text
            elif isinstance(event, EndTag):
                if not stack:
                    raise XMLSyntaxError("unmatched end tag in stream")
                stack.pop()
            else:
                raise XMLSyntaxError(
                    f"unexpected token in event stream: {event!r}"
                )
        if stack or root is None:
            raise XMLSyntaxError("event stream ended with open elements")
        return root

    @classmethod
    def parse(cls, text: str) -> "Element":
        """Parse an XML string into a tree."""
        return cls.from_events(parse_events(text))

    # -- streaming -------------------------------------------------------

    def to_events(self) -> Iterator[Token]:
        """Yield this subtree as a Start/Text/End event stream.

        Iterative, so chain documents deeper than the recursion limit
        serialize fine.
        """
        work: list[tuple[str, Element]] = [("open", self)]
        while work:
            action, node = work.pop()
            if action == "close":
                yield EndTag(node.tag)
                continue
            yield StartTag(node.tag, tuple(node.attrs.items()))
            if node.text:
                yield Text(node.text)
            work.append(("close", node))
            for child in reversed(node.children):
                work.append(("open", child))

    # -- navigation ------------------------------------------------------

    def find(self, tag: str) -> "Element | None":
        """First child with the given tag, or None."""
        for child in self.children:
            if child.tag == tag:
                return child
        return None

    def find_all(self, tag: str) -> list["Element"]:
        return [child for child in self.children if child.tag == tag]

    def find_path(self, path: str) -> "Element | None":
        """Descend through a '/'-separated child-tag path."""
        node: Element | None = self
        for step in path.split("/"):
            if node is None:
                return None
            node = node.find(step)
        return node

    def iter(self) -> Iterator["Element"]:
        """Preorder traversal of this subtree (self first); iterative."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    # -- measurements ------------------------------------------------------

    def element_count(self) -> int:
        """Number of elements in this subtree (the paper's ``N``)."""
        return sum(1 for _ in self.iter())

    def height(self) -> int:
        """Levels in this subtree; a leaf has height 1 (root = level 1)."""
        stack: list[tuple[Element, int]] = [(self, 1)]
        best = 1
        while stack:
            node, depth = stack.pop()
            if depth > best:
                best = depth
            for child in node.children:
                stack.append((child, depth + 1))
        return best

    def max_fanout(self) -> int:
        """Maximum number of children of any element (the paper's ``k``)."""
        return max((len(node.children) for node in self.iter()), default=0)

    # -- comparisons -------------------------------------------------------

    def canonical(self) -> str:
        """Order-insensitive-attrs, order-sensitive-children canonical form.

        Two trees are the same *document* iff their canonicals are equal;
        sorting changes the canonical (child order changes) but not the
        :meth:`unordered_canonical`.  The form is a flat string so that
        comparing two arbitrarily deep documents never recurses.
        """
        return self._fold(ordered=True)

    def unordered_canonical(self) -> str:
        """Canonical form ignoring sibling order at every level.

        Any legal sort of a document preserves this value: it captures
        exactly the parent-child relationships and content.
        """
        return self._fold(ordered=False)

    def _fold(self, ordered: bool) -> str:
        """Bottom-up canonicalization, iterative for deep documents."""
        order = list(self.iter())
        results: dict[int, str] = {}
        for node in reversed(order):
            child_forms = [results[id(child)] for child in node.children]
            if not ordered:
                child_forms.sort()
            attrs = ";".join(
                f"{name}\x1f{value}"
                for name, value in sorted(node.attrs.items())
            )
            results[id(node)] = (
                f"\x02{node.tag}\x1e{attrs}\x1e{node.text}\x1e"
                + "".join(child_forms)
                + "\x03"
            )
        return results[id(self)]

    def is_sorted_by(
        self, child_key: Callable[["Element"], tuple], depth_limit: int | None = None
    ) -> bool:
        """True if every child list is non-decreasing under ``child_key``.

        Args:
            child_key: ordering function over elements.
            depth_limit: if set, only levels 1..depth_limit are required to
                be sorted (paper Section 3.2, depth-limited sorting).
        """
        stack: list[tuple[Element, int]] = [(self, 1)]
        while stack:
            node, level = stack.pop()
            if depth_limit is not None and level > depth_limit:
                continue
            keys = [child_key(child) for child in node.children]
            if any(a > b for a, b in zip(keys, keys[1:])):
                return False
            for child in node.children:
                stack.append((child, level + 1))
        return True

    def __eq__(self, other) -> bool:
        if not isinstance(other, Element):
            return NotImplemented
        return self.canonical() == other.canonical()

    def __hash__(self) -> int:
        return hash(self.canonical())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Element({self.tag!r}, attrs={self.attrs!r}, "
            f"children={len(self.children)})"
        )
