"""Token model for disk-resident XML.

Everything that flows through NEXSORT - the input scan, the data stack,
sorted runs, the output phase - is a stream of four token kinds:

* :class:`StartTag` - a start tag with its attributes.  During sorting it is
  annotated with the element's document *position* (preorder index, used as
  the uniqueness tie-break the paper describes: "we can make it unique by
  appending it with the element's location in the input") and, for
  start-computable ordering criteria, the element's sort *key*.  In
  compacted mode it also carries the element's *level* (root = 1), which is
  what allows end tags to be eliminated (paper Section 3.2).
* :class:`Text` - character data owned by the nearest open element.
* :class:`EndTag` - an end tag.  For ordering criteria that must see the
  subtree (e.g. ``personalInfo/name/lastName``), the key is evaluated by the
  time the end tag is reached and travels on it (paper Section 3.2,
  "complex ordering criteria").
* :class:`RunPointer` - a collapsed subtree: the pointer to a sorted run
  that NEXSORT pushes back onto the data stack in place of a subtree it has
  sorted (Figure 4, Line 12).  It carries the subtree root's key so that the
  enclosing subtree can be sorted without touching the run again.

Sort keys are *atoms*: ``(kind, value)`` tuples where kind 0 = missing,
1 = number, 2 = string.  Tuples of this shape compare correctly under
Python's ordering without ever comparing a str to a float.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable

#: Key atom kinds.
KEY_MISSING = 0
KEY_NUMBER = 1
KEY_STRING = 2

#: The atom used when an element has no value under the ordering criterion.
#: Missing keys sort before every number and string.
MISSING_KEY = (KEY_MISSING, 0.0)

KeyAtom = tuple  # (kind, value)


def string_key(value: str) -> KeyAtom:
    """Key atom for a string value."""
    return (KEY_STRING, value)


def number_key(value: float) -> KeyAtom:
    """Key atom for a numeric value."""
    return (KEY_NUMBER, float(value))


def coerce_key(value: str) -> KeyAtom:
    """Interpret an attribute/text value as a number when possible.

    The paper's experiments order by attributes such as ``ID=454`` and
    ``name="Durham"``; numeric-looking values should sort numerically.
    """
    try:
        return (KEY_NUMBER, float(value))
    except ValueError:
        return (KEY_STRING, value)


@dataclass(frozen=True)
class StartTag:
    """Start of an element."""

    tag: str
    attrs: tuple[tuple[str, str], ...] = ()
    key: KeyAtom | None = None
    pos: int | None = None
    level: int | None = None

    def with_annotations(
        self,
        key: KeyAtom | None = None,
        pos: int | None = None,
        level: int | None = None,
    ) -> "StartTag":
        return replace(
            self,
            key=key if key is not None else self.key,
            pos=pos if pos is not None else self.pos,
            level=level if level is not None else self.level,
        )

    def attr(self, name: str) -> str | None:
        for attr_name, attr_value in self.attrs:
            if attr_name == name:
                return attr_value
        return None


@dataclass(frozen=True)
class Text:
    """Character data belonging to the nearest open element.

    In compacted streams (end tags eliminated) the owning element's level
    travels on the text: without end tags, a text following a child subtree
    would otherwise be ambiguous between the parent and the child.
    """

    text: str
    level: int | None = None


@dataclass(frozen=True)
class EndTag:
    """End of an element; may carry the element's evaluated sort key."""

    tag: str
    key: KeyAtom | None = None
    pos: int | None = None


@dataclass(frozen=True)
class RunPointer:
    """A collapsed, already-sorted subtree stored in a run.

    Attributes:
        run_id: the sorted run holding the entire subtree (root included).
        key: the subtree root's sort key (for sorting among its siblings).
        pos: the subtree root's document position (tie-break).
        level: the subtree root's absolute level (compacted mode only).
        element_count: elements inside the run (statistics/invariants).
        payload_bytes: encoded size of the subtree (statistics/invariants).
    """

    run_id: int
    key: KeyAtom | None = None
    pos: int | None = None
    level: int | None = None
    element_count: int = 0
    payload_bytes: int = 0


Token = StartTag | Text | EndTag | RunPointer


def sort_key_of(token: Token) -> tuple:
    """The (key, pos) ordering tuple of a child-starting token."""
    key = token.key if token.key is not None else MISSING_KEY
    pos = token.pos if token.pos is not None else 0
    return (key, pos)


def batch_sort_keys(tokens: Iterable[Token]) -> list[tuple]:
    """The :func:`sort_key_of` tuples of a token batch.

    The batch form the columnar kernel and the k-way merger use: one
    function-call frame for the batch instead of one per token.
    """
    missing = MISSING_KEY
    return [
        (
            token.key if token.key is not None else missing,
            token.pos if token.pos is not None else 0,
        )
        for token in tokens
    ]
