"""Disk-resident XML documents.

A :class:`Document` is a token stream stored on the simulated block device
(one record per token), plus the structural metadata the analysis needs
(element count ``N``, maximum fan-out ``k``, height).  Scanning a document
costs real, counted block reads - this is the ``O(N/B)`` "reading the input"
term of Theorem 4.5.

Documents can be stored plain or compacted
(:class:`~repro.xml.compact.CompactionConfig`); either way,
:meth:`Document.iter_events` always yields a *full* Start/Text/End event
stream, synthesizing end tags from level transitions when they were
eliminated on disk, so consumers are storage-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..errors import XMLSyntaxError
from ..io.device import BlockDevice
from ..io.runs import RunHandle, RunStore
from .codec import TokenCodec
from .compact import CompactionConfig, eliminate_end_tags, restore_end_tags
from .model import Element
from .parser import parse_events
from .tokens import EndTag, StartTag, Text, Token
from .writer import events_to_string


@dataclass
class DocumentStats:
    """Structural measurements taken while a document is stored."""

    element_count: int = 0
    max_fanout: int = 0
    height: int = 0
    text_count: int = 0
    root_tag: str = ""


class Document:
    """A token stream on the device, with structural metadata."""

    def __init__(
        self,
        store: RunStore,
        handle: RunHandle,
        stats: DocumentStats,
        compaction: CompactionConfig | None = None,
    ):
        self.store = store
        self.handle = handle
        self.stats = stats
        self.compaction = compaction
        self.codec = TokenCodec(compaction.names if compaction else None)

    # -- properties mirroring the paper's parameters ------------------------

    @property
    def device(self) -> BlockDevice:
        return self.store.device

    @property
    def element_count(self) -> int:
        """The paper's ``N``."""
        return self.stats.element_count

    @property
    def max_fanout(self) -> int:
        """The paper's ``k``."""
        return self.stats.max_fanout

    @property
    def height(self) -> int:
        return self.stats.height

    @property
    def block_count(self) -> int:
        """The paper's ``n = N/B`` (blocks occupied by this document)."""
        return self.handle.block_count

    @property
    def payload_bytes(self) -> int:
        return self.handle.payload_bytes

    # -- construction ------------------------------------------------------

    @classmethod
    def from_events(
        cls,
        store: RunStore,
        events: Iterable[Token],
        compaction: CompactionConfig | None = None,
        category: str = "load",
    ) -> "Document":
        """Store an event stream as a document, measuring it on the way."""
        codec = TokenCodec(compaction.names if compaction else None)
        writer = store.create_writer(category)
        stats = DocumentStats()
        open_children: list[int] = []

        measured = cls._measure(events, stats, open_children)
        if compaction is not None and compaction.eliminate_end_tags:
            stored: Iterable[Token] = eliminate_end_tags(measured)
        else:
            stored = measured
        for token in stored:
            writer.write_record(codec.encode(token))
        handle = writer.finish()
        if stats.element_count == 0:
            raise XMLSyntaxError("cannot store an empty document")
        return cls(store, handle, stats, compaction)

    @staticmethod
    def _measure(
        events: Iterable[Token],
        stats: DocumentStats,
        open_children: list[int],
    ) -> Iterator[Token]:
        depth = 0
        for event in events:
            if isinstance(event, StartTag):
                if depth == 0:
                    if stats.element_count:
                        raise XMLSyntaxError("multiple root elements")
                    stats.root_tag = event.tag
                else:
                    open_children[-1] += 1
                    if open_children[-1] > stats.max_fanout:
                        stats.max_fanout = open_children[-1]
                open_children.append(0)
                depth += 1
                stats.element_count += 1
                if depth > stats.height:
                    stats.height = depth
            elif isinstance(event, EndTag):
                open_children.pop()
                depth -= 1
            elif isinstance(event, Text):
                stats.text_count += 1
            yield event
        if depth != 0:
            raise XMLSyntaxError("unbalanced event stream while storing")

    @classmethod
    def from_string(
        cls,
        store: RunStore,
        text: str,
        compaction: CompactionConfig | None = None,
        category: str = "load",
    ) -> "Document":
        """Parse XML text and store it as a document."""
        return cls.from_events(
            store, parse_events(text), compaction, category
        )

    @classmethod
    def from_file(
        cls,
        store: RunStore,
        path: str,
        compaction: CompactionConfig | None = None,
        category: str = "load",
        chunk_chars: int | None = None,
    ) -> "Document":
        """Stream an XML file onto the device without loading it whole.

        Uses the incremental tokenizer, so memory stays bounded by the
        chunk size regardless of file size.
        """
        from .streaming import DEFAULT_CHUNK_CHARS, parse_events_incremental

        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_events(
                store,
                parse_events_incremental(
                    handle,
                    chunk_chars=chunk_chars or DEFAULT_CHUNK_CHARS,
                ),
                compaction,
                category,
            )

    @classmethod
    def from_element(
        cls,
        store: RunStore,
        element: Element,
        compaction: CompactionConfig | None = None,
        category: str = "load",
    ) -> "Document":
        """Store an element tree as a document."""
        return cls.from_events(
            store, element.to_events(), compaction, category
        )

    # -- reading -----------------------------------------------------------

    def iter_tokens(self, category: str = "input_scan") -> Iterator[Token]:
        """Yield the raw stored tokens (no end tags in compacted mode)."""
        reader = self.store.open_reader(self.handle, category=category)
        for record in reader:
            yield self.codec.decode(record)

    def iter_events(self, category: str = "input_scan") -> Iterator[Token]:
        """Yield a full Start/Text/End event stream regardless of storage."""
        tokens = self.iter_tokens(category)
        if self.compaction is not None and self.compaction.eliminate_end_tags:
            return restore_end_tags(tokens)
        return tokens

    def to_element(self, category: str = "export") -> Element:
        """Materialize the document as an in-memory tree."""
        return Element.from_events(self.iter_events(category))

    def to_string(
        self, indent: str | None = None, category: str = "export"
    ) -> str:
        """Serialize the document back to XML text."""
        return events_to_string(self.iter_events(category), indent=indent)

    def free(self) -> None:
        """Release the document's blocks (bookkeeping only)."""
        self.store.free(self.handle)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Document(N={self.element_count}, k={self.max_fanout}, "
            f"height={self.height}, blocks={self.block_count})"
        )
