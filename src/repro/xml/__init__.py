"""XML substrate: tokens, codec, parser, tree model, writer, compaction."""

from .codec import TokenCodec
from .compact import (
    CompactionConfig,
    NameDictionary,
    annotate_levels,
    eliminate_end_tags,
    restore_end_tags,
)
from .document import Document, DocumentStats
from .dtd import DTD, AttributeDef, ContentModel, Violation
from .model import Element
from .parser import parse_events
from .streaming import parse_events_incremental
from .tokens import (
    EndTag,
    KEY_MISSING,
    KEY_NUMBER,
    KEY_STRING,
    MISSING_KEY,
    RunPointer,
    StartTag,
    Text,
    Token,
    coerce_key,
    number_key,
    sort_key_of,
    string_key,
)
from .writer import element_to_string, escape_attr, escape_text, events_to_string

__all__ = [
    "AttributeDef",
    "CompactionConfig",
    "ContentModel",
    "DTD",
    "Document",
    "Violation",
    "DocumentStats",
    "Element",
    "EndTag",
    "KEY_MISSING",
    "KEY_NUMBER",
    "KEY_STRING",
    "MISSING_KEY",
    "NameDictionary",
    "RunPointer",
    "StartTag",
    "Text",
    "Token",
    "TokenCodec",
    "annotate_levels",
    "coerce_key",
    "element_to_string",
    "eliminate_end_tags",
    "escape_attr",
    "escape_text",
    "events_to_string",
    "number_key",
    "parse_events",
    "parse_events_incremental",
    "restore_end_tags",
    "sort_key_of",
    "string_key",
]
