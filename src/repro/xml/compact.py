"""XML compaction techniques (paper Section 3.2).

Two techniques, both implemented for NEXSORT *and* the external merge sort
baseline, matching the paper's experimental setup ("We implement some of the
XML compaction techniques in Section 3.2, including compression of tag names
and elimination of end tags, for both NEXSORT and external merge sort"):

* **Name-dictionary compression** - every distinct tag and attribute name
  maps to a small integer; the :class:`~repro.xml.codec.TokenCodec` encodes
  the id instead of the string.

* **End-tag elimination** - start tags carry the element's *level* (root is
  level 1) and end tags are not stored at all.  End tags are recovered with
  the paper's rule: "in a series of start tags, any transition from a start
  tag on level l1 to a start tag on the same or a higher level l2 <= l1 must
  have l1 - l2 + 1 end tags in between"; a stack of unclosed open tags
  supplies their names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..errors import CodecError
from .codec import encode_varint as _varint  # re-export; one impl (ISSUE 10)
from .tokens import EndTag, RunPointer, StartTag, Text, Token


class NameDictionary:
    """Bidirectional string <-> integer mapping for tag/attribute names.

    Besides the id mapping itself, the dictionary caches the LEB128
    *frame* (encoded varint) of every id: encoding a dictionary-coded
    name is then one dict probe plus one cached-bytes append, and batch
    decoders index straight into the id table.  The columnar kernel
    leans on both (:mod:`repro.core.columnar`).
    """

    def __init__(self, names: Iterable[str] = ()):
        self._by_name: dict[str, int] = {}
        self._by_id: list[str] = []
        self._frames: list[bytes] = []
        for name in names:
            self.intern(name)

    def intern(self, name: str) -> int:
        """Return the id for ``name``, assigning a fresh one if needed."""
        name_id = self._by_name.get(name)
        if name_id is None:
            name_id = len(self._by_id)
            self._by_name[name] = name_id
            self._by_id.append(name)
            self._frames.append(_varint(name_id))
        return name_id

    def intern_frame(self, name: str) -> bytes:
        """The encoded varint of ``name``'s id (interning if needed)."""
        name_id = self._by_name.get(name)
        if name_id is None:
            name_id = self.intern(name)
        return self._frames[name_id]

    def id_frame(self, name_id: int) -> bytes:
        """The encoded varint of an already-assigned id."""
        try:
            return self._frames[name_id]
        except IndexError:
            raise CodecError(f"unknown name id {name_id}") from None

    def lookup(self, name_id: int) -> str:
        try:
            return self._by_id[name_id]
        except IndexError:
            raise CodecError(f"unknown name id {name_id}") from None

    def names_of(self, name_ids: Iterable[int]) -> list[str]:
        """Batch id -> name lookup (one bounds check per batch)."""
        table = self._by_id
        try:
            return [table[name_id] for name_id in name_ids]
        except IndexError:
            bad = [i for i in name_ids if i >= len(table)]
            raise CodecError(f"unknown name id {bad[0]}") from None

    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name


@dataclass
class CompactionConfig:
    """Which compaction techniques to apply to a stored document/stream.

    Attributes:
        names: shared dictionary for tag/attribute names, or None to store
            names as strings.
        eliminate_end_tags: drop end tags and put levels on start tags.
    """

    names: NameDictionary | None = field(default_factory=NameDictionary)
    eliminate_end_tags: bool = True

    @classmethod
    def none(cls) -> "CompactionConfig":
        """No compaction at all (plain mode)."""
        return cls(names=None, eliminate_end_tags=False)


def annotate_levels(events: Iterable[Token]) -> Iterator[Token]:
    """Attach absolute levels (root = 1) to starts and texts in a stream."""
    level = 0
    for event in events:
        if isinstance(event, StartTag):
            level += 1
            yield event.with_annotations(level=level)
        elif isinstance(event, EndTag):
            level -= 1
            yield event
        elif isinstance(event, Text):
            yield Text(event.text, level=level)
        else:
            yield event


def eliminate_end_tags(events: Iterable[Token]) -> Iterator[Token]:
    """Compact an event stream: levels on starts, no end tags stored."""
    for event in annotate_levels(events):
        if not isinstance(event, EndTag):
            yield event


def restore_end_tags(tokens: Iterable[Token]) -> Iterator[Token]:
    """Recover end tags from a level-annotated, end-tag-free stream.

    Works on streams containing :class:`RunPointer` tokens too (they carry
    the level of the subtree root they stand for); the pointer is passed
    through after closing deeper elements, since its run supplies its own
    start/end structure when expanded.
    """
    open_tags: list[tuple[str, int]] = []
    for token in tokens:
        if isinstance(token, (StartTag, RunPointer)):
            level = token.level
            if level is None:
                raise CodecError(
                    "compacted stream contains a start without a level"
                )
            while open_tags and open_tags[-1][1] >= level:
                tag, _ = open_tags.pop()
                yield EndTag(tag)
            if isinstance(token, StartTag):
                open_tags.append((token.tag, level))
            yield token
        elif isinstance(token, Text):
            if token.level is not None:
                # Close elements deeper than the text's owner.
                while open_tags and open_tags[-1][1] > token.level:
                    tag, _ = open_tags.pop()
                    yield EndTag(tag)
            yield Text(token.text)
        elif isinstance(token, EndTag):
            raise CodecError("compacted stream already contains end tags")
        else:  # pragma: no cover - defensive
            raise CodecError(f"unexpected token {token!r}")
    while open_tags:
        tag, _ = open_tags.pop()
        yield EndTag(tag)
