"""Serializing event streams and element trees back to XML text."""

from __future__ import annotations

from io import StringIO
from typing import Iterable

from ..errors import XMLSyntaxError
from .model import Element
from .tokens import EndTag, StartTag, Text, Token


def escape_text(value: str) -> str:
    """Escape character data."""
    return value.replace("&", "&amp;").replace("<", "&lt;").replace(
        ">", "&gt;"
    )


def escape_attr(value: str) -> str:
    """Escape an attribute value for double-quoted output."""
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace('"', "&quot;")
    )


def events_to_string(
    events: Iterable[Token], indent: str | None = None
) -> str:
    """Serialize a Start/Text/End event stream to XML text.

    Args:
        events: the stream; must be balanced.
        indent: if given (e.g. ``"  "``), pretty-print with one element per
            line; text-bearing elements stay on one line.
    """
    out = StringIO()
    depth = 0
    pending: StartTag | None = None
    pending_text: list[str] = []

    def flush_pending(self_closing_ok: bool) -> None:
        nonlocal pending
        if pending is None:
            return
        _write_start(out, pending, depth - 1, indent)
        pending = None

    for event in events:
        if isinstance(event, StartTag):
            flush_pending(False)
            if pending_text:
                out.write(escape_text("".join(pending_text)))
                pending_text.clear()
            depth += 1
            pending = event
        elif isinstance(event, Text):
            if pending is not None:
                _write_start(out, pending, depth - 1, indent, newline=False)
                pending = None
            pending_text.append(event.text)
        elif isinstance(event, EndTag):
            if pending is not None:
                # Empty element: self-close.
                _write_start(
                    out, pending, depth - 1, indent, self_closing=True
                )
                pending = None
                depth -= 1
                continue
            text = "".join(pending_text)
            pending_text.clear()
            if text:
                out.write(escape_text(text))
                out.write(f"</{event.tag}>")
                if indent is not None:
                    out.write("\n")
            else:
                if indent is not None:
                    out.write(indent * (depth - 1))
                out.write(f"</{event.tag}>")
                if indent is not None:
                    out.write("\n")
            depth -= 1
        else:
            raise XMLSyntaxError(f"cannot serialize token {event!r}")
    if depth != 0 or pending is not None:
        raise XMLSyntaxError("unbalanced event stream")
    return out.getvalue().rstrip("\n") + ("\n" if indent is not None else "")


def _write_start(
    out: StringIO,
    tag: StartTag,
    depth: int,
    indent: str | None,
    self_closing: bool = False,
    newline: bool = True,
) -> None:
    if indent is not None:
        out.write(indent * depth)
    out.write(f"<{tag.tag}")
    for name, value in tag.attrs:
        out.write(f' {name}="{escape_attr(value)}"')
    out.write("/>" if self_closing else ">")
    if indent is not None and (self_closing or newline):
        out.write("\n")


def element_to_string(element: Element, indent: str | None = None) -> str:
    """Serialize an element tree to XML text."""
    return events_to_string(element.to_events(), indent=indent)
