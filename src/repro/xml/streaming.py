"""Incremental parsing: tokenize XML from a file without loading it whole.

:func:`parse_events` needs the document as one string; for genuinely
out-of-core inputs that defeats the purpose of an external-memory sorter.
:func:`parse_events_incremental` tokenizes from any text stream in fixed
chunks, holding only the unconsumed tail in memory - so an arbitrarily
large file flows straight onto the block device via
:meth:`Document.from_file`.

The implementation delegates each construct to the same grammar as the
one-shot parser by maintaining a sliding window: before parsing a
construct, the window is topped up until it provably contains the whole
construct (a ``>`` for tags, the next ``<`` for character data, the
closing marker for comments/CDATA/PIs).  Constructs are tiny compared to
documents, so the window stays near the chunk size.
"""

from __future__ import annotations

from typing import IO, Iterator

from ..errors import XMLSyntaxError
from .parser import parse_events
from .tokens import EndTag, StartTag, Text, Token

DEFAULT_CHUNK_CHARS = 64 * 1024


class _Window:
    """A sliding text window over a character stream."""

    def __init__(self, stream: IO[str], chunk_chars: int):
        self._stream = stream
        self._chunk = chunk_chars
        self.text = ""
        self.eof = False
        self.consumed = 0  # characters dropped from the front

    def fill(self) -> bool:
        """Read one more chunk; False at end of stream."""
        if self.eof:
            return False
        chunk = self._stream.read(self._chunk)
        if not chunk:
            self.eof = True
            return False
        self.text += chunk
        return True

    def find(self, needle: str, start: int = 0) -> int:
        """Find ``needle``, filling as needed; -1 only at true EOF."""
        while True:
            index = self.text.find(needle, start)
            if index >= 0:
                return index
            # Keep a suffix overlap so needles spanning chunks are found.
            start = max(0, len(self.text) - len(needle) + 1)
            if not self.fill():
                return -1

    def ensure(self, count: int) -> None:
        """Make at least ``count`` characters available (or hit EOF)."""
        while len(self.text) < count and self.fill():
            pass

    def drop(self, count: int) -> None:
        self.consumed += count
        self.text = self.text[count:]


def parse_events_incremental(
    stream: IO[str],
    strip_whitespace: bool = True,
    chunk_chars: int = DEFAULT_CHUNK_CHARS,
) -> Iterator[Token]:
    """Yield Start/Text/End events from a text stream, incrementally.

    Equivalent to ``parse_events(stream.read(), strip_whitespace)`` but
    with memory bounded by the chunk size plus the largest single
    construct (one tag, comment, or text run).
    """
    window = _Window(stream, chunk_chars)
    open_tags: list[str] = []
    seen_root = False

    while True:
        window.ensure(1)
        if not window.text:
            break
        if window.text[0] != "<":
            # Character data: runs to the next '<' (or EOF).
            index = window.find("<")
            raw = window.text if index < 0 else window.text[:index]
            construct = raw
            window.drop(len(raw))
            for event in _parse_fragment(
                f"<x>{construct}</x>", window, strip_whitespace
            ):
                if isinstance(event, Text):
                    if open_tags:
                        yield event
                    elif event.text.strip():
                        raise XMLSyntaxError(
                            "text outside the root element",
                            position=window.consumed,
                        )
            continue

        construct = _take_construct(window)
        if construct.startswith("<!--") or construct.startswith("<?"):
            continue
        if construct.startswith("<![CDATA["):
            if not open_tags:
                raise XMLSyntaxError(
                    "CDATA outside the root element",
                    position=window.consumed,
                )
            yield Text(construct[len("<![CDATA[") : -len("]]>")])
            continue
        if construct.startswith("<!DOCTYPE") or construct.startswith(
            "<!doctype"
        ):
            continue
        # A start or end tag: parse it via the grammar.
        if construct.startswith("</"):
            events = list(
                _parse_fragment(
                    f"<{construct[2:-1]}>{construct}", window,
                    strip_whitespace,
                )
            )
            tag = events[-1].tag
            if not open_tags:
                raise XMLSyntaxError(
                    f"unmatched end tag </{tag}>",
                    position=window.consumed,
                )
            expected = open_tags.pop()
            if tag != expected:
                raise XMLSyntaxError(
                    f"mismatched end tag </{tag}>, expected "
                    f"</{expected}>",
                    position=window.consumed,
                )
            yield EndTag(tag)
            continue
        self_closing = construct.rstrip().endswith("/>")
        fragment = (
            construct
            if self_closing
            else construct + f"</{_tag_name(construct, window)}>"
        )
        events = list(_parse_fragment(fragment, window, strip_whitespace))
        start = events[0]
        assert isinstance(start, StartTag)
        if seen_root and not open_tags:
            raise XMLSyntaxError(
                "multiple root elements", position=window.consumed
            )
        seen_root = True
        yield start
        if self_closing:
            yield EndTag(start.tag)
        else:
            open_tags.append(start.tag)

    if open_tags:
        raise XMLSyntaxError(
            f"unexpected end of input, unclosed <{open_tags[-1]}>",
            position=window.consumed,
        )
    if not seen_root:
        raise XMLSyntaxError("no root element", position=window.consumed)


def _take_construct(window: _Window) -> str:
    """Consume one '<...>' construct (tag, comment, CDATA, PI, DOCTYPE)."""
    window.ensure(9)
    text = window.text
    if text.startswith("<!--"):
        end = window.find("-->")
        if end < 0:
            raise XMLSyntaxError(
                "unterminated comment", position=window.consumed
            )
        construct = window.text[: end + 3]
    elif text.startswith("<![CDATA["):
        end = window.find("]]>")
        if end < 0:
            raise XMLSyntaxError(
                "unterminated CDATA section", position=window.consumed
            )
        construct = window.text[: end + 3]
    elif text.startswith("<?"):
        end = window.find("?>")
        if end < 0:
            raise XMLSyntaxError(
                "unterminated processing instruction",
                position=window.consumed,
            )
        construct = window.text[: end + 2]
    elif text.startswith("<!DOCTYPE") or text.startswith("<!doctype"):
        construct = _take_doctype(window)
    else:
        end = _find_tag_end(window)
        construct = window.text[: end + 1]
    window.drop(len(construct))
    return construct


def _find_tag_end(window: _Window) -> int:
    """Index of the '>' closing a tag, respecting quoted attributes."""
    position = 1
    quote: str | None = None
    while True:
        window.ensure(position + 1)
        if position >= len(window.text):
            raise XMLSyntaxError(
                "unterminated tag", position=window.consumed
            )
        char = window.text[position]
        if quote is not None:
            if char == quote:
                quote = None
        elif char in ("'", '"'):
            quote = char
        elif char == ">":
            return position
        position += 1


def _take_doctype(window: _Window) -> str:
    position = len("<!DOCTYPE")
    depth = 0
    while True:
        window.ensure(position + 1)
        if position >= len(window.text):
            raise XMLSyntaxError(
                "unterminated DOCTYPE", position=window.consumed
            )
        char = window.text[position]
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        elif char == ">" and depth <= 0:
            return window.text[: position + 1]
        position += 1


def _tag_name(construct: str, window: _Window) -> str:
    name = ""
    for char in construct[1:]:
        if char.isalnum() or char in "_:-.":
            name += char
        else:
            break
    if not name:
        raise XMLSyntaxError(
            "expected a name", position=window.consumed
        )
    return name


def _parse_fragment(
    fragment: str, window: _Window, strip_whitespace: bool
) -> list[Token]:
    """Run the one-shot grammar over a tiny synthesized fragment."""
    try:
        return list(parse_events(fragment, strip_whitespace))
    except XMLSyntaxError as error:
        raise XMLSyntaxError(
            str(error).split(" (line")[0], position=window.consumed
        ) from None
