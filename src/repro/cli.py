"""Command-line interface: sort, merge, validate, and analyze XML files.

Usage (also via ``python -m repro``):

    repro sort personnel.xml -o sorted.xml --by name --tag-attr employee=ID
    repro sort doc.xml -o sorted.xml --trace trace.json --trace-format chrome
    repro merge d1.xml d2.xml -o merged.xml --by name --tag-attr employee=ID
    repro table1 personnel.xml --by name --tag-attr employee=ID
    repro validate doc.xml --dtd schema.dtd
    repro analyze doc.xml --memory 24
    repro trace diff before.json after.json

Files are ordinary XML text; they are staged on a simulated block device
(or a file-backed one with ``--scratch``) and every command can print the
I/O accounting the paper's evaluation is built on (``--stats``).
"""

from __future__ import annotations

import argparse
import sys
import time

from .analysis import (
    ModelGeometry,
    merge_sort_passes,
    nexsort_upper_bound_ios,
    sorting_lower_bound_ios,
)
from .baselines import external_merge_sort, key_path_table, xsort
from .core import nexsort
from .errors import DeviceFault, ReproError
from .faults import RecoveryContext, RetryPolicy, build_faulty_device
from .io import (
    BlockDevice,
    FileBackedBlockDevice,
    PREFETCH_POLICIES,
    RunStore,
    StripedDevice,
)
from .keys import ByAttribute, SortSpec
from .merge import MergeOptions, merge_preserving_order, structural_merge
from .obs import TRACE_WRITERS, Tracer, diff_files, maybe_span
from .xml import CompactionConfig, Document
from .xml.dtd import DTD


class _TrackedStore(argparse.Action):
    """``store`` that records explicit use in ``namespace._provided``.

    ``--plan auto`` fills only the knobs the user did *not* set: a flag
    typed on the command line pins that axis for the planner, and the
    only way argparse can tell "explicit default" from "omitted" is an
    action that logs the hit.
    """

    def __call__(self, parser, namespace, values, option_string=None):
        setattr(namespace, self.dest, values)
        _mark_provided(namespace, self.dest)


class _TrackedFlag(argparse.Action):
    """``store_true`` variant of :class:`_TrackedStore`."""

    def __init__(self, option_strings, dest, **kwargs):
        kwargs.pop("nargs", None)
        kwargs.setdefault("default", False)
        super().__init__(option_strings, dest, nargs=0, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        setattr(namespace, self.dest, True)
        _mark_provided(namespace, self.dest)


def _mark_provided(namespace, dest: str) -> None:
    provided = getattr(namespace, "_provided", None)
    if provided is None:
        provided = set()
        namespace._provided = provided
    provided.add(dest)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NEXSORT: sorting XML in external memory "
        "(ICDE 2004 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser, with_spec=True) -> None:
        p.add_argument(
            "--memory", type=int, default=24,
            help="internal memory budget in blocks (default 24)",
        )
        p.add_argument(
            "--block-size", type=int, default=4096,
            help="device block size in bytes (default 4096)",
        )
        p.add_argument(
            "--scratch", metavar="PATH",
            help="back the device with a real file at PATH",
        )
        p.add_argument(
            "--stats", action="store_true",
            help="print the I/O accounting report",
        )
        if with_spec:
            p.add_argument(
                "--by", default="name", metavar="ATTR",
                help="default ordering attribute (default: name)",
            )
            p.add_argument(
                "--tag-attr", action="append", default=[],
                metavar="TAG=ATTR",
                help="per-tag ordering attribute, e.g. employee=ID "
                "(repeatable)",
            )
            p.add_argument(
                "--depth-limit", type=int, default=None,
                help="sort only down to this level (root = 1)",
            )
            p.add_argument(
                "--spec", default=None, metavar="CLAUSES",
                help="full ordering spec, overriding --by/--tag-attr; "
                "e.g. '*=@name, employee=@ID, note=text()'",
            )

    def add_tuning(p: argparse.ArgumentParser) -> None:
        """Engine tuning shared verbatim by ``sort`` and ``serve``.

        One builder so the two entry points cannot drift: the merge
        engine, disk-farm, and fault flags mean the same thing whether
        one job or a whole workload consumes them
        (``_make_merge_options`` reads exactly these).
        """
        p.add_argument(
            "--disks", type=int, default=1,
            help="number of simulated disks: sort stripes one job's "
            "device across them, serve shares them between jobs "
            "(default 1: the paper's serial disk)",
        )
        p.add_argument(
            "--prefetch-depth", type=int, default=0, action=_TrackedStore,
            help="blocks the striped device may hold in its prefetch "
            "window (default 0: prefetch off); merges fetch ahead "
            "into it (sort only)",
        )
        p.add_argument(
            "--prefetch-policy",
            choices=sorted(PREFETCH_POLICIES),
            default="forecast",
            action=_TrackedStore,
            help="which run gets scarce prefetch slots first: forecast "
            "(smallest merge head key - the run that drains next) or "
            "round-robin (naive cycling); default forecast",
        )
        p.add_argument(
            "--run-formation",
            choices=["load-sort", "replacement-selection"],
            default="load-sort",
            action=_TrackedStore,
            help="initial-run formation strategy (replacement-selection "
            "produces ~2x longer runs on random input)",
        )
        p.add_argument(
            "--merge-kernel",
            choices=["heap", "loser-tree"],
            default="heap",
            action=_TrackedStore,
            help="k-way merge kernel; loser-tree counts real comparisons "
            "(<= ceil(log2 k) per record) instead of the analytic charge",
        )
        p.add_argument(
            "--embedded-keys", action=_TrackedFlag,
            help="embed byte-comparable normalized keys in run records so "
            "merges compare bytes instead of decoding",
        )
        p.add_argument(
            "--kernel",
            choices=["scalar", "columnar"],
            default="scalar",
            action=_TrackedStore,
            help="record hot-path implementation: scalar (one record at a "
            "time) or columnar (batched normalized-key kernels, identical "
            "counters, much faster wall clock)",
        )
        p.add_argument(
            "--compress",
            choices=["off", "container", "zlib"],
            default="off",
            action=_TrackedStore,
            help="compress sorted runs on disk: container (split each "
            "record into structure/text/key containers, delta + "
            "dictionary coding) or zlib (whole-segment reference "
            "backend); output is bit-identical either way, only byte "
            "and CPU counters move (default off)",
        )
        p.add_argument(
            "--compress-capacity", action=_TrackedFlag,
            help="also compress pending run-formation batches so the "
            "same memory holds more records: longer initial runs, "
            "possibly fewer merge passes (changes comparison counts; "
            "requires --compress)",
        )
        p.add_argument(
            "--plan",
            choices=["off", "auto"],
            default="off",
            help="auto: cost-based planner fills every tuning knob not "
            "explicitly set (sort: algorithm/threshold/cache/formation/"
            "kernels/prefetch from the document's measured profile; "
            "serve: degraded grants re-plan their own knobs); off "
            "(default): paper-faithful fixed defaults",
        )
        p.add_argument(
            "--faults", metavar="PLAN", default=None,
            help="inject deterministic device faults per PLAN, e.g. "
            "'read@5;write@3*2:persistent;torn@1;rate=0.001;seed=42'",
        )
        p.add_argument(
            "--retries", type=int, default=0,
            help="transparent retries per faulted I/O (backoff charged to "
            "the simulated clock; default 0)",
        )

    sort_cmd = sub.add_parser("sort", help="sort a document")
    sort_cmd.add_argument("input")
    sort_cmd.add_argument("-o", "--output", help="write result here")
    sort_cmd.add_argument(
        "--algorithm",
        choices=["nexsort", "mergesort", "xsort"],
        default="nexsort",
        action=_TrackedStore,
    )
    sort_cmd.add_argument(
        "--threshold", type=int, default=None, action=_TrackedStore,
        help="NEXSORT sort threshold in bytes (default: 2 blocks)",
    )
    sort_cmd.add_argument(
        "--flat-opt", action=_TrackedFlag,
        help="enable graceful degeneration into external merge sort",
    )
    sort_cmd.add_argument(
        "--compact", action="store_true",
        help="store with name dictionary + end-tag elimination",
    )
    sort_cmd.add_argument(
        "--target", default="",
        help="xsort only: '/'-separated tag path whose child lists to sort",
    )
    sort_cmd.add_argument(
        "--cache-blocks", type=int, default=0, action=_TrackedStore,
        help="memory blocks spent on the LRU buffer pool (default 0: "
        "no pool, I/O counts match the paper's model exactly)",
    )
    add_tuning(sort_cmd)
    sort_cmd.add_argument(
        "--profile", metavar="PATH", default=None,
        help="run the sort under cProfile and write stats (sorted by "
        "cumulative time) to PATH",
    )
    sort_cmd.add_argument(
        "--max-restarts", type=int, default=4,
        help="restart budget for checkpointed units (merge groups, "
        "subtree sorts) when a transient fault outlives the retries "
        "(default 4)",
    )
    sort_cmd.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record a span trace of the sort (phases, per-phase I/O "
        "deltas, simulated timestamps) and write it to PATH",
    )
    sort_cmd.add_argument(
        "--trace-format",
        choices=sorted(TRACE_WRITERS),
        default="chrome",
        help="trace file format: chrome (chrome://tracing / Perfetto), "
        "jsonl, or tree (human-readable summary); default chrome",
    )
    add_common(sort_cmd)

    serve_cmd = sub.add_parser(
        "serve",
        help="run a multi-tenant workload through the sort service",
    )
    serve_cmd.add_argument(
        "--workload", required=True, metavar="SPEC",
        help="workload mini-language, e.g. "
        "'jobs=8;rate=2.0;seed=7;shape=4x4x4;memory=24'",
    )
    serve_cmd.add_argument(
        "--policy", choices=["fair", "priority"], default="fair",
        help="scheduling policy: fair (min-clock processor sharing) or "
        "priority (strict, higher JobSpec priority first)",
    )
    serve_cmd.add_argument(
        "--pool-memory", type=int, default=96,
        help="global memory pool in blocks that job leases are carved "
        "from (default 96)",
    )
    serve_cmd.add_argument(
        "--block-size", type=int, default=4096,
        help="device block size in bytes (default 4096)",
    )
    serve_cmd.add_argument(
        "--no-degrade", action="store_true",
        help="disable degraded admission (shrunken grants); jobs that "
        "do not fit are queued or rejected instead",
    )
    serve_cmd.add_argument(
        "--max-extra-depth", type=int, default=0,
        help="extra Arge-Thorup merge-tree levels a degraded grant may "
        "cost a job relative to its full request (default 0)",
    )
    serve_cmd.add_argument(
        "--verify-solo", action="store_true",
        help="re-run every completed job alone at the same grant and "
        "check bit-identity (digest, counters, phase breakdown); "
        "exit 1 on any mismatch",
    )
    serve_cmd.add_argument(
        "--trace-dir", metavar="DIR", default=None,
        help="write per-tenant jsonl traces to DIR "
        "(<tenant>.scheduled.jsonl; with --verify-solo also "
        "<tenant>.solo.jsonl, comparable via `repro trace diff`)",
    )
    serve_cmd.add_argument(
        "--stats", action="store_true",
        help="print per-tenant counters and disk utilization",
    )
    add_tuning(serve_cmd)

    merge_cmd = sub.add_parser(
        "merge", help="sort two documents and merge them in one pass"
    )
    merge_cmd.add_argument("left")
    merge_cmd.add_argument("right")
    merge_cmd.add_argument("-o", "--output")
    merge_cmd.add_argument(
        "--preserve-order", action="store_true",
        help="keep the left document's child ordering in the result",
    )
    add_common(merge_cmd)

    dedup_cmd = sub.add_parser(
        "dedup",
        help="sort a document and remove duplicate sibling subtrees",
    )
    dedup_cmd.add_argument("input")
    dedup_cmd.add_argument("-o", "--output")
    add_common(dedup_cmd)

    table_cmd = sub.add_parser(
        "table1", help="print the key-path representation (paper Table 1)"
    )
    table_cmd.add_argument("input")
    add_common(table_cmd)

    validate_cmd = sub.add_parser(
        "validate", help="validate a document against a DTD"
    )
    validate_cmd.add_argument("input")
    validate_cmd.add_argument("--dtd", required=True)
    add_common(validate_cmd, with_spec=False)

    analyze_cmd = sub.add_parser(
        "analyze",
        help="print the document's external-memory geometry and the "
        "paper's bounds",
    )
    analyze_cmd.add_argument("input")
    add_common(analyze_cmd, with_spec=False)

    trace_cmd = sub.add_parser(
        "trace", help="work with trace files written by sort --trace"
    )
    trace_sub = trace_cmd.add_subparsers(dest="trace_command", required=True)
    trace_diff = trace_sub.add_parser(
        "diff",
        help="compare two traces span by span; exit 1 on any delta",
    )
    trace_diff.add_argument("a", help="baseline trace (jsonl or chrome)")
    trace_diff.add_argument("b", help="candidate trace (jsonl or chrome)")
    trace_diff.add_argument(
        "--ignore", action="append", default=[], metavar="NAME",
        help="exclude spans whose path contains this segment "
        "(repeatable; e.g. --ignore fault-injected)",
    )
    trace_diff.add_argument(
        "--ignore-counter", action="append", default=[], metavar="KEY",
        help="exclude this counter key from every span and the totals "
        "(repeatable; e.g. --ignore-counter compress_raw_bytes when "
        "comparing a compressed run against an uncompressed baseline)",
    )

    return parser


def _make_spec(args) -> SortSpec:
    if getattr(args, "spec", None):
        return SortSpec.parse(args.spec)
    rules = {}
    for mapping in args.tag_attr:
        if "=" not in mapping:
            raise ReproError(
                f"--tag-attr needs TAG=ATTR, got {mapping!r}"
            )
        tag, attr = mapping.split("=", 1)
        rules[tag] = ByAttribute(attr, missing_uses_tag=True)
    return SortSpec(
        default=ByAttribute(args.by, missing_uses_tag=True), rules=rules
    )


def _make_merge_options(args) -> MergeOptions:
    compress = getattr(args, "compress", "off")
    return MergeOptions(
        run_formation=getattr(args, "run_formation", "load-sort"),
        merge_kernel=getattr(args, "merge_kernel", "heap"),
        embedded_keys=getattr(args, "embedded_keys", False),
        kernel=getattr(args, "kernel", "scalar"),
        compress=None if compress in (None, "off") else compress,
        compress_capacity=getattr(args, "compress_capacity", False),
    )


def _plan_auto(args, document, base_device):
    """Fill the knobs the user left unset with the planner's picks.

    Explicit flags win: anything recorded in ``args._provided`` is
    pinned for the planner, which then optimizes only the free axes.
    Disks are hardware (the device is already built), so that axis is
    always pinned; a planned prefetch window is applied to the striped
    device in place.
    """
    from .analysis import Planner, profile_document

    provided = getattr(args, "_provided", set())
    if args.algorithm == "xsort":
        raise ReproError(
            "--plan auto covers nexsort and mergesort; xsort's "
            "target-path semantics are outside the planner's grid"
        )
    profile = profile_document(document)
    disks = getattr(args, "disks", 1)
    planner = Planner(
        profile,
        memory_blocks=args.memory,
        block_size=args.block_size,
        disks=disks,
        cost_model=getattr(base_device.stats, "cost_model", None),
    )
    fixed = {"memory_blocks": args.memory, "disks": disks}
    if "algorithm" in provided:
        fixed["algorithm"] = (
            "merge_sort" if args.algorithm == "mergesort" else "nexsort"
        )
    if "threshold" in provided and args.threshold is not None:
        fixed["threshold_blocks"] = max(
            1, round(args.threshold / args.block_size)
        )
    for dest, knob in (
        ("cache_blocks", "cache_blocks"),
        ("flat_opt", "flat_optimization"),
        ("run_formation", "run_formation"),
        ("merge_kernel", "merge_kernel"),
        ("embedded_keys", "embedded_keys"),
        ("kernel", "kernel"),
        ("prefetch_depth", "prefetch_depth"),
        ("prefetch_policy", "prefetch_policy"),
        ("compress_capacity", "compress_capacity"),
    ):
        if dest in provided:
            fixed[knob] = getattr(args, dest)
    if "compress" in provided:
        fixed["compress"] = (
            None if args.compress == "off" else args.compress
        )
    plan = planner.choose(fixed=fixed)
    chosen = plan.config
    args.algorithm = (
        "mergesort" if chosen.algorithm == "merge_sort" else "nexsort"
    )
    if args.algorithm == "nexsort":
        args.threshold = chosen.threshold_blocks * args.block_size
    args.flat_opt = chosen.flat_optimization
    args.cache_blocks = chosen.cache_blocks
    args.run_formation = chosen.run_formation
    args.merge_kernel = chosen.merge_kernel
    args.embedded_keys = chosen.embedded_keys
    args.kernel = chosen.kernel
    args.compress = chosen.compress or "off"
    args.compress_capacity = chosen.compress_capacity
    if (
        isinstance(base_device, StripedDevice)
        and "prefetch_depth" not in provided
    ):
        base_device.prefetch_depth = chosen.prefetch_depth
        if "prefetch_policy" not in provided:
            base_device.prefetch_policy = chosen.prefetch_policy
    return plan


def _make_device(args):
    disks = getattr(args, "disks", 1)
    prefetch_depth = getattr(args, "prefetch_depth", 0)
    if disks < 1:
        raise ReproError(f"--disks must be at least 1, got {disks}")
    if args.scratch:
        if disks > 1 or prefetch_depth:
            raise ReproError(
                "--disks/--prefetch-depth model the simulated parallel "
                "device and cannot be combined with --scratch"
            )
        return FileBackedBlockDevice(
            args.scratch, block_size=args.block_size
        )
    if disks > 1 or prefetch_depth:
        return StripedDevice(
            disks=disks,
            block_size=args.block_size,
            prefetch_depth=prefetch_depth,
            prefetch_policy=getattr(args, "prefetch_policy", "forecast"),
        )
    return BlockDevice(block_size=args.block_size)


def _load(store, path: str, compaction=None) -> Document:
    # Incremental: the file never needs to fit in a Python string.
    return Document.from_file(store, path, compaction)


def _emit(document: Document, output: str | None) -> None:
    text = document.to_string(indent="  ")
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        print(text)


def _print_stats(label: str, stats_obj, out=sys.stdout) -> None:
    print(f"[{label}]", file=out)
    print(f"  total block I/Os:    {stats_obj.total_ios}", file=out)
    print(
        f"  simulated seconds:   {stats_obj.simulated_seconds:.4f}",
        file=out,
    )


def cmd_sort(args) -> int:
    base_device = _make_device(args)
    tracer = Tracer(base_device.stats) if args.trace else None
    device, injector, retrier = build_faulty_device(
        base_device,
        args.faults,
        policy=(
            RetryPolicy(max_retries=args.retries) if args.retries else None
        ),
        tracer=tracer,
    )
    recovery = (
        RecoveryContext(max_restarts=args.max_restarts, tracer=tracer)
        if args.faults
        else None
    )
    try:
        store = RunStore(device)
        spec = _make_spec(args)
        compaction = CompactionConfig() if args.compact else None
        with maybe_span(tracer, "document-load", input=args.input):
            document = _load(store, args.input, compaction)
        plan = None
        if getattr(args, "plan", "off") == "auto":
            with maybe_span(tracer, "plan", mode="auto") as plan_span:
                plan = _plan_auto(args, document, base_device)
                if plan_span is not None:
                    plan_span.set(
                        algorithm=plan.config.algorithm,
                        cache_blocks=plan.config.cache_blocks,
                        run_formation=plan.config.run_formation,
                        merge_kernel=plan.config.merge_kernel,
                        embedded_keys=plan.config.embedded_keys,
                        kernel=plan.config.kernel,
                        predicted_seconds=round(
                            plan.cost.total_seconds, 6
                        ),
                        considered=plan.considered,
                    )
        merge_options = _make_merge_options(args)
        profiler = None
        if getattr(args, "profile", None):
            import cProfile

            profiler = cProfile.Profile()
        wall_start = time.perf_counter()
        if profiler is not None:
            profiler.enable()
        if args.algorithm == "nexsort":
            result, report = nexsort(
                document,
                spec,
                memory_blocks=args.memory,
                threshold_bytes=args.threshold,
                depth_limit=args.depth_limit,
                flat_optimization=args.flat_opt,
                cache_blocks=args.cache_blocks,
                merge_options=merge_options,
                tracer=tracer,
                recovery=recovery,
            )
        elif args.algorithm == "mergesort":
            result, report = external_merge_sort(
                document, spec, memory_blocks=args.memory,
                cache_blocks=args.cache_blocks,
                merge_options=merge_options,
                tracer=tracer,
                recovery=recovery,
            )
        else:
            if not merge_options.is_default:
                print(
                    "note: xsort ignores --run-formation, --merge-kernel, "
                    "--embedded-keys, --kernel and --compress",
                    file=sys.stderr,
                )
            if recovery is not None:
                print(
                    "note: xsort has no checkpointed recovery; faults are "
                    "absorbed by --retries only",
                    file=sys.stderr,
                )
            # xsort is not instrumented internally; one covering span
            # keeps its I/O attributed so the trace still tiles.
            with maybe_span(tracer, "xsort", target=args.target or "/"):
                result, report = xsort(
                    document, spec, args.target, memory_blocks=args.memory,
                    cache_blocks=args.cache_blocks,
                )
        if profiler is not None:
            profiler.disable()
        wall_seconds = time.perf_counter() - wall_start
        if profiler is not None:
            import pstats

            with open(args.profile, "w", encoding="utf-8") as handle:
                pstats.Stats(profiler, stream=handle).sort_stats(
                    "cumulative"
                ).print_stats()
            print(f"profile: stats -> {args.profile}", file=sys.stderr)
        if tracer is not None:
            trace = tracer.finish()
            with open(args.trace, "w", encoding="utf-8") as handle:
                TRACE_WRITERS[args.trace_format](trace, handle)
            print(
                f"trace: {len(list(trace.walk()))} spans covering "
                f"{trace.totals.total_ios} I/Os -> {args.trace} "
                f"({args.trace_format})",
                file=sys.stderr,
            )
        _emit(result, args.output)
        if args.stats:
            from .bench.harness import peak_rss_bytes

            if plan is not None:
                for line in plan.describe().splitlines():
                    print(line, file=sys.stderr)
            _print_stats(args.algorithm, report, out=sys.stderr)
            print(
                f"  wall seconds:        {wall_seconds:.4f}",
                file=sys.stderr,
            )
            rss = peak_rss_bytes()
            if rss is not None:
                print(
                    f"  peak RSS:            {rss / (1 << 20):.1f} MiB",
                    file=sys.stderr,
                )
            if args.algorithm in ("nexsort", "mergesort"):
                print(
                    f"  run length avg/max:  "
                    f"{report.avg_run_length:.1f}/{report.max_run_length}",
                    file=sys.stderr,
                )
                print(
                    f"  merge comparisons:   {report.merge_comparisons}",
                    file=sys.stderr,
                )
            if args.cache_blocks:
                print(
                    f"  cache hits/misses:   "
                    f"{report.stats.cache_hits}/"
                    f"{report.stats.cache_misses}",
                    file=sys.stderr,
                )
                print(
                    f"  cache evictions:     "
                    f"{report.stats.cache_evictions}",
                    file=sys.stderr,
                )
            if base_device.disks > 1 or base_device.prefetch_depth:
                snap = report.stats
                print(
                    f"  disks:               {base_device.disks} "
                    f"(prefetch depth {base_device.prefetch_depth}, "
                    f"policy {base_device.prefetch_policy})",
                    file=sys.stderr,
                )
                print(
                    f"  disk/overlap time:   {snap.disk_seconds():.4f}s / "
                    f"{snap.overlap_seconds():.4f}s",
                    file=sys.stderr,
                )
                print(
                    f"  pipeline stalls:     {snap.stall_seconds:.4f}s",
                    file=sys.stderr,
                )
                utilization = snap.disk_utilization()
                if utilization:
                    per_disk = " ".join(
                        f"disk{d}={u:.0%}"
                        for d, u in sorted(utilization.items())
                    )
                    print(
                        f"  disk utilization:    {per_disk}",
                        file=sys.stderr,
                    )
            if args.algorithm == "nexsort":
                print(
                    f"  subtree sorts (x):   {report.x}", file=sys.stderr
                )
                print(
                    f"  breakdown:           {report.io_breakdown()}",
                    file=sys.stderr,
                )
            if injector is not None:
                fault_stats = injector.fault_stats
                print(
                    f"  faults injected:     {fault_stats.injected} "
                    f"(transient {fault_stats.transient}, persistent "
                    f"{fault_stats.persistent}, torn {fault_stats.torn})",
                    file=sys.stderr,
                )
                if retrier is not None:
                    retry_stats = retrier.retry_stats
                    print(
                        f"  I/O retries:         {retry_stats.retries} "
                        f"({retry_stats.penalty_seconds:.4f}s simulated "
                        f"backoff)",
                        file=sys.stderr,
                    )
                if recovery is not None:
                    print(
                        f"  unit restarts:       {recovery.restarts}",
                        file=sys.stderr,
                    )
                    print(
                        f"  checkpoints:         "
                        f"{len(recovery.checkpoints)} "
                        f"(last: {recovery.describe_last()})",
                        file=sys.stderr,
                    )
        return 0
    except DeviceFault as fault:
        # A fault outside any recovery-wrapped phase (document load, the
        # final emit, or an algorithm without checkpointing).
        if recovery is not None:
            raise recovery.to_error(fault) from fault
        raise
    finally:
        if isinstance(base_device, FileBackedBlockDevice):
            base_device.close()


def cmd_serve(args) -> int:
    import os

    from .io.lease import ResourcePool
    from .service import (
        AdmissionController,
        Scheduler,
        parse_workload,
        run_solo,
    )

    if args.prefetch_depth:
        raise ReproError(
            "serve shares whole disks between jobs; per-job prefetch "
            "striping (--prefetch-depth) applies to `repro sort` only"
        )
    jobs = parse_workload(args.workload)
    pool = ResourcePool(
        args.pool_memory, block_size=args.block_size, disks=args.disks
    )
    admission = AdmissionController(
        pool,
        degrade=not args.no_degrade,
        max_extra_depth=args.max_extra_depth,
        plan=getattr(args, "plan", "off") == "auto",
    )
    merge_options = _make_merge_options(args)
    scheduler = Scheduler(
        pool,
        policy=args.policy,
        admission=admission,
        merge_options=merge_options,
        fault_plan=args.faults,
        retries=args.retries,
    )
    report = scheduler.run(jobs)
    report.verify_isolation()

    def _trace_path(tenant: str, kind: str) -> str:
        return os.path.join(args.trace_dir, f"{tenant}.{kind}.jsonl")

    if args.trace_dir:
        os.makedirs(args.trace_dir, exist_ok=True)
        for result in report.completed:
            if result.trace is not None:
                with open(
                    _trace_path(result.spec.tenant, "scheduled"),
                    "w", encoding="utf-8",
                ) as handle:
                    TRACE_WRITERS["jsonl"](result.trace, handle)

    header = (
        f"{'tenant':<8} {'action':<8} {'prio':>4} {'grant':>6} "
        f"{'arrive':>8} {'done':>8} {'latency':>8}"
    )
    print(header)
    for result in report.results:
        done = (
            f"{result.completed_seconds:.3f}" if result.completed else "-"
        )
        latency = (
            f"{result.latency_seconds:.3f}" if result.completed else "-"
        )
        grant = (
            result.decision.memory_blocks
            if result.decision.admitted
            else "-"
        )
        print(
            f"{result.spec.tenant:<8} {result.decision.action:<8} "
            f"{result.spec.priority:>4} {grant:>6} "
            f"{result.spec.arrival:>8.3f} {done:>8} {latency:>8}"
        )
    summary = report.summary()
    print(
        f"\npolicy={summary['policy']} disks={summary['disks']} "
        f"jobs={summary['jobs']} completed={summary['completed']} "
        f"degraded={summary['degraded']} rejected={summary['rejected']}"
    )
    print(
        f"makespan: {summary['makespan_seconds']:.4f}s  "
        f"throughput: {summary['throughput_jobs_per_second']:.4f} jobs/s"
    )
    print(
        f"latency p50/p95/p99: "
        f"{summary['latency_p50_seconds']:.4f}s / "
        f"{summary['latency_p95_seconds']:.4f}s / "
        f"{summary['latency_p99_seconds']:.4f}s"
    )
    if args.stats:
        print("\nper-tenant counters (tile exactly to the pool totals):")
        for result in report.completed:
            print(
                f"  {result.spec.tenant}: "
                f"reads={result.counters.get('reads', 0)} "
                f"writes={result.counters.get('writes', 0)} "
                f"comparisons={result.counters.get('comparisons', 0)}"
            )
        utilization = scheduler.timeline.utilization()
        if utilization:
            per_disk = " ".join(
                f"disk{d}={u:.0%}" for d, u in sorted(utilization.items())
            )
            print(f"disk utilization: {per_disk}")

    exit_code = 0
    if args.verify_solo:
        print("\nsolo bit-identity check:")
        for result in report.completed:
            solo = run_solo(
                result.spec,
                memory_blocks=result.decision.memory_blocks,
                cache_blocks=result.decision.cache_blocks,
                block_size=args.block_size,
                merge_options=(
                    result.decision.plan.merge_options()
                    if result.decision.plan is not None
                    else merge_options
                ),
                fault_plan=args.faults,
                retries=args.retries,
            )
            same = (
                solo.digest == result.digest
                and solo.counters == result.counters
                and solo.phases == result.phases
            )
            verdict = "bit-identical" if same else "MISMATCH"
            print(f"  {result.spec.tenant}: {verdict}")
            if not same:
                exit_code = 1
            if args.trace_dir and solo.trace is not None:
                with open(
                    _trace_path(result.spec.tenant, "solo"),
                    "w", encoding="utf-8",
                ) as handle:
                    TRACE_WRITERS["jsonl"](solo.trace, handle)
    return exit_code


def cmd_merge(args) -> int:
    device = _make_device(args)
    try:
        store = RunStore(device)
        spec = _make_spec(args)
        left = _load(store, args.left)
        right = _load(store, args.right)
        if args.preserve_order:
            merged, report = merge_preserving_order(
                left,
                right,
                spec,
                memory_blocks=args.memory,
                depth_limit=args.depth_limit,
            )
        else:
            sorted_left, _ = nexsort(
                left, spec, memory_blocks=args.memory,
                depth_limit=args.depth_limit,
            )
            sorted_right, _ = nexsort(
                right, spec, memory_blocks=args.memory,
                depth_limit=args.depth_limit,
            )
            merged, report = structural_merge(
                sorted_left, sorted_right, spec,
                depth_limit=args.depth_limit,
            )
        _emit(merged, args.output)
        if args.stats:
            _print_stats("merge", report, out=sys.stderr)
        return 0
    finally:
        if isinstance(device, FileBackedBlockDevice):
            device.close()


def cmd_dedup(args) -> int:
    from .merge import deduplicate

    device = _make_device(args)
    try:
        store = RunStore(device)
        spec = _make_spec(args)
        document = _load(store, args.input)
        sorted_document, _sort_report = nexsort(
            document,
            spec,
            memory_blocks=args.memory,
            depth_limit=args.depth_limit,
        )
        result, report = deduplicate(sorted_document, spec)
        _emit(result, args.output)
        if args.stats:
            _print_stats("dedup", report, out=sys.stderr)
            print(
                f"  duplicate subtrees removed: "
                f"{report.duplicate_subtrees_removed}",
                file=sys.stderr,
            )
        return 0
    finally:
        if isinstance(device, FileBackedBlockDevice):
            device.close()


def cmd_table1(args) -> int:
    device = _make_device(args)
    store = RunStore(device)
    spec = _make_spec(args)
    document = _load(store, args.input)
    rows = key_path_table(document, spec)
    width = max(len(path) for path, _content in rows)
    print(f"{'Key path'.ljust(width)}  Element content")
    for path, content in rows:
        print(f"{path.ljust(width)}  {content}")
    return 0


def cmd_validate(args) -> int:
    with open(args.dtd, "r", encoding="utf-8") as handle:
        dtd = DTD.parse(handle.read())
    device = _make_device(args)
    store = RunStore(device)
    document = _load(store, args.input)
    violations = dtd.validate(document.to_element())
    if not violations:
        print("valid")
        return 0
    for violation in violations:
        print(violation, file=sys.stderr)
    print(f"{len(violations)} violation(s)", file=sys.stderr)
    return 1


def cmd_analyze(args) -> int:
    from .analysis import recommend

    device = _make_device(args)
    store = RunStore(device)
    document = _load(store, args.input)
    geometry = ModelGeometry.from_document(document, args.memory)
    lower = sorting_lower_bound_ios(
        geometry.N, geometry.B, geometry.M, geometry.k
    )
    upper = nexsort_upper_bound_ios(
        geometry.N, geometry.B, geometry.M, geometry.k, 2 * geometry.B
    )
    passes = merge_sort_passes(geometry.N, geometry.B, geometry.M)
    print(f"elements (N):          {geometry.N}")
    print(f"elements/block (B):    {geometry.B}")
    print(f"memory elements (M):   {geometry.M} ({args.memory} blocks)")
    print(f"max fan-out (k):       {geometry.k}")
    print(f"height:                {document.height}")
    print(f"document blocks:       {document.block_count}")
    print(f"Thm 4.4 lower bound:   {lower:.0f} I/Os")
    print(f"Thm 4.5 NEXSORT bound: {upper:.0f} I/Os")
    print(f"merge sort passes:     {passes}")
    verdict = recommend(document, args.memory)
    print(f"\nrecommended algorithm: {verdict.algorithm}")
    if verdict.threshold_bytes is not None:
        print(f"  threshold:           {verdict.threshold_bytes} bytes")
    if verdict.flat_optimization:
        print("  graceful degeneration: on")
    for line in verdict.rationale:
        print(f"  - {line}")
    return 0


def cmd_trace(args) -> int:
    diff = diff_files(
        args.a,
        args.b,
        ignore=tuple(args.ignore),
        ignore_counters=tuple(args.ignore_counter),
    )
    print(diff.render())
    return 0 if diff.identical else 1


_COMMANDS = {
    "sort": cmd_sort,
    "serve": cmd_serve,
    "merge": cmd_merge,
    "dedup": cmd_dedup,
    "table1": cmd_table1,
    "validate": cmd_validate,
    "analyze": cmd_analyze,
    "trace": cmd_trace,
}


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
