"""Internal-memory recursive sort - the paper's first "popular algorithm".

Read the whole document into a DOM, recursively sort every child list by
reordering pointers.  It "takes full advantage of the document structure but
assumes that the entire document fits in internal memory" (Section 1).  In
this package it serves two roles:

* the *oracle* against which both external sorters are verified in tests -
  any correct sort must produce exactly this tree; and
* the in-memory kernel NEXSORT uses when a popped subtree fits in memory.

Both entry points accept ``kernel="columnar"``: every eligible child list
is gathered into one batched stable argsort over engine-normalized key
bytes (:func:`repro.core.columnar.argsort_groups`) instead of one
``list.sort`` per list.  The resulting tree is identical - normalized keys
are order- and equality-faithful and the batched argsort is stable, so
ties keep document order exactly like the scalar sort.
"""

from __future__ import annotations

from typing import Callable

from ..keys import SortSpec
from ..xml.model import Element


def _sort_groups_columnar(
    groups: list[list[Element]], spec: SortSpec
) -> None:
    """Batch-sort many child lists in place (stable, order-identical)."""
    from ..core.columnar import argsort_groups, normalized_atom_bytes

    key_of = spec.key_of_element
    memo: dict[tuple, bytes] = {}
    group_keys: list[list[bytes]] = []
    for children in groups:
        keys = []
        append = keys.append
        for child in children:
            atom = key_of(child)
            norm = memo.get(atom)
            if norm is None:
                norm = normalized_atom_bytes(atom)
                memo[atom] = norm
            append(norm)
        group_keys.append(keys)
    for children, order in zip(groups, argsort_groups(group_keys)):
        children[:] = [children[i] for i in order]


def sort_element(
    element: Element,
    spec: SortSpec,
    depth_limit: int | None = None,
    kernel: str = "scalar",
) -> Element:
    """Return a new, fully sorted copy of ``element``.

    Children at every level are ordered by the spec's key (stably, so ties
    keep document order - equivalent to the paper's position tie-break).
    With ``depth_limit=d``, only elements at levels 1..d have their child
    lists sorted; deeper subtrees keep their original internal order
    (Section 3.2, depth-limited sorting; the root is level 1).

    Iterative, so degenerate chain documents deeper than Python's
    recursion limit sort fine.
    """
    copies: dict[int, Element] = {}
    # Pass 1 (preorder): shallow-copy every node.
    for node in element.iter():
        copies[id(node)] = Element(node.tag, node.attrs, node.text, [])
    # Pass 2 (postorder via reversed preorder): attach sorted child lists.
    order: list[tuple[Element, int]] = []
    stack: list[tuple[Element, int]] = [(element, 1)]
    while stack:
        node, level = stack.pop()
        order.append((node, level))
        for child in node.children:
            stack.append((child, level + 1))
    columnar = kernel == "columnar"
    groups: list[list[Element]] = []
    for node, level in reversed(order):
        copy = copies[id(node)]
        copy.children = [copies[id(child)] for child in node.children]
        if depth_limit is None or level <= depth_limit:
            if columnar:
                if len(copy.children) > 1:
                    groups.append(copy.children)
            else:
                copy.children.sort(key=spec.key_of_element)
    if groups:
        _sort_groups_columnar(groups, spec)
    return copies[id(element)]


def sort_element_in_place(
    element: Element,
    spec: SortSpec,
    depth_limit: int | None = None,
    kernel: str = "scalar",
) -> None:
    """Sort ``element``'s subtree in place (pointer reordering only)."""
    order: list[tuple[Element, int]] = []
    stack: list[tuple[Element, int]] = [(element, 1)]
    while stack:
        node, level = stack.pop()
        order.append((node, level))
        for child in node.children:
            stack.append((child, level + 1))
    columnar = kernel == "columnar"
    groups: list[list[Element]] = []
    for node, level in reversed(order):
        if depth_limit is None or level <= depth_limit:
            if columnar:
                if len(node.children) > 1:
                    groups.append(node.children)
            else:
                node.children.sort(key=spec.key_of_element)
    if groups:
        _sort_groups_columnar(groups, spec)


def comparison_count(element: Element) -> int:
    """Analytic comparison count of the recursive sort (``n log n`` per
    child list), used by the CPU cost model."""
    from math import ceil, log2

    total = 0
    for node in element.iter():
        n = len(node.children)
        if n > 1:
            total += n * max(1, ceil(log2(n)))
    return total


def is_fully_sorted(
    element: Element,
    spec: SortSpec,
    depth_limit: int | None = None,
) -> bool:
    """True when every child list is non-decreasing under the spec."""
    key: Callable[[Element], tuple] = spec.key_of_element
    return element.is_sorted_by(key, depth_limit=depth_limit)
