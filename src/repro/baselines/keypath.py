"""The key-path representation of XML (paper Section 1, Table 1).

The key path of an element is "the concatenation of the sort key values of
all elements along the path from the root"; sorting key-path records with a
flat-file algorithm yields the fully sorted document, because a parent's
path is a strict prefix of its children's paths and therefore sorts first.
Uniqueness among siblings is guaranteed by appending the element's document
position to each path component (paper: "appending it with the element's
location in the input").

A :class:`KeyPathRecord` carries one element: its path (a tuple of
``(key_atom, position)`` components, root first) and its payload - either
the element's tag/attributes/text, or a pointer to an already-sorted run
(NEXSORT uses key-path sorting for subtrees too large for memory, and such
subtrees can contain collapsed children).

This module provides record generation from annotated event streams,
encoding/decoding for device storage, the sorted-records-to-token-stream
decoder, and the pretty key-path table of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..errors import CodecError, SortSpecError
from ..keys import KeyEvaluator, SortSpec
from ..xml.codec import (
    decode_key_atom,
    encode_key_atom,
    read_varint,
    write_varint,
)
from ..xml.compact import NameDictionary
from ..xml.tokens import (
    EndTag,
    KeyAtom,
    RunPointer,
    StartTag,
    Text,
    Token,
)

_KIND_ELEMENT = 1
_KIND_POINTER = 2

#: Path component: (key atom, document position).
PathComponent = tuple[KeyAtom, int]


@dataclass(frozen=True)
class KeyPathRecord:
    """One element (or collapsed subtree) of the key-path representation."""

    path: tuple[PathComponent, ...]
    tag: str = ""
    attrs: tuple[tuple[str, str], ...] = ()
    text: str = ""
    run_id: int | None = None
    element_count: int = 0
    payload_bytes: int = 0

    @property
    def is_pointer(self) -> bool:
        return self.run_id is not None

    @property
    def depth(self) -> int:
        return len(self.path)

    def sort_key(self) -> tuple[PathComponent, ...]:
        return self.path


def records_from_annotated_events(
    events: Iterable[Token],
) -> Iterator[KeyPathRecord]:
    """Generate key-path records from a key-annotated event stream.

    The stream must carry keys on *start tags* (start-computable specs): a
    child's path needs its ancestors' keys while those ancestors are still
    open, which is exactly why the external merge sort baseline cannot
    handle subtree-evaluated criteria (paper Section 1) while NEXSORT can.

    Records are emitted in document preorder.
    """
    path: list[PathComponent] = []
    pending_text: list[list[str]] = []
    pending: list[KeyPathRecord | None] = []

    def flush(index: int) -> KeyPathRecord | None:
        record = pending[index]
        if record is None:
            return None
        text = "".join(pending_text[index])
        pending[index] = None
        if text:
            return KeyPathRecord(
                path=record.path,
                tag=record.tag,
                attrs=record.attrs,
                text=text,
            )
        return record

    for event in events:
        if isinstance(event, StartTag):
            if event.key is None or event.pos is None:
                raise SortSpecError(
                    "key-path records need keys on start tags; use a "
                    "start-computable SortSpec (the paper's merge-sort "
                    "baseline has the same restriction)"
                )
            # A parent's record can be completed once we are sure no more
            # of its text will arrive - but text may follow children, so we
            # only finalize at the matching end tag.  We emit in preorder by
            # recording the element now and patching text in at the end...
            path.append((event.key, event.pos))
            pending.append(
                KeyPathRecord(
                    path=tuple(path), tag=event.tag, attrs=event.attrs
                )
            )
            pending_text.append([])
        elif isinstance(event, Text):
            if pending_text:
                pending_text[-1].append(event.text)
        elif isinstance(event, EndTag):
            record = flush(len(pending) - 1)
            if record is not None:
                yield record
            pending.pop()
            pending_text.pop()
            path.pop()
        elif isinstance(event, RunPointer):
            if event.key is None or event.pos is None:
                raise CodecError("run pointer without key annotations")
            yield KeyPathRecord(
                path=tuple(path) + ((event.key, event.pos),),
                run_id=event.run_id,
                element_count=event.element_count,
                payload_bytes=event.payload_bytes,
            )
        else:  # pragma: no cover - defensive
            raise CodecError(f"unexpected token {event!r}")


def records_from_document_scan(
    document, spec: SortSpec, category: str = "input_scan"
) -> Iterator[KeyPathRecord]:
    """Scan a document and generate its key-path records."""
    evaluator = KeyEvaluator(spec)
    annotated = evaluator.annotate(document.iter_events(category))
    return records_from_annotated_events(annotated)


# -- encoding ---------------------------------------------------------------


def encode_record(
    record: KeyPathRecord, names: NameDictionary | None = None
) -> bytes:
    out = bytearray()
    out.append(_KIND_POINTER if record.is_pointer else _KIND_ELEMENT)
    write_varint(out, len(record.path))
    for atom, pos in record.path:
        encode_key_atom(out, atom)
        write_varint(out, pos)
    if record.is_pointer:
        write_varint(out, record.run_id)
        write_varint(out, record.element_count)
        write_varint(out, record.payload_bytes)
        return bytes(out)
    _write_name(out, record.tag, names)
    write_varint(out, len(record.attrs))
    for name, value in record.attrs:
        _write_name(out, name, names)
        _write_str(out, value)
    _write_str(out, record.text)
    return bytes(out)


def decode_record(
    data: bytes, names: NameDictionary | None = None
) -> KeyPathRecord:
    kind = data[0]
    depth, pos = read_varint(data, 1)
    path = []
    for _ in range(depth):
        atom, pos = decode_key_atom(data, pos)
        position, pos = read_varint(data, pos)
        path.append((atom, position))
    if kind == _KIND_POINTER:
        run_id, pos = read_varint(data, pos)
        element_count, pos = read_varint(data, pos)
        payload_bytes, pos = read_varint(data, pos)
        return KeyPathRecord(
            path=tuple(path),
            run_id=run_id,
            element_count=element_count,
            payload_bytes=payload_bytes,
        )
    if kind != _KIND_ELEMENT:
        raise CodecError(f"unknown key-path record kind {kind}")
    tag, pos = _read_name(data, pos, names)
    attr_count, pos = read_varint(data, pos)
    attrs = []
    for _ in range(attr_count):
        name, pos = _read_name(data, pos, names)
        value, pos = _read_str(data, pos)
        attrs.append((name, value))
    text, pos = _read_str(data, pos)
    return KeyPathRecord(
        path=tuple(path), tag=tag, attrs=tuple(attrs), text=text
    )


def _write_str(out: bytearray, value: str) -> None:
    encoded = value.encode("utf-8")
    write_varint(out, len(encoded))
    out += encoded


def _read_str(data: bytes, pos: int) -> tuple[str, int]:
    length, pos = read_varint(data, pos)
    end = pos + length
    return data[pos:end].decode("utf-8"), end


def _write_name(
    out: bytearray, name: str, names: NameDictionary | None
) -> None:
    if names is None:
        _write_str(out, name)
    else:
        write_varint(out, names.intern(name))


def _read_name(
    data: bytes, pos: int, names: NameDictionary | None
) -> tuple[str, int]:
    if names is None:
        return _read_str(data, pos)
    name_id, pos = read_varint(data, pos)
    return names.lookup(name_id), pos


# -- decoding sorted records back to a token stream --------------------------


def tokens_from_sorted_records(
    records: Iterable[KeyPathRecord],
    base_level: int = 1,
    emit_end_tags: bool = True,
) -> Iterator[Token]:
    """Turn a path-sorted record stream back into a document token stream.

    Because a parent's path strictly prefixes (and therefore precedes) its
    children's, each record opens exactly one element one level below some
    ancestor already open.  Levels are absolute: ``base_level`` is the level
    of depth-1 records (1 for whole documents; the subtree root's level when
    NEXSORT key-path-sorts an oversized subtree).

    With ``emit_end_tags=False`` the stream is the compacted form (levels on
    starts, no ends), for documents stored with end-tag elimination.
    """
    open_tags: list[str] = []
    for record in records:
        depth = record.depth
        if depth == 0:
            raise CodecError("key-path record with empty path")
        while len(open_tags) >= depth:
            tag = open_tags.pop()
            if emit_end_tags:
                yield EndTag(tag)
        if len(open_tags) != depth - 1:
            raise CodecError(
                "key-path records out of order: jumped from depth "
                f"{len(open_tags)} to {depth}"
            )
        level = base_level + depth - 1
        if record.is_pointer:
            yield RunPointer(
                run_id=record.run_id,
                level=level,
                element_count=record.element_count,
                payload_bytes=record.payload_bytes,
            )
        else:
            yield StartTag(record.tag, record.attrs, level=level)
            if record.text:
                yield Text(record.text)
            open_tags.append(record.tag)
    while open_tags:
        tag = open_tags.pop()
        if emit_end_tags:
            yield EndTag(tag)


# -- Table 1 -----------------------------------------------------------------


def format_key_path(record: KeyPathRecord) -> str:
    """Human-readable path, like Table 1's ``/AC/Durham/323/name``."""
    parts = []
    for atom, _pos in record.path[1:]:  # the root's own component is "/"
        kind, value = atom
        if kind == 0:
            parts.append("")
        elif kind == 1:
            parts.append(str(int(value)) if value == int(value) else str(value))
        else:
            parts.append(str(value))
    return "/" + "/".join(parts) if parts else "/"


def key_path_table(document, spec: SortSpec) -> list[tuple[str, str]]:
    """The (key path, element content) rows of Table 1 for a document.

    Rows appear in document order (preorder), with key paths rendered the
    way the paper prints them.  Sorting these rows lexicographically is
    exactly what external merge sort does.
    """
    root = document.to_element()
    rows: list[tuple[str, str]] = []

    def visit(element, path: str) -> None:
        atom = spec.key_of_element(element)
        kind, value = atom
        if kind == 0:
            component = ""
        elif kind == 1:
            component = (
                str(int(value)) if value == int(value) else str(value)
            )
        else:
            component = str(value)
        here = "/" if not path and not rows else f"{path}/{component}"
        if not rows:
            here = "/"
        content = f"<{element.tag}"
        for name, attr_value in element.attrs.items():
            content += f' {name}="{attr_value}"'
        content += ">"
        if element.text:
            content += element.text
        rows.append((here, content))
        child_prefix = "" if here == "/" else here
        for child in element.children:
            visit(child, child_prefix)

    visit(root, "")
    return rows
