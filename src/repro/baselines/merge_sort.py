"""External merge sort of key-path records - the paper's baseline.

This is the second "popular algorithm" of Section 1: convert the document
to its key-path representation (Table 1), sort the records with the
classic external merge sort (run formation under the memory budget, then
``(M/B - 1)``-way merge passes), and decode the sorted records back into a
document.  Its I/O complexity carries the flat-file ``log_{M/B}(N/B)``
factor, which is what NEXSORT beats.

Like the paper's implementation, the baseline supports the Section 3.2
compaction techniques (name dictionaries, end-tag elimination) but only
start-computable ordering criteria.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.columnar import (
    emit_output_columnar,
    fast_path_key,
    form_runs_columnar,
)
from ..errors import DeviceFault, SortSpecError
from ..io.budget import MemoryBudget
from ..io.bufferpool import BufferPool
from ..io.compress import CompressionConfig
from ..io.stats import StatsSnapshot
from ..keys import KeyEvaluator, SortSpec
from ..obs.tracer import Tracer, maybe_span
from ..merge.engine import (
    DEFAULT_MERGE_OPTIONS,
    MergeOptions,
    RunFormer,
    embedded_key_of,
    normalized_path_key,
    strip_embedded_key,
)
from ..xml.codec import TokenCodec
from ..xml.document import Document
from .keypath import (
    decode_record,
    encode_record,
    records_from_annotated_events,
    tokens_from_sorted_records,
)
from .merging import merge_to_stream

#: Memory blocks not available for run formation: one block each for the
#: input scan buffer and the run output buffer.
_RESERVED_BLOCKS = 2

#: Records per grouped writer call on the fused columnar output path.
_EMIT_CHUNK = 1024


@dataclass
class MergeSortReport:
    """What one external merge sort run did."""

    element_count: int = 0
    input_blocks: int = 0
    memory_blocks: int = 0
    fan_in: int = 0
    initial_runs: int = 0
    avg_run_length: float = 0.0
    max_run_length: int = 0
    materialized_merge_passes: int = 0
    final_merge_width: int = 0
    stats: StatsSnapshot = field(default_factory=StatsSnapshot)

    @property
    def total_passes(self) -> int:
        """Passes over the data: formation + merges (final one included)."""
        final = 1 if self.final_merge_width > 1 else 0
        return 1 + self.materialized_merge_passes + final

    @property
    def merge_comparisons(self) -> int:
        """Comparisons spent inside merge passes (analytic or counted)."""
        return self.stats.merge_comparisons

    @property
    def total_ios(self) -> int:
        return self.stats.total_ios

    @property
    def simulated_seconds(self) -> float:
        return self.stats.elapsed_seconds()

    def io_breakdown(self) -> dict[str, int]:
        """Per-category total block accesses (reads + writes)."""
        return self.stats.io_breakdown()


class ExternalMergeSorter:
    """Sorts documents via their key-path representation.

    Args:
        spec: the ordering criterion; must be start-computable.
        memory_blocks: the model parameter ``M`` (in blocks).
        cache_blocks: blocks of ``M`` spent on a
            :class:`~repro.io.bufferpool.BufferPool`; 0 keeps the classic
            unpooled behaviour bit-for-bit.  The cache comes out of the
            merge fan-in - it is charged memory, not spare memory.
        merge_options: run-formation / merge-kernel / key-embedding knobs
            (:class:`~repro.merge.engine.MergeOptions`); the defaults
            reproduce the paper's algorithm bit-for-bit.
    """

    def __init__(
        self,
        spec: SortSpec,
        memory_blocks: int,
        cache_blocks: int = 0,
        merge_options: MergeOptions | None = None,
    ):
        if not spec.start_computable:
            raise SortSpecError(
                "external merge sort needs start-computable keys: a "
                "child's key path embeds its ancestors' keys while those "
                "ancestors are still open (see DESIGN.md); use NEXSORT "
                "for subtree-evaluated criteria"
            )
        if cache_blocks < 0:
            raise SortSpecError(
                f"cache_blocks cannot be negative: {cache_blocks}"
            )
        if memory_blocks < _RESERVED_BLOCKS + 1 + cache_blocks:
            raise SortSpecError(
                f"external merge sort needs at least "
                f"{_RESERVED_BLOCKS + 1} memory blocks plus the "
                f"{cache_blocks} buffer-pool blocks"
            )
        self.spec = spec
        self.memory_blocks = memory_blocks
        self.cache_blocks = cache_blocks
        self.merge_options = merge_options or DEFAULT_MERGE_OPTIONS

    def sort(
        self,
        document: Document,
        tracer: Tracer | None = None,
        recovery=None,
        lease=None,
    ) -> tuple[Document, MergeSortReport]:
        """Sort ``document``; returns (sorted document, report).

        With a tracer, the phases appear as ``run-formation``,
        ``merge-pass`` (one per materialized pass), and ``output-emit``
        root spans; ``tracer=None`` keeps the untraced fast path.

        With a :class:`~repro.faults.RecoveryContext`, merge passes
        checkpoint after every completed run and restart on transient
        device faults; unrecoverable faults surface as
        :class:`~repro.errors.SortRecoveryError`.
        """
        if recovery is None:
            return self._sort(document, tracer, None, lease)
        try:
            return self._sort(document, tracer, recovery, lease)
        except DeviceFault as fault:
            raise recovery.to_error(fault) from fault

    def _sort(
        self,
        document: Document,
        tracer: Tracer | None,
        recovery,
        lease=None,
    ) -> tuple[Document, MergeSortReport]:
        store = document.store
        device = store.device
        names = (
            document.compaction.names if document.compaction else None
        )
        if lease is not None:
            if lease.budget.total_blocks != self.memory_blocks:
                raise SortSpecError(
                    f"lease grants {lease.budget.total_blocks} blocks but "
                    f"the sorter was configured for {self.memory_blocks}"
                )
            budget = lease.budget
        else:
            budget = MemoryBudget(self.memory_blocks)
        buffers = budget.reserve(_RESERVED_BLOCKS, "io-buffers")
        if self.cache_blocks:
            store.attach_pool(
                BufferPool(
                    device,
                    self.cache_blocks,
                    budget=budget,
                    owner="buffer-pool",
                    tracer=tracer,
                )
            )
        formation = budget.reserve_rest("run-formation")
        capacity_bytes = formation.blocks * device.block_size
        fan_in = max(2, self.memory_blocks - 1 - self.cache_blocks)
        prior_compression = store.compression
        if self.merge_options.compress is not None:
            store.compression = CompressionConfig(
                codec=self.merge_options.compress,
                embedded_keys=self.merge_options.embedded_keys,
                capacity=self.merge_options.compress_capacity,
            )

        try:
            report = MergeSortReport(
                element_count=document.element_count,
                input_blocks=document.block_count,
                memory_blocks=self.memory_blocks,
                fan_in=fan_in,
            )
            before = device.stats.snapshot()

            # Pass 1: scan the input, form sorted initial runs.
            options = self.merge_options
            embedded = options.embedded_keys
            former = RunFormer(
                store, capacity_bytes, options, tracer=tracer,
                recovery=recovery,
            )
            with maybe_span(
                tracer, "run-formation", mode=options.run_formation
            ) as span:
                # Columnar kernel: fused scan - tokenize, key-evaluate,
                # and encode by byte splicing in one loop, feeding the
                # former normalized bytes keys (order-faithful, so run
                # contents match the scalar tuple keys record for
                # record).  Falls back to the scalar pipeline for
                # storage it does not cover (compacted documents).
                fused = options.columnar and form_runs_columnar(
                    document, self.spec, former, device
                )
                if not fused:
                    evaluator = KeyEvaluator(self.spec)
                    annotated = evaluator.annotate(
                        document.iter_events("input_scan")
                    )
                    records = records_from_annotated_events(annotated)
                    for record in records:
                        encoded = encode_record(record, names)
                        sort_key = record.sort_key()
                        key = (
                            normalized_path_key(sort_key)
                            if embedded
                            else sort_key
                        )
                        device.stats.record_tokens(1)
                        former.add(key, encoded)
                initial_runs = former.finish()
                if span is not None:
                    span.set(runs=len(initial_runs))
            report.initial_runs = len(initial_runs)
            if former.run_lengths:
                report.avg_run_length = sum(former.run_lengths) / len(
                    former.run_lengths
                )
                report.max_run_length = max(former.run_lengths)

            # Merge passes, streaming the final merge into the decoder.
            if embedded:
                key_of = embedded_key_of
            elif options.columnar:
                # Path-only parse into normalized bytes: same ordering
                # as the decoded tuple key, no tag/attr/text decode.
                key_of = fast_path_key
            else:

                def key_of(encoded: bytes) -> tuple:
                    return decode_record(encoded, names).sort_key()

            stream, passes, width = merge_to_stream(
                store, initial_runs, key_of, fan_in, options=options,
                tracer=tracer, recovery=recovery,
            )
            report.materialized_merge_passes = passes
            report.final_merge_width = width

            # Decode sorted records into the output document.  The span
            # covers the streamed final merge (consumed here) and the pool
            # detach, so deferred write-backs are attributed.
            emit_ends = not (
                document.compaction is not None
                and document.compaction.eliminate_end_tags
            )
            codec = TokenCodec(names)
            with maybe_span(
                tracer, "output-emit", final_merge_width=width
            ):
                writer = store.create_writer("output")
                if options.columnar:
                    # Fused output: records back to stored tokens by byte
                    # splicing (splice == re-encode in either name
                    # dialect, with or without end-tag elimination).
                    emit_output_columnar(
                        stream, writer, device,
                        strip_embedded=embedded,
                        chunk_records=(
                            _EMIT_CHUNK
                            if store.pool is None and recovery is None
                            else 0
                        ),
                        names_coded=names is not None,
                        emit_ends=emit_ends,
                    )
                else:
                    if embedded:
                        decoded = (
                            decode_record(strip_embedded_key(record), names)
                            for record in stream
                        )
                    else:
                        decoded = (
                            decode_record(record, names) for record in stream
                        )
                    for token in tokens_from_sorted_records(
                        decoded, emit_end_tags=emit_ends
                    ):
                        writer.write_record(codec.encode(token))
                        device.stats.record_tokens(1)
                handle = writer.finish()

                # Flush the pool before the snapshot so deferred
                # write-backs are accounted inside the report.
                store.detach_pool()
            report.stats = device.stats.since(before)
            buffers.release()
            formation.release()
            output = Document(
                store, handle, document.stats, document.compaction
            )
            return output, report
        finally:
            store.compression = prior_compression
            store.detach_pool()


def external_merge_sort(
    document: Document,
    spec: SortSpec,
    memory_blocks: int,
    cache_blocks: int = 0,
    merge_options: MergeOptions | None = None,
    tracer: Tracer | None = None,
    recovery=None,
    lease=None,
) -> tuple[Document, MergeSortReport]:
    """Convenience wrapper: sort ``document`` with the baseline."""
    return ExternalMergeSorter(
        spec, memory_blocks, cache_blocks, merge_options
    ).sort(document, tracer, recovery=recovery, lease=lease)
