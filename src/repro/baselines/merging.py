"""Generic multi-pass, multi-way merging of sorted runs.

Used by the external merge sort baseline (merging key-path runs) and by
NEXSORT's graceful-degeneration mode (merging the incomplete sorted runs of
one element, paper Section 3.2).  Records are opaque bytes; ordering comes
from a caller-supplied key function over decoded records.

The fan-in of one pass is limited by the number of memory blocks available:
each input run needs one buffer block and the output needs one, so a budget
of ``m`` blocks supports an ``(m - 1)``-way merge - the classic bound that
produces the ``log_{M/B}`` factors in all of the paper's cost expressions.

CPU accounting: a ``w``-way merge step charges ``ceil(log2 w)`` comparisons
per record moved (the tournament/heap bound), recorded on the device's
stats so simulated times include comparison work.
"""

from __future__ import annotations

import heapq
from math import ceil, log2
from typing import Callable, Iterable, Iterator

from ..errors import RunError
from ..io.runs import RunHandle, RunStore


def merge_pass(
    store: RunStore,
    runs: list[RunHandle],
    key_of: Callable[[bytes], object],
    read_category: str = "merge_read",
) -> Iterator[bytes]:
    """Stream the records of ``runs`` merged into one sorted sequence.

    The caller guarantees the fan-in fits its memory budget.  Consumed runs
    are freed as they drain.
    """
    if not runs:
        return
    device = store.device
    comparisons_per_record = max(1, ceil(log2(len(runs)))) if len(
        runs
    ) > 1 else 0
    readers = [
        store.open_reader(run, category=read_category) for run in runs
    ]
    heap: list[tuple[object, int, bytes]] = []
    for index, reader in enumerate(readers):
        record = reader.read_record()
        if record is not None:
            heap.append((key_of(record), index, record))
    heapq.heapify(heap)
    while heap:
        key, index, record = heapq.heappop(heap)
        if comparisons_per_record:
            device.stats.record_comparisons(comparisons_per_record)
        yield record
        nxt = readers[index].read_record()
        if nxt is not None:
            heapq.heappush(heap, (key_of(nxt), index, nxt))
        else:
            store.free(runs[index])
    device.stats.record_tokens(sum(run.record_count for run in runs))


def merge_to_single_run(
    store: RunStore,
    runs: list[RunHandle],
    key_of: Callable[[bytes], object],
    fan_in: int,
    read_category: str = "merge_read",
    write_category: str = "merge_write",
) -> tuple[RunHandle, int]:
    """Repeatedly merge until one run remains; returns (run, passes)."""
    if fan_in < 2:
        raise RunError(f"fan-in must be at least 2, got {fan_in}")
    if not runs:
        raise RunError("nothing to merge")
    passes = 0
    current = list(runs)
    while len(current) > 1:
        passes += 1
        merged: list[RunHandle] = []
        for group_start in range(0, len(current), fan_in):
            group = current[group_start : group_start + fan_in]
            if len(group) == 1:
                merged.append(group[0])
                continue
            writer = store.create_writer(write_category)
            for record in merge_pass(store, group, key_of, read_category):
                writer.write_record(record)
            merged.append(writer.finish())
        current = merged
    return current[0], passes


def merge_to_stream(
    store: RunStore,
    runs: list[RunHandle],
    key_of: Callable[[bytes], object],
    fan_in: int,
    read_category: str = "merge_read",
    write_category: str = "merge_write",
) -> tuple[Iterator[bytes], int, int]:
    """Merge passes until <= fan_in runs remain, then stream the final merge.

    Saves the materialization of the last pass: external merge sort pipes
    its final merge straight into the output decoder, which is how the
    textbook pass count ``1 + ceil(log_{fan_in}(initial_runs))`` arises.
    Returns (record iterator, materialized passes, final merge width).
    """
    if fan_in < 2:
        raise RunError(f"fan-in must be at least 2, got {fan_in}")
    passes = 0
    current = list(runs)
    while len(current) > fan_in:
        passes += 1
        merged: list[RunHandle] = []
        for group_start in range(0, len(current), fan_in):
            group = current[group_start : group_start + fan_in]
            if len(group) == 1:
                merged.append(group[0])
                continue
            writer = store.create_writer(write_category)
            for record in merge_pass(store, group, key_of, read_category):
                writer.write_record(record)
            merged.append(writer.finish())
        current = merged
    width = len(current)
    if width == 1:
        stream = iter(store.open_reader(current[0], category=read_category))
        return stream, passes, width
    return merge_pass(store, current, key_of, read_category), passes, width


def write_sorted_run(
    store: RunStore,
    records: Iterable[bytes],
    key_of: Callable[[bytes], object],
    write_category: str = "merge_write",
) -> RunHandle:
    """Sort a batch of records in memory and write it as one run.

    Charges ``n * ceil(log2 n)`` comparisons, the standard in-memory sort
    bound, to the device's CPU counters.
    """
    batch = list(records)
    batch.sort(key=key_of)
    count = len(batch)
    if count > 1:
        store.device.stats.record_comparisons(count * max(1, ceil(log2(count))))
    store.device.stats.record_tokens(count)
    writer = store.create_writer(write_category)
    for record in batch:
        writer.write_record(record)
    return writer.finish()
