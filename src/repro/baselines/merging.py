"""Generic multi-pass, multi-way merging of sorted runs.

Used by the external merge sort baseline (merging key-path runs) and by
NEXSORT's graceful-degeneration mode (merging the incomplete sorted runs of
one element, paper Section 3.2).  Records are opaque bytes; ordering comes
from a caller-supplied key function over decoded records.

The fan-in of one pass is limited by the number of memory blocks available:
each input run needs one buffer block and the output needs one, so a budget
of ``m`` blocks supports an ``(m - 1)``-way merge - the classic bound that
produces the ``log_{M/B}`` factors in all of the paper's cost expressions.

Two merge kernels are available (:class:`~repro.merge.engine.MergeOptions`):

* ``heap`` (default, paper-faithful): ``heapq`` over ``(key, index)``
  entries; CPU accounting charges the analytic ``ceil(log2 w)`` comparisons
  per record moved, exactly as the seed did.
* ``loser-tree``: a tournament tree that performs - and *counts* - at most
  ``ceil(log2 w)`` real comparisons per record, reading each input run as
  its own sequential stream for honest seek accounting.

With ``options.embedded_keys`` the records carry a byte-comparable
normalized key prefix; ``key_of`` then never decodes a record during a
merge pass, it just slices bytes.
"""

from __future__ import annotations

import heapq
from itertools import islice
from math import ceil, log2
from typing import Callable, Iterable, Iterator

from ..core.columnar import (
    batch_keys_for,
    fast_path_key,
    have_numpy,
    keyed_puller,
    merge_sidecars,
    record_puller,
    replay_merge,
    replay_merge_to_writer,
    run_sidecar,
)
from ..errors import DeviceFault, RunError
from ..io.parallel import MergePrefetcher, supports_prefetch
from ..io.runs import RunHandle, RunStore
from ..obs.tracer import Tracer, maybe_span
from ..merge.engine import (
    DEFAULT_MERGE_OPTIONS,
    LoserTree,
    MergeOptions,
    embedded_key_of,
    sort_with_accounting,
)

#: Records per grouped writer call on the columnar merge path.
_WRITE_CHUNK = 1024


def merge_pass(
    store: RunStore,
    runs: list[RunHandle],
    key_of: Callable[[bytes], object],
    read_category: str = "merge_read",
    options: MergeOptions | None = None,
    keyed: bool = False,
) -> Iterator[bytes]:
    """Stream the records of ``runs`` merged into one sorted sequence.

    The caller guarantees the fan-in fits its memory budget.  Consumed runs
    are freed as they drain.  With ``keyed`` (columnar internals only) the
    stream yields ``(normalized key, record)`` pairs so the consumer can
    capture the output run's key sidecar without re-evaluating keys.
    """
    if options is not None and options.loser_tree:
        return _merge_pass_loser_tree(
            store, runs, key_of, read_category, options, keyed
        )
    return _merge_pass_heap(
        store, runs, key_of, read_category, options, keyed
    )


def _merge_pass_heap(
    store: RunStore,
    runs: list[RunHandle],
    key_of: Callable[[bytes], object],
    read_category: str,
    options: MergeOptions | None = None,
    keyed: bool = False,
) -> Iterator[bytes]:
    if not runs:
        return
    device = store.device
    columnar = options is not None and options.columnar
    comparisons_per_record = max(1, ceil(log2(len(runs)))) if len(
        runs
    ) > 1 else 0
    if columnar and len(runs) > 1 and have_numpy():
        # Vectorized replay: when every input run carries a key sidecar,
        # the merged order is one stable argsort of the concatenated
        # sidecars (a heap merge with (key, run-index) tie-break IS the
        # stable sort of the run-order concatenation), and the pass just
        # replays record pulls in that order.  Pull interleaving, free
        # timing, and charge totals match the heap loop below exactly.
        sidecars = merge_sidecars(store, runs, key_of)
        if sidecars is not None:
            readers = [
                store.open_reader(run, category=read_category)
                for run in runs
            ]
            yield from replay_merge(
                store, runs, readers, sidecars, comparisons_per_record,
                keyed=keyed, prefix_width=options.keys.prefix_width,
            )
            return
    readers = [
        store.open_reader(run, category=read_category) for run in runs
    ]
    heap: list[tuple[object, int, bytes]] = []
    if columnar:
        # Columnar kernel: drain each reader's buffered block in one
        # batched parse and compute its keys in one batch-kernel call
        # (or serve them straight from the run's sidecar when present).
        # Block loads still happen at the same pull index a scalar
        # reader would issue them, so I/O counters are untouched.
        batch_keys = batch_keys_for(key_of)
        pulls = [
            keyed_puller(
                reader, batch_keys, run_sidecar(store, run, key_of)
            )
            for run, reader in zip(runs, readers)
        ]
        for index, pull in enumerate(pulls):
            entry = pull()
            if entry is not None:
                heap.append((entry[0], index, entry[1]))
        heapq.heapify(heap)
        stats = device.stats
        heappop = heapq.heappop
        heappush = heapq.heappush
        while heap:
            key, index, record = heappop(heap)
            if comparisons_per_record:
                stats.record_merge_comparisons(comparisons_per_record)
            yield (key, record) if keyed else record
            entry = pulls[index]()
            if entry is not None:
                heappush(heap, (entry[0], index, entry[1]))
            else:
                store.free(runs[index])
        device.stats.record_tokens(sum(run.record_count for run in runs))
        return
    for index, reader in enumerate(readers):
        record = reader.read_record()
        if record is not None:
            heap.append((key_of(record), index, record))
    heapq.heapify(heap)
    while heap:
        key, index, record = heapq.heappop(heap)
        if comparisons_per_record:
            device.stats.record_merge_comparisons(comparisons_per_record)
        yield record
        nxt = readers[index].read_record()
        if nxt is not None:
            heapq.heappush(heap, (key_of(nxt), index, nxt))
        else:
            store.free(runs[index])
    device.stats.record_tokens(sum(run.record_count for run in runs))


def _merge_pass_loser_tree(
    store: RunStore,
    runs: list[RunHandle],
    key_of: Callable[[bytes], object],
    read_category: str,
    options: MergeOptions | None = None,
    keyed: bool = False,
) -> Iterator[bytes]:
    if not runs:
        return
    device = store.device
    columnar = options is not None and options.columnar
    # Each input run is its own sequential stream: interleaved per-run
    # reads must not be judged against each other, and in a real multi-file
    # setup (one file per run, OS readahead per descriptor) they would not
    # be.  The heap kernel keeps the seed's single-stream judgment.
    streams = [f"{read_category}:run{run.run_id}" for run in runs]
    readers = [
        store.open_reader(run, category=read_category, stream=stream)
        for run, stream in zip(runs, streams)
    ]

    # Forecast-driven prefetch (repro.io.parallel): when the I/O target
    # exposes a prefetch window, keep each live run at most one block
    # ahead of its reader, prioritized by the loser tree's head keys.
    # Prefetch only reorders the reads this merge was about to issue, so
    # counters stay identical with it on or off.
    prefetcher = None
    if len(runs) > 1 and supports_prefetch(store.io_target):
        prefetcher = MergePrefetcher(
            store.io_target, runs, readers,
            category=read_category, streams=streams,
        )

    batch_keys = batch_keys_for(key_of) if columnar else None

    def make_pull(index: int):
        reader = readers[index]
        if columnar:
            # Columnar kernel: loser-tree sift pulls come from batch-
            # parsed blocks with batch-computed (or sidecar-served)
            # keys; the tournament (and its counted comparisons) is
            # untouched.
            pairs = keyed_puller(
                reader, batch_keys,
                run_sidecar(store, runs[index], key_of),
            )

            def pull():
                entry = pairs()
                if entry is None:
                    if prefetcher is not None:
                        prefetcher.exhausted(index)
                    return None
                if prefetcher is not None:
                    prefetcher.note_head(index, entry[0])
                    prefetcher.pump()
                return entry

            return pull

        def pull():
            record = reader.read_record()
            if record is None:
                if prefetcher is not None:
                    prefetcher.exhausted(index)
                return None
            key = key_of(record)
            if prefetcher is not None:
                prefetcher.note_head(index, key)
                prefetcher.pump()
            return key, record

        return pull

    def on_exhausted(index: int):
        store.free(runs[index])

    tree = LoserTree(
        [make_pull(index) for index in range(len(runs))],
        stats=device.stats,
        on_exhausted=on_exhausted,
    )
    if keyed:
        for key, record in tree:
            yield key, record
    else:
        for _key, record in tree:
            yield record
    device.stats.record_tokens(sum(run.record_count for run in runs))


def _merged_group(
    store: RunStore,
    group: list[RunHandle],
    key_of: Callable[[bytes], object],
    read_category: str,
    write_category: str,
    options: MergeOptions | None,
    recovery,
    phase: str,
    unit: int,
) -> RunHandle:
    """Merge one group of runs into a new run, optionally restartably.

    With a :class:`~repro.faults.RecoveryContext`, the group merge runs
    under a device recovery hold: a transient fault that escapes the
    retry layer abandons the partial output, restores the input runs the
    failed attempt already drained and freed, and re-merges the group.
    The completed run is recorded as a checkpoint.
    """
    columnar = options is not None and options.columnar
    # Capture the output run's key sidecar while writing: the merged
    # stream already knows every record's normalized key, so the next
    # pass over this run can skip key evaluation (or replay outright).
    # Only the two normalized-bytes key functions qualify - custom keys
    # would poison later sidecar consumers.
    collect = columnar and (
        key_of is fast_path_key or key_of is embedded_key_of
    )
    if recovery is None:
        if (
            collect
            and not options.loser_tree
            and store.pool is None
            and len(group) > 1
            and have_numpy()
        ):
            # Heap kernel only: the loser tree *counts* its tournament
            # comparisons and reads each run as its own stream, neither
            # of which a replay reproduces.
            sidecars = merge_sidecars(store, group, key_of)
            if sidecars is not None:
                # Fully-replayed materialized pass: merged order from the
                # sidecar argsort, grouped reads and writes, and the
                # output sidecar comes straight from the sorted keys.
                writer = store.create_writer(write_category)
                readers = [
                    store.open_reader(run, category=read_category)
                    for run in group
                ]
                keys = replay_merge_to_writer(
                    store, group, readers, sidecars,
                    max(1, ceil(log2(len(group)))), writer,
                    _WRITE_CHUNK, options.keys.prefix_width,
                )
                handle = writer.finish()
                store.key_sidecars[handle.run_id] = keys
                return handle
        writer = store.create_writer(write_category)
        stream = merge_pass(
            store, group, key_of, read_category, options, keyed=collect
        )
        keys: list = []
        if columnar and store.pool is None:
            # Grouped writer calls reorder output writes relative to the
            # merge's input reads.  Without a shared buffer pool (eviction
            # order observes the global access sequence) or a recovery
            # context (fault points interact with the partial writer
            # state) that reordering is invisible to every counter: each
            # stream's own access sequence - and every per-category fault
            # trigger index - is unchanged.
            while True:
                batch = list(islice(stream, _WRITE_CHUNK))
                if not batch:
                    break
                if collect:
                    keys.extend(entry[0] for entry in batch)
                    writer.write_records([entry[1] for entry in batch])
                else:
                    writer.write_records(batch)
        elif collect:
            for key, record in stream:
                keys.append(key)
                writer.write_record(record)
        else:
            for record in stream:
                writer.write_record(record)
        handle = writer.finish()
        if collect:
            store.key_sidecars[handle.run_id] = keys
        return handle

    def attempt_once() -> RunHandle:
        writer = store.create_writer(write_category)
        keys: list = []
        try:
            stream = merge_pass(
                store, group, key_of, read_category, options,
                keyed=collect,
            )
            if collect:
                for key, record in stream:
                    writer.write_record(record)
                    keys.append(key)
            else:
                for record in stream:
                    writer.write_record(record)
        except DeviceFault:
            writer.abandon()
            raise
        handle = writer.finish()
        if collect:
            store.key_sidecars[handle.run_id] = keys
        return handle

    handle = recovery.attempt(phase, unit, attempt_once, device=store.device)
    recovery.checkpoint(phase, unit, run_id=handle.run_id)
    return handle


def merge_to_single_run(
    store: RunStore,
    runs: list[RunHandle],
    key_of: Callable[[bytes], object],
    fan_in: int,
    read_category: str = "merge_read",
    write_category: str = "merge_write",
    options: MergeOptions | None = None,
    tracer: Tracer | None = None,
    recovery=None,
) -> tuple[RunHandle, int]:
    """Repeatedly merge until one run remains; returns (run, passes)."""
    if fan_in < 2:
        raise RunError(f"fan-in must be at least 2, got {fan_in}")
    if not runs:
        raise RunError("nothing to merge")
    passes = 0
    current = list(runs)
    while len(current) > 1:
        passes += 1
        with maybe_span(
            tracer, "merge-pass",
            index=passes, fanin=fan_in, runs=len(current),
        ):
            merged: list[RunHandle] = []
            for group_start in range(0, len(current), fan_in):
                group = current[group_start : group_start + fan_in]
                if len(group) == 1:
                    merged.append(group[0])
                    continue
                merged.append(
                    _merged_group(
                        store, group, key_of, read_category,
                        write_category, options, recovery,
                        f"merge-pass-{passes}", len(merged),
                    )
                )
            current = merged
    return current[0], passes


def merge_to_stream(
    store: RunStore,
    runs: list[RunHandle],
    key_of: Callable[[bytes], object],
    fan_in: int,
    read_category: str = "merge_read",
    write_category: str = "merge_write",
    options: MergeOptions | None = None,
    tracer: Tracer | None = None,
    recovery=None,
) -> tuple[Iterator[bytes], int, int]:
    """Merge passes until <= fan_in runs remain, then stream the final merge.

    Saves the materialization of the last pass: external merge sort pipes
    its final merge straight into the output decoder, which is how the
    textbook pass count ``1 + ceil(log_{fan_in}(initial_runs))`` arises.
    Under the loser-tree kernel the intermediate passes are partial as
    well: only enough runs are merged to bring the count down to
    ``fan_in``, and the rest flow unmaterialized into the final merge.
    Returns (record iterator, materialized passes, final merge width).
    """
    if fan_in < 2:
        raise RunError(f"fan-in must be at least 2, got {fan_in}")
    passes = 0
    current = list(runs)
    partial = options is not None and options.loser_tree
    if partial and len(current) > fan_in:
        # Partial-pass scheduling (new merge engine only, so the default
        # pass structure stays bit-identical): one pass merges just
        # enough head groups to bring the run count down to exactly
        # ``fan_in``; the tail runs skip materialization and go straight
        # into the streamed final merge.  Groups stay contiguous and in
        # run order, so ties still resolve by original run index and the
        # output matches the full-pass kernels record for record.
        passes += 1
        with maybe_span(
            tracer, "merge-pass",
            index=passes, fanin=fan_in, runs=len(current), partial=True,
        ):
            excess = len(current) - fan_in
            group_count = ceil(excess / (fan_in - 1))
            sizes = [excess - (group_count - 1) * (fan_in - 1) + 1]
            sizes += [fan_in] * (group_count - 1)
            merged = []
            start = 0
            for size in sizes:
                group = current[start : start + size]
                start += size
                merged.append(
                    _merged_group(
                        store, group, key_of, read_category,
                        write_category, options, recovery,
                        f"merge-pass-{passes}", len(merged),
                    )
                )
            merged.extend(current[start:])
            current = merged
    while len(current) > fan_in:
        passes += 1
        with maybe_span(
            tracer, "merge-pass",
            index=passes, fanin=fan_in, runs=len(current),
        ):
            merged: list[RunHandle] = []
            for group_start in range(0, len(current), fan_in):
                group = current[group_start : group_start + fan_in]
                if len(group) == 1:
                    merged.append(group[0])
                    continue
                merged.append(
                    _merged_group(
                        store, group, key_of, read_category,
                        write_category, options, recovery,
                        f"merge-pass-{passes}", len(merged),
                    )
                )
            current = merged
    width = len(current)
    if tracer is not None:
        # The final merge streams lazily; its I/O lands in whichever span
        # consumes the iterator.  Mark where it begins.
        tracer.event("final-merge-stream", width=width, passes=passes)
    if width == 1:
        reader = store.open_reader(current[0], category=read_category)
        if options is not None and options.columnar:
            return _drained(reader), passes, width
        return iter(reader), passes, width
    return merge_pass(store, current, key_of, read_category, options), passes, width


def _drained(reader) -> Iterator[bytes]:
    """Iterate a single run with block-drain batched record parsing."""
    pull = record_puller(reader)
    while True:
        record = pull()
        if record is None:
            return
        yield record


def write_sorted_run(
    store: RunStore,
    records: Iterable[bytes],
    key_of: Callable[[bytes], object],
    write_category: str = "merge_write",
    options: MergeOptions | None = None,
) -> RunHandle:
    """Sort a batch of records in memory and write it as one run.

    Charges ``n * ceil(log2 n)`` comparisons - the standard in-memory sort
    bound - unless ``options`` selects counted accounting, in which case
    the comparisons the sort actually performed are recorded instead.
    """
    if options is None:
        options = DEFAULT_MERGE_OPTIONS
    batch = list(records)
    sort_with_accounting(
        batch, key_of, store.device.stats, options.counted_comparisons
    )
    store.device.stats.record_tokens(len(batch))
    writer = store.create_writer(write_category)
    if options.columnar:
        # Post-sort the whole batch is in memory either way; one grouped
        # call issues the identical per-stream write sequence.
        writer.write_records(batch)
    else:
        for record in batch:
            writer.write_record(record)
    return writer.finish()
