"""Generic multi-pass, multi-way merging of sorted runs.

Used by the external merge sort baseline (merging key-path runs) and by
NEXSORT's graceful-degeneration mode (merging the incomplete sorted runs of
one element, paper Section 3.2).  Records are opaque bytes; ordering comes
from a caller-supplied key function over decoded records.

The fan-in of one pass is limited by the number of memory blocks available:
each input run needs one buffer block and the output needs one, so a budget
of ``m`` blocks supports an ``(m - 1)``-way merge - the classic bound that
produces the ``log_{M/B}`` factors in all of the paper's cost expressions.

Two merge kernels are available (:class:`~repro.merge.engine.MergeOptions`):

* ``heap`` (default, paper-faithful): ``heapq`` over ``(key, index)``
  entries; CPU accounting charges the analytic ``ceil(log2 w)`` comparisons
  per record moved, exactly as the seed did.
* ``loser-tree``: a tournament tree that performs - and *counts* - at most
  ``ceil(log2 w)`` real comparisons per record, reading each input run as
  its own sequential stream for honest seek accounting.

With ``options.embedded_keys`` the records carry a byte-comparable
normalized key prefix; ``key_of`` then never decodes a record during a
merge pass, it just slices bytes.
"""

from __future__ import annotations

import heapq
from math import ceil, log2
from typing import Callable, Iterable, Iterator

from ..errors import DeviceFault, RunError
from ..io.parallel import MergePrefetcher, supports_prefetch
from ..io.runs import RunHandle, RunStore
from ..obs.tracer import Tracer, maybe_span
from ..merge.engine import (
    DEFAULT_MERGE_OPTIONS,
    LoserTree,
    MergeOptions,
    sort_with_accounting,
)


def merge_pass(
    store: RunStore,
    runs: list[RunHandle],
    key_of: Callable[[bytes], object],
    read_category: str = "merge_read",
    options: MergeOptions | None = None,
) -> Iterator[bytes]:
    """Stream the records of ``runs`` merged into one sorted sequence.

    The caller guarantees the fan-in fits its memory budget.  Consumed runs
    are freed as they drain.
    """
    if options is not None and options.loser_tree:
        return _merge_pass_loser_tree(store, runs, key_of, read_category)
    return _merge_pass_heap(store, runs, key_of, read_category)


def _merge_pass_heap(
    store: RunStore,
    runs: list[RunHandle],
    key_of: Callable[[bytes], object],
    read_category: str,
) -> Iterator[bytes]:
    if not runs:
        return
    device = store.device
    comparisons_per_record = max(1, ceil(log2(len(runs)))) if len(
        runs
    ) > 1 else 0
    readers = [
        store.open_reader(run, category=read_category) for run in runs
    ]
    heap: list[tuple[object, int, bytes]] = []
    for index, reader in enumerate(readers):
        record = reader.read_record()
        if record is not None:
            heap.append((key_of(record), index, record))
    heapq.heapify(heap)
    while heap:
        key, index, record = heapq.heappop(heap)
        if comparisons_per_record:
            device.stats.record_merge_comparisons(comparisons_per_record)
        yield record
        nxt = readers[index].read_record()
        if nxt is not None:
            heapq.heappush(heap, (key_of(nxt), index, nxt))
        else:
            store.free(runs[index])
    device.stats.record_tokens(sum(run.record_count for run in runs))


def _merge_pass_loser_tree(
    store: RunStore,
    runs: list[RunHandle],
    key_of: Callable[[bytes], object],
    read_category: str,
) -> Iterator[bytes]:
    if not runs:
        return
    device = store.device
    # Each input run is its own sequential stream: interleaved per-run
    # reads must not be judged against each other, and in a real multi-file
    # setup (one file per run, OS readahead per descriptor) they would not
    # be.  The heap kernel keeps the seed's single-stream judgment.
    streams = [f"{read_category}:run{run.run_id}" for run in runs]
    readers = [
        store.open_reader(run, category=read_category, stream=stream)
        for run, stream in zip(runs, streams)
    ]

    # Forecast-driven prefetch (repro.io.parallel): when the I/O target
    # exposes a prefetch window, keep each live run at most one block
    # ahead of its reader, prioritized by the loser tree's head keys.
    # Prefetch only reorders the reads this merge was about to issue, so
    # counters stay identical with it on or off.
    prefetcher = None
    if len(runs) > 1 and supports_prefetch(store.io_target):
        prefetcher = MergePrefetcher(
            store.io_target, runs, readers,
            category=read_category, streams=streams,
        )

    def make_pull(index: int):
        reader = readers[index]

        def pull():
            record = reader.read_record()
            if record is None:
                if prefetcher is not None:
                    prefetcher.exhausted(index)
                return None
            key = key_of(record)
            if prefetcher is not None:
                prefetcher.note_head(index, key)
                prefetcher.pump()
            return key, record

        return pull

    def on_exhausted(index: int):
        store.free(runs[index])

    tree = LoserTree(
        [make_pull(index) for index in range(len(runs))],
        stats=device.stats,
        on_exhausted=on_exhausted,
    )
    for _key, record in tree:
        yield record
    device.stats.record_tokens(sum(run.record_count for run in runs))


def _merged_group(
    store: RunStore,
    group: list[RunHandle],
    key_of: Callable[[bytes], object],
    read_category: str,
    write_category: str,
    options: MergeOptions | None,
    recovery,
    phase: str,
    unit: int,
) -> RunHandle:
    """Merge one group of runs into a new run, optionally restartably.

    With a :class:`~repro.faults.RecoveryContext`, the group merge runs
    under a device recovery hold: a transient fault that escapes the
    retry layer abandons the partial output, restores the input runs the
    failed attempt already drained and freed, and re-merges the group.
    The completed run is recorded as a checkpoint.
    """
    if recovery is None:
        writer = store.create_writer(write_category)
        for record in merge_pass(store, group, key_of, read_category, options):
            writer.write_record(record)
        return writer.finish()

    def attempt_once() -> RunHandle:
        writer = store.create_writer(write_category)
        try:
            for record in merge_pass(
                store, group, key_of, read_category, options
            ):
                writer.write_record(record)
        except DeviceFault:
            writer.abandon()
            raise
        return writer.finish()

    handle = recovery.attempt(phase, unit, attempt_once, device=store.device)
    recovery.checkpoint(phase, unit, run_id=handle.run_id)
    return handle


def merge_to_single_run(
    store: RunStore,
    runs: list[RunHandle],
    key_of: Callable[[bytes], object],
    fan_in: int,
    read_category: str = "merge_read",
    write_category: str = "merge_write",
    options: MergeOptions | None = None,
    tracer: Tracer | None = None,
    recovery=None,
) -> tuple[RunHandle, int]:
    """Repeatedly merge until one run remains; returns (run, passes)."""
    if fan_in < 2:
        raise RunError(f"fan-in must be at least 2, got {fan_in}")
    if not runs:
        raise RunError("nothing to merge")
    passes = 0
    current = list(runs)
    while len(current) > 1:
        passes += 1
        with maybe_span(
            tracer, "merge-pass",
            index=passes, fanin=fan_in, runs=len(current),
        ):
            merged: list[RunHandle] = []
            for group_start in range(0, len(current), fan_in):
                group = current[group_start : group_start + fan_in]
                if len(group) == 1:
                    merged.append(group[0])
                    continue
                merged.append(
                    _merged_group(
                        store, group, key_of, read_category,
                        write_category, options, recovery,
                        f"merge-pass-{passes}", len(merged),
                    )
                )
            current = merged
    return current[0], passes


def merge_to_stream(
    store: RunStore,
    runs: list[RunHandle],
    key_of: Callable[[bytes], object],
    fan_in: int,
    read_category: str = "merge_read",
    write_category: str = "merge_write",
    options: MergeOptions | None = None,
    tracer: Tracer | None = None,
    recovery=None,
) -> tuple[Iterator[bytes], int, int]:
    """Merge passes until <= fan_in runs remain, then stream the final merge.

    Saves the materialization of the last pass: external merge sort pipes
    its final merge straight into the output decoder, which is how the
    textbook pass count ``1 + ceil(log_{fan_in}(initial_runs))`` arises.
    Under the loser-tree kernel the intermediate passes are partial as
    well: only enough runs are merged to bring the count down to
    ``fan_in``, and the rest flow unmaterialized into the final merge.
    Returns (record iterator, materialized passes, final merge width).
    """
    if fan_in < 2:
        raise RunError(f"fan-in must be at least 2, got {fan_in}")
    passes = 0
    current = list(runs)
    partial = options is not None and options.loser_tree
    if partial and len(current) > fan_in:
        # Partial-pass scheduling (new merge engine only, so the default
        # pass structure stays bit-identical): one pass merges just
        # enough head groups to bring the run count down to exactly
        # ``fan_in``; the tail runs skip materialization and go straight
        # into the streamed final merge.  Groups stay contiguous and in
        # run order, so ties still resolve by original run index and the
        # output matches the full-pass kernels record for record.
        passes += 1
        with maybe_span(
            tracer, "merge-pass",
            index=passes, fanin=fan_in, runs=len(current), partial=True,
        ):
            excess = len(current) - fan_in
            group_count = ceil(excess / (fan_in - 1))
            sizes = [excess - (group_count - 1) * (fan_in - 1) + 1]
            sizes += [fan_in] * (group_count - 1)
            merged = []
            start = 0
            for size in sizes:
                group = current[start : start + size]
                start += size
                merged.append(
                    _merged_group(
                        store, group, key_of, read_category,
                        write_category, options, recovery,
                        f"merge-pass-{passes}", len(merged),
                    )
                )
            merged.extend(current[start:])
            current = merged
    while len(current) > fan_in:
        passes += 1
        with maybe_span(
            tracer, "merge-pass",
            index=passes, fanin=fan_in, runs=len(current),
        ):
            merged: list[RunHandle] = []
            for group_start in range(0, len(current), fan_in):
                group = current[group_start : group_start + fan_in]
                if len(group) == 1:
                    merged.append(group[0])
                    continue
                merged.append(
                    _merged_group(
                        store, group, key_of, read_category,
                        write_category, options, recovery,
                        f"merge-pass-{passes}", len(merged),
                    )
                )
            current = merged
    width = len(current)
    if tracer is not None:
        # The final merge streams lazily; its I/O lands in whichever span
        # consumes the iterator.  Mark where it begins.
        tracer.event("final-merge-stream", width=width, passes=passes)
    if width == 1:
        stream = iter(store.open_reader(current[0], category=read_category))
        return stream, passes, width
    return merge_pass(store, current, key_of, read_category, options), passes, width


def write_sorted_run(
    store: RunStore,
    records: Iterable[bytes],
    key_of: Callable[[bytes], object],
    write_category: str = "merge_write",
    options: MergeOptions | None = None,
) -> RunHandle:
    """Sort a batch of records in memory and write it as one run.

    Charges ``n * ceil(log2 n)`` comparisons - the standard in-memory sort
    bound - unless ``options`` selects counted accounting, in which case
    the comparisons the sort actually performed are recorded instead.
    """
    if options is None:
        options = DEFAULT_MERGE_OPTIONS
    batch = list(records)
    sort_with_accounting(
        batch, key_of, store.device.stats, options.counted_comparisons
    )
    store.device.stats.record_tokens(len(batch))
    writer = store.create_writer(write_category)
    for record in batch:
        writer.write_record(record)
    return writer.finish()
