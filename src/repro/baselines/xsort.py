"""XSort - the single-level XML sorter of Avila-Campillo et al. (XMLTK).

The paper's related work (Section 2): "XSort traverses the document tree
to some user-specified elements and then sorts their children; the child
subtrees are not sorted recursively.  XSort is implemented as standard
external merge sort.  The hierarchical nature of XML is irrelevant in
this case because sorting is done on only one level.  Obviously, XSort
sorts less, and should complete in less time than NEXSORT.  However,
XSort does not lend itself well to solving the structural merge problem."

This module implements that algorithm so the trade-off can be measured:
a *target path* selects the elements whose child lists get sorted; each
child subtree is treated as one opaque record and the records are run
through a standard external merge sort.  Everything outside the targeted
child lists streams through untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil, log2

from ..errors import SortSpecError
from ..io.budget import MemoryBudget
from ..io.bufferpool import BufferPool
from ..io.runs import RunHandle
from ..io.stats import StatsSnapshot
from ..keys import KeyEvaluator, SortSpec
from ..xml.codec import TokenCodec
from ..xml.document import Document
from ..xml.tokens import EndTag, MISSING_KEY, StartTag, Text, Token
from .merging import merge_to_stream

#: Memory blocks reserved for the scan and output buffers.
_RESERVED_BLOCKS = 2


@dataclass
class XSortReport:
    """What one XSort run did."""

    element_count: int = 0
    input_blocks: int = 0
    memory_blocks: int = 0
    target_lists_sorted: int = 0
    children_sorted: int = 0
    initial_runs: int = 0
    stats: StatsSnapshot = field(default_factory=StatsSnapshot)

    @property
    def total_ios(self) -> int:
        return self.stats.total_ios

    @property
    def simulated_seconds(self) -> float:
        return self.stats.elapsed_seconds()


class XSorter:
    """Sorts the children of elements matched by a tag path.

    Args:
        spec: ordering criterion for the sorted child lists (must be
            start-computable, like the merge-sort baseline).
        target_path: '/'-separated tag path from the root selecting the
            elements whose child lists are sorted, e.g.
            ``company/region/branch`` sorts every branch's employees.
            The empty path targets the root itself.
        memory_blocks: the model parameter ``M`` in blocks.
        cache_blocks: blocks of ``M`` spent on a
            :class:`~repro.io.bufferpool.BufferPool`; 0 keeps the classic
            unpooled behaviour bit-for-bit.
    """

    def __init__(
        self,
        spec: SortSpec,
        target_path: str,
        memory_blocks: int,
        cache_blocks: int = 0,
    ):
        if not spec.start_computable:
            raise SortSpecError(
                "XSort keys child subtrees at their start tags; the "
                "criterion must be start-computable"
            )
        if cache_blocks < 0:
            raise SortSpecError(
                f"cache_blocks cannot be negative: {cache_blocks}"
            )
        if memory_blocks < _RESERVED_BLOCKS + 1 + cache_blocks:
            raise SortSpecError(
                f"XSort needs at least {_RESERVED_BLOCKS + 1} memory "
                f"blocks plus the {cache_blocks} buffer-pool blocks"
            )
        self.spec = spec
        self.steps = tuple(
            step for step in target_path.split("/") if step
        )
        self.memory_blocks = memory_blocks
        self.cache_blocks = cache_blocks

    def sort(self, document: Document) -> tuple[Document, XSortReport]:
        """Sort the targeted child lists; everything else streams through."""
        store = document.store
        device = store.device
        codec = TokenCodec(
            document.compaction.names if document.compaction else None
        )
        budget = MemoryBudget(self.memory_blocks)
        buffers = budget.reserve(_RESERVED_BLOCKS, "io-buffers")
        if self.cache_blocks:
            store.attach_pool(
                BufferPool(
                    device,
                    self.cache_blocks,
                    budget=budget,
                    owner="buffer-pool",
                )
            )
        batch_memory = budget.reserve_rest("child-records")
        capacity_bytes = batch_memory.blocks * device.block_size
        fan_in = max(2, self.memory_blocks - 1 - self.cache_blocks)

        try:
            report = XSortReport(
                element_count=document.element_count,
                input_blocks=document.block_count,
                memory_blocks=self.memory_blocks,
            )
            before = device.stats.snapshot()

            evaluator = KeyEvaluator(self.spec)
            events = evaluator.annotate(document.iter_events("input_scan"))
            writer = store.create_writer("output")

            # Path-matching state: the chain of tags from the root; an element
            # is a *target* when its path equals self.steps.
            path: list[str] = []
            # When inside a target's child list, buffer each complete child
            # subtree as one record.  Targets cannot nest inside the child
            # lists being collected (collection is flat), but a target's
            # children may themselves be targets once we recurse - XSort
            # semantics sort only the specified level, so nested matches
            # inside a collected subtree are NOT sorted (one level only).
            collecting: list[dict] = []  # stack of collection frames

            def emit(token: Token) -> None:
                writer.write_record(codec.encode(_strip(token)))
                device.stats.record_tokens(1)

            for event in events:
                if collecting:
                    frame = collecting[-1]
                    done = self._collect(frame, event)
                    if done:
                        self._flush_target(
                            store, frame, writer, codec, capacity_bytes,
                            fan_in, report,
                        )
                        collecting.pop()
                        emit(event)  # the target's own end tag
                        path.pop()
                    continue
                if isinstance(event, StartTag):
                    path.append(event.tag)
                    emit(event)
                    if tuple(path) == self.steps or (
                        not self.steps and len(path) == 1
                    ):
                        collecting.append(
                            {
                                "tag": event.tag,
                                "children": [],
                                "current": None,
                                "depth": 0,
                                "texts": [],
                            }
                        )
                        report.target_lists_sorted += 1
                        continue
                elif isinstance(event, EndTag):
                    path.pop()
                    emit(event)
                else:
                    emit(event)

            handle = writer.finish()
            # Flush the pool before the snapshot so deferred write-backs
            # are accounted inside the report.
            store.detach_pool()
            report.stats = device.stats.since(before)
            buffers.release()
            batch_memory.release()
            output = Document(
                store, handle, document.stats, document.compaction
            )
            return output, report
        finally:
            store.detach_pool()

    def _collect(self, frame: dict, event: Token) -> bool:
        """Feed one event into a target's collection frame.

        Returns True when the target's end tag arrived (collection done).
        """
        if isinstance(event, StartTag):
            frame["depth"] += 1
            if frame["depth"] == 1:
                key = event.key if event.key is not None else MISSING_KEY
                frame["current"] = {
                    "key": (key, event.pos or 0),
                    "tokens": [event],
                }
            else:
                frame["current"]["tokens"].append(event)
            return False
        if isinstance(event, EndTag):
            if frame["depth"] == 0:
                return True  # the target element itself closed
            frame["current"]["tokens"].append(event)
            frame["depth"] -= 1
            if frame["depth"] == 0:
                frame["children"].append(frame["current"])
                frame["current"] = None
            return False
        if isinstance(event, Text):
            if frame["depth"] == 0:
                frame["texts"].append(event.text)
            else:
                frame["current"]["tokens"].append(event)
            return False
        raise SortSpecError(f"unexpected event {event!r}")

    def _flush_target(
        self, store, frame, writer, codec, capacity_bytes, fan_in, report
    ) -> None:
        """Sort one target's collected children and write them out."""
        device = store.device
        if frame["texts"]:
            writer.write_record(
                codec.encode(Text("".join(frame["texts"])))
            )
        children = frame["children"]
        report.children_sorted += len(children)
        encoded = []
        for child in children:
            record = _encode_child(child, codec)
            encoded.append((child["key"], record))
        total_bytes = sum(len(record) for _key, record in encoded)
        if total_bytes <= capacity_bytes:
            # In-memory sort of the child list.
            encoded.sort(key=lambda pair: pair[0])
            if len(encoded) > 1:
                device.stats.record_comparisons(
                    len(encoded) * max(1, ceil(log2(len(encoded))))
                )
            for _key, record in encoded:
                for token_bytes in _decode_child(record):
                    writer.write_record(token_bytes)
                    device.stats.record_tokens(1)
            return
        # External merge sort of the child records (XSort's standard path).
        runs: list[RunHandle] = []
        batch: list[tuple[tuple, bytes]] = []
        batch_bytes = 0
        for key, record in encoded:
            batch.append((key, record))
            batch_bytes += len(record)
            if batch_bytes >= capacity_bytes:
                runs.append(_write_run(store, batch))
                batch, batch_bytes = [], 0
        if batch:
            runs.append(_write_run(store, batch))
        report.initial_runs += len(runs)

        stream, _passes, _width = merge_to_stream(
            store, runs, _child_sort_key, fan_in
        )
        for record in stream:
            for token_bytes in _decode_child(record):
                writer.write_record(token_bytes)
                device.stats.record_tokens(1)


def _strip(token: Token) -> Token:
    if isinstance(token, StartTag):
        return StartTag(token.tag, token.attrs)
    if isinstance(token, EndTag):
        return EndTag(token.tag)
    if isinstance(token, Text):
        return Text(token.text)
    return token


def _encode_child(child: dict, codec: TokenCodec) -> bytes:
    """One child subtree as a single sortable record."""
    from ..xml.codec import encode_key_atom, write_varint

    out = bytearray()
    key, pos = child["key"]
    encode_key_atom(out, key)
    write_varint(out, pos)
    token_bytes = [codec.encode(_strip(t)) for t in child["tokens"]]
    write_varint(out, len(token_bytes))
    for record in token_bytes:
        write_varint(out, len(record))
        out += record
    return bytes(out)


def _decode_child(record: bytes) -> list[bytes]:
    from ..xml.codec import decode_key_atom, read_varint

    _key, pos = decode_key_atom(record, 0)
    _position, pos = read_varint(record, pos)
    count, pos = read_varint(record, pos)
    tokens = []
    for _ in range(count):
        length, pos = read_varint(record, pos)
        tokens.append(record[pos : pos + length])
        pos += length
    return tokens


def _child_sort_key(record: bytes) -> tuple:
    from ..xml.codec import decode_key_atom, read_varint

    key, pos = decode_key_atom(record, 0)
    position, _pos = read_varint(record, pos)
    return (key, position)


def _write_run(store, batch: list[tuple[tuple, bytes]]) -> RunHandle:
    batch.sort(key=lambda pair: pair[0])
    count = len(batch)
    if count > 1:
        store.device.stats.record_comparisons(
            count * max(1, ceil(log2(count)))
        )
    writer = store.create_writer("run_write")
    for _key, record in batch:
        writer.write_record(record)
    return writer.finish()


def xsort(
    document: Document,
    spec: SortSpec,
    target_path: str,
    memory_blocks: int,
    cache_blocks: int = 0,
) -> tuple[Document, XSortReport]:
    """Convenience wrapper: sort one level of a document with XSort."""
    return XSorter(spec, target_path, memory_blocks, cache_blocks).sort(
        document
    )
