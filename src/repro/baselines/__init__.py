"""Baseline algorithms the paper compares against."""

from .internal_sort import (
    is_fully_sorted,
    sort_element,
    sort_element_in_place,
)
from .keypath import (
    KeyPathRecord,
    decode_record,
    encode_record,
    format_key_path,
    key_path_table,
    records_from_annotated_events,
    records_from_document_scan,
    tokens_from_sorted_records,
)
from .merge_sort import (
    ExternalMergeSorter,
    MergeSortReport,
    external_merge_sort,
)
from .merging import merge_pass, merge_to_single_run, merge_to_stream
from .xsort import XSorter, XSortReport, xsort

__all__ = [
    "ExternalMergeSorter",
    "KeyPathRecord",
    "MergeSortReport",
    "decode_record",
    "encode_record",
    "external_merge_sort",
    "format_key_path",
    "is_fully_sorted",
    "key_path_table",
    "merge_pass",
    "merge_to_single_run",
    "merge_to_stream",
    "records_from_annotated_events",
    "records_from_document_scan",
    "sort_element",
    "sort_element_in_place",
    "tokens_from_sorted_records",
    "XSortReport",
    "XSorter",
    "xsort",
]
