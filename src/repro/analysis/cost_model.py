"""Predicted simulated times, bridging the bounds to the benchmarks.

The bounds in :mod:`repro.analysis.bounds` count I/Os; the experiments
report simulated seconds.  This module converts either way using the same
:class:`~repro.io.stats.CostModel` the device charges with, and offers the
per-experiment predictors the LB benchmark prints next to measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..io.stats import CostModel, StatsSnapshot
from .bounds import (
    merge_sort_ios,
    nexsort_upper_bound_ios,
    sorting_lower_bound_ios,
)


@dataclass(frozen=True)
class ModelGeometry:
    """One experiment's external-memory geometry, in model units.

    Attributes:
        N: elements in the document.
        B: elements per block (document bytes / block size, element-wise).
        M: elements fitting in memory (``memory_blocks * B``).
        k: maximum fan-out.
    """

    N: int
    B: int
    M: int
    k: int

    @classmethod
    def from_document(cls, document, memory_blocks: int) -> "ModelGeometry":
        """Derive the geometry from a stored document."""
        per_block = max(
            1, round(document.element_count / max(1, document.block_count))
        )
        return cls(
            N=document.element_count,
            B=per_block,
            M=memory_blocks * per_block,
            k=max(1, document.max_fanout),
        )


def predicted_seconds_from_ios(
    ios: float, cost_model: CostModel | None = None, random_fraction: float = 0.1
) -> float:
    """Simulated seconds for an I/O count under a mixed access pattern."""
    model = cost_model or CostModel()
    random_ios = ios * random_fraction
    sequential = ios - random_ios
    return model.io_seconds(round(sequential), round(random_ios))


def predicted_nexsort_seconds(
    geometry: ModelGeometry,
    threshold_elements: int | None = None,
    cost_model: CostModel | None = None,
) -> float:
    """Theorem 4.5 turned into seconds (constants 1)."""
    ios = nexsort_upper_bound_ios(
        geometry.N, geometry.B, geometry.M, geometry.k, threshold_elements
    )
    return predicted_seconds_from_ios(ios, cost_model)


def predicted_merge_sort_seconds(
    geometry: ModelGeometry, cost_model: CostModel | None = None
) -> float:
    """The baseline's pass-count cost turned into seconds."""
    ios = merge_sort_ios(geometry.N, geometry.B, geometry.M)
    return predicted_seconds_from_ios(ios, cost_model)


def lower_bound_seconds(
    geometry: ModelGeometry, cost_model: CostModel | None = None
) -> float:
    """Theorem 4.4 turned into seconds (constants 1)."""
    ios = sorting_lower_bound_ios(
        geometry.N, geometry.B, geometry.M, geometry.k
    )
    return predicted_seconds_from_ios(ios, cost_model)


def measured_over_bound(
    stats: StatsSnapshot, bound_ios: float
) -> float:
    """Measured I/Os divided by a bound - the observed constant factor."""
    if bound_ios <= 0:
        return float("inf")
    return stats.total_ios / bound_ios
