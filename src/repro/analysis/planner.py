"""Cost-based self-tuning planner over the full engine knob grid.

ROADMAP item 2: the advisor answers the paper's Figure-7 question
(NEXSORT vs. merge sort); this module answers the operational one -
*given this workload sketch and these resources, how should every knob
be set?*  It enumerates candidate :class:`PlanConfig` settings over the
grid the engine actually exposes (algorithm, threshold, cache blocks,
run formation, merge kernel, embedded keys, sort kernel, disks,
prefetch), prices each with the shared :class:`~repro.io.stats.CostModel`
using :func:`~repro.analysis.bounds.iterated_merge_depth` (the
Arge-Thorup merge-depth oracle) as the pass-count oracle, and returns a
:class:`Plan` carrying the chosen config, the predicted I/O/CPU/disk-time
breakdown, and a ranked rationale.

The predictors are calibrated against the recorded ``BENCH_*.json``
phase breakdowns rather than the loose Theorem 4.5 constants:

* merge sort moves ``n`` input blocks plus ``r*n`` annotated run-record
  blocks per pass (``r`` = key-path annotation inflation, larger still
  with embedded keys), with partial intermediate merges and a streamed
  final pass - so I/O ~= ``2n + r*n * (1 + merge work)``;
* NEXSORT pays the scan/stage/output-walk pipeline (~``4n`` in the
  *internal regime*, where the smallest sort unit above the threshold
  fits in memory) plus two ``n``-passes per materialized merge level of
  an external sort unit, plus a reread tail the buffer pool absorbs;
* striping divides busy time across ``D`` disks at a seek surcharge,
  so the objective is predicted *disk* seconds (busiest disk) plus CPU.

``benchmarks/bench_planner.py`` and ``tests/test_planner.py`` hold the
planner to the empirical optimum of every recorded benchmark grid.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from math import ceil, log2

from ..errors import ReproError
from ..io.budget import MINIMUM_NEXSORT_BLOCKS
from ..io.compress import CODEC_NAMES
from ..io.stats import CostModel
from ..merge.engine import (
    MERGE_KERNELS,
    MergeOptions,
    RUN_FORMATION_MODES,
    SORT_KERNELS,
)
from .advisor import DocumentProfile
from .bounds import iterated_merge_depth

#: Key-path annotation bytes a merge-sort run record adds per element
#: (calibrated: run-formation writes / input blocks across BENCH rows).
RUN_ANNOTATION_BYTES = 34.0

#: Extra bytes per record when normalized keys are embedded in runs
#: (calibrated from the embedded-keys run counts in BENCH_runformation).
EMBEDDED_KEY_BYTES = 74.0

#: NEXSORT's staging-pass size relative to the input (structural keys).
STAGE_INFLATION = 1.08

#: Fraction of input blocks the output walk rereads with no buffer pool.
OUTPUT_REREAD_FRACTION = 0.12

#: Heap-kernel surcharges vs. the loser tree (calibrated: the heap
#: merger re-touches blocks and breaks sequentiality at run boundaries).
HEAP_MERGE_IO_FACTOR = 1.28
HEAP_SEEKS_PER_RUN = 3.0

#: Seek surcharge of striping: busy(D) ~= serial/D + serial*alpha*(1-1/D).
STRIPE_SEEK_FRACTION = 0.15

#: Tokens decoded/encoded per element per data pass.
TOKENS_PER_ELEMENT = 4.0

#: The run-compression ratio the planner assumes when pricing the
#: ``compress`` knob (calibrated: BENCH_compress container-codec run
#: bytes on the Figure-5 grid land between 4x and 7x; 4.0 keeps the
#: predictions conservative for less redundant inputs).
PLANNED_COMPRESSION_RATIO = 4.0

#: Fraction of NEXSORT's staging I/O that lives in sorted runs - the
#: part run compression shrinks; the rest is data-stack spill, which
#: stays uncompressed (calibrated from the Figure-5 byte counters).
STAGE_RUN_FRACTION = 0.75


@dataclass(frozen=True)
class PlanConfig:
    """One point of the knob grid - everything a run needs decided."""

    algorithm: str = "nexsort"  # 'nexsort' or 'merge_sort'
    memory_blocks: int = 24
    cache_blocks: int = 0
    threshold_blocks: int = 2
    flat_optimization: bool = False
    run_formation: str = "load-sort"
    merge_kernel: str = "heap"
    embedded_keys: bool = False
    kernel: str = "scalar"
    disks: int = 1
    prefetch_depth: int = 0
    prefetch_policy: str = "forecast"
    compress: str | None = None
    compress_capacity: bool = False

    @property
    def working_blocks(self) -> int:
        """Sort memory after the buffer pool's carve-out."""
        return self.memory_blocks - self.cache_blocks

    def merge_options(self) -> MergeOptions:
        return MergeOptions(
            run_formation=self.run_formation,
            merge_kernel=self.merge_kernel,
            embedded_keys=self.embedded_keys,
            kernel=self.kernel,
            compress=self.compress,
            compress_capacity=self.compress_capacity,
        )

    def validate(self) -> None:
        if self.algorithm not in ("nexsort", "merge_sort"):
            raise ReproError(f"unknown algorithm {self.algorithm!r}")
        if self.run_formation not in RUN_FORMATION_MODES:
            raise ReproError(f"unknown run formation {self.run_formation!r}")
        if self.merge_kernel not in MERGE_KERNELS:
            raise ReproError(f"unknown merge kernel {self.merge_kernel!r}")
        if self.kernel not in SORT_KERNELS:
            raise ReproError(f"unknown sort kernel {self.kernel!r}")
        if self.cache_blocks < 0 or self.working_blocks < 2:
            raise ReproError(
                f"grant of {self.memory_blocks} blocks with "
                f"{self.cache_blocks} cache leaves no sort memory"
            )
        if self.threshold_blocks < 1:
            raise ReproError(
                f"threshold must be at least one block, "
                f"got {self.threshold_blocks}"
            )
        if self.disks < 1 or self.prefetch_depth < 0:
            raise ReproError(
                f"bad device shape disks={self.disks} "
                f"prefetch_depth={self.prefetch_depth}"
            )
        if self.compress is not None and self.compress not in CODEC_NAMES:
            raise ReproError(
                f"unknown compression codec {self.compress!r}"
            )
        if self.compress_capacity and self.compress is None:
            raise ReproError(
                "compress_capacity requires a compression codec"
            )


@dataclass(frozen=True)
class PlanCost:
    """Predicted cost breakdown of one :class:`PlanConfig`."""

    total_ios: float
    random_ios: float
    io_seconds: float
    cpu_seconds: float
    disk_seconds: float
    merge_depth: int
    initial_runs: int
    fan_in: int

    @property
    def total_seconds(self) -> float:
        """The planner's objective: busiest-disk time plus CPU."""
        return self.disk_seconds + self.cpu_seconds


@dataclass
class Plan:
    """The planner's verdict: a config, its predicted cost, and why."""

    config: PlanConfig
    cost: PlanCost
    rationale: list[str] = field(default_factory=list)
    ranked: list[tuple[PlanConfig, PlanCost]] = field(default_factory=list)
    considered: int = 0

    def describe(self) -> str:
        c = self.config
        lines = [
            f"plan: {c.algorithm} memory={c.memory_blocks} "
            f"cache={c.cache_blocks} threshold={c.threshold_blocks}B "
            f"formation={c.run_formation} kernel={c.merge_kernel}/"
            f"{c.kernel} embedded_keys={c.embedded_keys} "
            f"compress={c.compress or 'off'}"
            f"{'+capacity' if c.compress_capacity else ''} "
            f"disks={c.disks} prefetch={c.prefetch_depth}/"
            f"{c.prefetch_policy}",
            f"predicted: {self.cost.total_seconds:.4f}s "
            f"({self.cost.total_ios:.0f} I/Os, "
            f"{self.cost.io_seconds:.4f}s I/O, "
            f"{self.cost.cpu_seconds:.4f}s CPU, "
            f"{self.cost.disk_seconds:.4f}s busiest disk; "
            f"{self.cost.initial_runs} runs, fan-in "
            f"{self.cost.fan_in}, merge depth {self.cost.merge_depth}; "
            f"{self.considered} candidates)",
        ]
        lines.extend(f"- {line}" for line in self.rationale)
        return "\n".join(lines)


class Planner:
    """Enumerate, cost, and rank plans for one workload sketch.

    Args:
        profile: the workload sketch (measured by
            :func:`~repro.analysis.advisor.profile_document` or rebuilt
            analytically via :meth:`DocumentProfile.from_fanouts`).
        memory_blocks: total memory grant the plan may spend (sort
            memory plus buffer pool - "memory includes cache").
        block_size: device block size in bytes.
        disks: disks available for striping (`repro sort`) or sharing.
        cost_model: the device's charge model; defaults to the standard
            :class:`CostModel` every simulated device uses.
    """

    def __init__(
        self,
        profile: DocumentProfile,
        memory_blocks: int,
        block_size: int,
        disks: int = 1,
        cost_model: CostModel | None = None,
    ):
        if block_size <= 0:
            raise ReproError(f"block_size must be positive, got {block_size}")
        if memory_blocks < 2:
            raise ReproError(
                f"memory_blocks must be at least 2, got {memory_blocks}"
            )
        if disks < 1:
            raise ReproError(f"disks must be at least 1, got {disks}")
        self.profile = profile
        self.memory_blocks = memory_blocks
        self.block_size = block_size
        self.disks = disks
        self.cost_model = cost_model or CostModel()
        self.element_bytes = max(1.0, profile.average_element_bytes)
        #: Elements per block, from the measured profile when possible.
        if profile.block_count > 0 and profile.element_count > 0:
            self.B = max(
                1, round(profile.element_count / profile.block_count)
            )
        else:
            self.B = max(1, int(block_size / self.element_bytes))
        #: Input blocks - the `n` every predictor scales with.
        self.n = max(
            1,
            profile.block_count
            or ceil(profile.element_count / self.B),
        )

    # -- shared merge-tree pricing ---------------------------------------

    def _merge_tree(
        self, run_blocks: float, runs: int, fan_in: int, heap: bool
    ) -> tuple[float, float, float, int]:
        """Price a run merge: (I/Os, random I/Os, comparisons, depth).

        Intermediate passes are *partial* (merge just enough runs to
        reach the fan-in, as the engine does); the final pass streams
        into the output, so only its reads are charged here.  The depth
        equals :func:`iterated_merge_depth` by construction - each loop
        iteration plus the final streamed level is one tree level.
        """
        per_element = self.profile.element_count / max(1.0, run_blocks)
        io = 0.0
        random_io = 0.0
        comparisons = 0.0
        depth = 0
        while runs > fan_in:
            merged = runs - fan_in + 1
            blocks = run_blocks * merged / runs
            factor = HEAP_MERGE_IO_FACTOR if heap else 1.0
            io += 2.0 * blocks * factor
            if heap:
                random_io += HEAP_SEEKS_PER_RUN * merged
            width = min(merged, fan_in)
            charge = 2.0 if heap else 1.0
            comparisons += (
                blocks * per_element * charge * max(1.0, log2(width))
            )
            runs -= merged - 1
            depth += 1
        if runs > 1:
            # Final streamed pass: read every run record once.
            factor = HEAP_MERGE_IO_FACTOR if heap else 1.0
            io += run_blocks * factor
            if heap:
                random_io += HEAP_SEEKS_PER_RUN * runs
            charge = 2.0 if heap else 1.0
            comparisons += (
                run_blocks * per_element * charge * max(1.0, log2(runs))
            )
            depth += 1
        return io, random_io, comparisons, depth

    # -- per-algorithm predictors ----------------------------------------

    def _merge_sort_cost(self, config: PlanConfig) -> PlanCost:
        n = self.n
        N = self.profile.element_count
        working = config.working_blocks
        fan_in = max(2, working - 1)
        record_bytes = self.element_bytes + RUN_ANNOTATION_BYTES
        if config.embedded_keys:
            record_bytes += EMBEDDED_KEY_BYTES
        run_blocks = n * record_bytes / self.element_bytes
        ratio = PLANNED_COMPRESSION_RATIO if config.compress else 1.0
        # Run blocks *on disk*: the merge tree reads and writes stored
        # (compressed) blocks, while run counts and comparisons are set
        # by the logical record stream.
        stored_run_blocks = run_blocks / ratio
        run_length = working * (
            2 if config.run_formation == "replacement-selection" else 1
        )
        # Capacity compression packs ~ratio more records into a memory
        # budget, so initial runs get longer - this is the knob that can
        # push the run count below a pass boundary of the merge tree.
        effective_run_length = run_length * (
            ratio if config.compress_capacity else 1.0
        )
        runs = max(1, ceil(run_blocks / max(1.0, effective_run_length)))
        merge_io, merge_random, merge_cmp, depth = self._merge_tree(
            stored_run_blocks, runs, fan_in,
            heap=config.merge_kernel == "heap",
        )
        # scan + run writes + merge passes + output writes.
        io = n + stored_run_blocks + merge_io + n
        random_io = merge_random
        comparisons = N * max(1.0, log2(max(2, run_length * self.B)))
        comparisons += merge_cmp
        tokens = 2.0 * TOKENS_PER_ELEMENT * N
        if not config.embedded_keys:
            tokens += TOKENS_PER_ELEMENT * N * depth
        compress_raw = decompress_raw = 0.0
        if config.compress:
            # Every stored run block is written once and read once per
            # tree touch; the codec processes the *raw* bytes behind it.
            touched = stored_run_blocks + merge_io
            raw = touched * self.block_size * ratio / 2.0
            compress_raw = decompress_raw = raw
            if config.compress_capacity:
                # Pending-batch chunks: one in-memory round trip per record.
                capacity_raw = run_blocks * self.block_size
                compress_raw += capacity_raw
                decompress_raw += capacity_raw
        return self._finish(
            config, io, random_io, comparisons, tokens,
            merge_depth=depth, initial_runs=runs, fan_in=fan_in,
            compress_raw=compress_raw, decompress_raw=decompress_raw,
        )

    def _sort_unit_elements(self, t_elements: int) -> tuple[float, float]:
        """(unit, child) mean subtree sizes around the sort threshold.

        The sort unit is the smallest per-level mean subtree size that
        exceeds the threshold - the subtree NEXSORT actually sorts as
        one batch; ``child`` is the mean size one level deeper (its
        presorted sub-units).  Falls back to the whole document when the
        profile carries no level sizes.
        """
        sizes = list(self.profile.level_subtree_elements)
        if not sizes:
            sizes = [float(self.profile.element_count)]
        unit = sizes[0]
        child = sizes[1] if len(sizes) > 1 else 1.0
        for depth in range(len(sizes) - 1, -1, -1):
            if sizes[depth] > t_elements:
                unit = sizes[depth]
                child = sizes[depth + 1] if depth + 1 < len(sizes) else 1.0
                break
        else:
            return 0.0, 1.0  # even the root fits under the threshold
        return unit, max(1.0, child)

    def _nexsort_cost(self, config: PlanConfig) -> PlanCost:
        if config.flat_optimization and self.profile.is_nearly_flat:
            # Graceful degeneration: runs form like merge sort but carry
            # the short structural keys instead of full key paths.
            degenerate = replace(
                config, algorithm="merge_sort", embedded_keys=False
            )
            base = self._merge_sort_cost(degenerate)
            return base
        n = self.n
        N = self.profile.element_count
        working = config.working_blocks
        fan_in = max(2, working - 1)
        memory_elements = working * self.B
        t_elements = max(1, config.threshold_blocks * self.B)
        stage_blocks = n * STAGE_INFLATION
        ratio = PLANNED_COMPRESSION_RATIO if config.compress else 1.0
        # scan read + stage write + output read + output write.
        io = n + stage_blocks + stage_blocks + n
        compress_raw = decompress_raw = 0.0
        if config.compress:
            # The staging tree is mostly sorted runs (the rest is
            # data-stack spill, untouched by run compression): the
            # run-backed share shrinks by the ratio, the codec chews
            # its raw bytes once each way.
            run_backed = stage_blocks * STAGE_RUN_FRACTION
            io -= 2.0 * run_backed * (1.0 - 1.0 / ratio)
            compress_raw += run_backed * self.block_size
            decompress_raw += run_backed * self.block_size
        random_io = 0.0
        comparisons = N * max(1.0, log2(max(2, t_elements)))
        tokens = 2.0 * TOKENS_PER_ELEMENT * N * 2
        depth = 0
        runs = 1
        unit, child = self._sort_unit_elements(t_elements)
        if unit > memory_elements:
            # External sort units: their merge levels are all
            # materialized inside the document scan.
            effective_memory = memory_elements * (
                ratio if config.compress_capacity else 1.0
            )
            if child >= self.B:
                runs = max(2, round(unit / child))
            else:
                # Degenerate unit (children below block grain): runs
                # form from memory-fulls, plus a wasted staging pass.
                runs = max(2, ceil(unit / effective_memory))
                io += 2.0 * n
            unit_blocks = stage_blocks / ratio
            merge_io, merge_random, merge_cmp, depth = self._merge_tree(
                unit_blocks, runs, fan_in,
                heap=config.merge_kernel == "heap",
            )
            if depth:
                # No streamed discount inside the scan: the last level
                # also writes its result back to the stage.
                merge_io += unit_blocks
            io += merge_io
            random_io += merge_random
            comparisons += merge_cmp
            tokens += TOKENS_PER_ELEMENT * N * depth
            if config.compress:
                raw = merge_io * self.block_size * ratio / 2.0
                compress_raw += raw
                decompress_raw += raw
        # Output-walk rereads, absorbed by the buffer pool.
        rereads = OUTPUT_REREAD_FRACTION * n
        cache = config.cache_blocks
        absorbed = rereads * (cache / (cache + 1.0))
        reread_io = rereads - absorbed
        io += reread_io
        random_io += reread_io
        if config.flat_optimization:
            # Degeneration detection on a hierarchical input: a small
            # insurance premium so the plain plan wins exact ties.
            io *= 1.002
        return self._finish(
            config, io, random_io, comparisons, tokens,
            merge_depth=depth, initial_runs=runs, fan_in=fan_in,
            compress_raw=compress_raw, decompress_raw=decompress_raw,
        )

    def _finish(
        self,
        config: PlanConfig,
        io: float,
        random_io: float,
        comparisons: float,
        tokens: float,
        merge_depth: int,
        initial_runs: int,
        fan_in: int,
        compress_raw: float = 0.0,
        decompress_raw: float = 0.0,
    ) -> PlanCost:
        model = self.cost_model
        sequential = max(0.0, io - random_io)
        io_seconds = (
            sequential * model.transfer_seconds
            + random_io * (model.seek_seconds + model.transfer_seconds)
        )
        cpu_seconds = model.cpu_seconds(
            round(comparisons), round(tokens)
        ) + model.compress_seconds(
            round(compress_raw), round(decompress_raw)
        )
        disks = config.disks
        disk_seconds = io_seconds / disks + (
            io_seconds * STRIPE_SEEK_FRACTION * (1.0 - 1.0 / disks)
        )
        return PlanCost(
            total_ios=io,
            random_ios=random_io,
            io_seconds=io_seconds,
            cpu_seconds=cpu_seconds,
            disk_seconds=disk_seconds,
            merge_depth=merge_depth,
            initial_runs=initial_runs,
            fan_in=fan_in,
        )

    # -- enumeration, ranking, and the verdict ---------------------------

    def cost(self, config: PlanConfig) -> PlanCost:
        """Predicted cost of one configuration."""
        config.validate()
        if config.algorithm == "merge_sort":
            return self._merge_sort_cost(config)
        return self._nexsort_cost(config)

    def _floor(self, algorithm: str) -> int:
        return MINIMUM_NEXSORT_BLOCKS if algorithm == "nexsort" else 3

    def enumerate_configs(
        self, fixed: dict | None = None
    ) -> list[PlanConfig]:
        """The full knob grid, honoring ``fixed`` pins."""
        fixed = dict(fixed or {})

        def axis(name: str, values: list) -> list:
            if name in fixed:
                return [fixed[name]]
            return values

        memory = int(fixed.get("memory_blocks", self.memory_blocks))
        caches = sorted(
            {0, 1, 2, memory // 8, memory // 4}
            & set(range(0, memory))
        )
        disk_values = sorted(
            {1, self.disks}
            | {d for d in (2, 4, 8) if d <= self.disks}
        )
        configs: list[PlanConfig] = []
        seen: set[PlanConfig] = set()
        for (
            algorithm, cache, threshold, flat, formation,
            merge_kernel, embedded, kernel, disks,
            compress, compress_capacity,
        ) in itertools.product(
            axis("algorithm", ["nexsort", "merge_sort"]),
            axis("cache_blocks", caches),
            axis("threshold_blocks", [1, 2, 4]),
            axis("flat_optimization", [False, True]),
            axis("run_formation", sorted(RUN_FORMATION_MODES)),
            axis("merge_kernel", sorted(MERGE_KERNELS)),
            axis("embedded_keys", [False, True]),
            axis("kernel", sorted(SORT_KERNELS)),
            axis("disks", disk_values),
            axis("compress", [None, "container"]),
            axis("compress_capacity", [False, True]),
        ):
            if memory - cache < self._floor(algorithm):
                continue
            if compress_capacity and compress is None:
                continue
            if algorithm == "merge_sort":
                # Threshold and degeneration are NEXSORT-only knobs:
                # canonicalize so equal plans are not double-counted.
                threshold = fixed.get("threshold_blocks", 2)
                flat = fixed.get("flat_optimization", False)
            prefetch = fixed.get(
                "prefetch_depth", 2 * disks if disks > 1 else 0
            )
            config = PlanConfig(
                algorithm=algorithm,
                memory_blocks=memory,
                cache_blocks=cache,
                threshold_blocks=threshold,
                flat_optimization=flat,
                run_formation=formation,
                merge_kernel=merge_kernel,
                embedded_keys=embedded,
                kernel=kernel,
                disks=disks,
                prefetch_depth=prefetch,
                prefetch_policy=fixed.get("prefetch_policy", "forecast"),
                compress=compress,
                compress_capacity=compress_capacity,
            )
            if config not in seen:
                seen.add(config)
                configs.append(config)
        if not configs:
            raise ReproError(
                f"no feasible plan: {memory} blocks cannot cover the "
                f"algorithm floor"
            )
        return configs

    def _tiebreak(self, config: PlanConfig) -> tuple:
        """Deterministic order among cost ties.

        Prefer the columnar kernel (identical counters, faster wall
        clock), then the fewest knobs moved off the paper's defaults,
        then a stable lexicographic key.
        """
        defaults = PlanConfig(
            memory_blocks=config.memory_blocks,
            disks=config.disks,
            prefetch_depth=config.prefetch_depth,
        )
        moved = sum(
            1
            for name in (
                "cache_blocks", "threshold_blocks", "flat_optimization",
                "run_formation", "merge_kernel", "embedded_keys",
                "compress", "compress_capacity",
            )
            if getattr(config, name) != getattr(defaults, name)
        )
        return (
            0 if config.kernel == "columnar" else 1,
            moved,
            repr(config),
        )

    def rank(
        self, configs: list[PlanConfig]
    ) -> list[tuple[PlanConfig, PlanCost]]:
        """Configs with costs, cheapest objective first."""
        priced = [(config, self.cost(config)) for config in configs]
        priced.sort(
            key=lambda pair: (
                round(pair[1].total_seconds, 9),
                self._tiebreak(pair[0]),
            )
        )
        return priced

    def choose(
        self,
        configs: list[PlanConfig] | None = None,
        fixed: dict | None = None,
    ) -> Plan:
        """Pick the cheapest plan from ``configs`` or the full grid."""
        if configs is None:
            configs = self.enumerate_configs(fixed)
        ranked = self.rank(configs)
        best, cost = ranked[0]
        return Plan(
            config=best,
            cost=cost,
            rationale=self._rationale(best, cost, ranked),
            ranked=ranked[:5],
            considered=len(ranked),
        )

    def _rationale(
        self,
        best: PlanConfig,
        cost: PlanCost,
        ranked: list[tuple[PlanConfig, PlanCost]],
    ) -> list[str]:
        lines: list[str] = []
        by_algorithm: dict[str, float] = {}
        for config, priced in ranked:
            by_algorithm.setdefault(
                config.algorithm, priced.total_seconds
            )
        other = {
            name: seconds
            for name, seconds in by_algorithm.items()
            if name != best.algorithm
        }
        if other:
            rival, seconds = min(other.items(), key=lambda kv: kv[1])
            lines.append(
                f"{best.algorithm} predicted {cost.total_seconds:.4f}s "
                f"vs {rival} {seconds:.4f}s on this profile "
                f"(height {self.profile.height}, "
                f"{self.n} input blocks)"
            )
        else:
            lines.append(
                f"{best.algorithm} predicted {cost.total_seconds:.4f}s "
                f"(only candidate algorithm)"
            )
        lines.append(
            f"Arge-Thorup oracle: {cost.initial_runs} initial runs at "
            f"fan-in {cost.fan_in} -> merge depth {cost.merge_depth}"
        )
        if best.cache_blocks:
            lines.append(
                f"{best.cache_blocks} cache blocks absorb output-walk "
                f"rereads without forcing an extra merge level"
            )
        if best.run_formation == "replacement-selection":
            lines.append(
                "replacement selection halves the run count, cutting "
                "merge-boundary seeks"
            )
        if best.merge_kernel == "loser-tree":
            lines.append(
                "loser tree: ~log2(f) comparisons per record and "
                "sequential merge reads"
            )
        if best.embedded_keys:
            lines.append(
                "embedded keys pay off: decode savings beat the run-"
                "record inflation here"
            )
        else:
            lines.append(
                "embedded keys rejected: run-record inflation would "
                "cost more I/O than decoding saves"
            )
        if best.kernel == "columnar":
            lines.append(
                "columnar kernel: identical counters, faster wall clock"
            )
        if best.compress:
            saved = 1.0 - 1.0 / PLANNED_COMPRESSION_RATIO
            lines.append(
                f"run compression ({best.compress}) past the CPU/IO "
                f"crossover: ~{saved:.0%} of run transfer saved beats "
                f"the codec's per-byte CPU at this block size"
                + (
                    "; capacity mode lengthens initial runs "
                    "(fewer merge passes in reach)"
                    if best.compress_capacity
                    else ""
                )
            )
        else:
            lines.append(
                "run compression rejected: codec CPU per raw byte would "
                "exceed the blocks it saves at this block size"
            )
        if best.disks > 1:
            lines.append(
                f"{best.disks} disks cut busiest-disk time to "
                f"{cost.disk_seconds:.4f}s (prefetch "
                f"{best.prefetch_depth}, {best.prefetch_policy})"
            )
        if best.algorithm == "nexsort":
            lines.append(
                f"threshold {best.threshold_blocks} block(s); sort "
                f"units above it "
                + (
                    "need external merges"
                    if cost.merge_depth
                    else "fit in memory (internal regime, ~4n I/Os)"
                )
            )
        return lines
