"""Theory: outcome counting (Lemmas 4.1-4.2) and I/O bounds (Thms 4.4-4.5)."""

from .advisor import (
    DocumentProfile,
    Recommendation,
    profile_document,
    recommend,
)
from .bounds import (
    bounds_within_constant_factor,
    flat_sorting_lower_bound_ios,
    merge_sort_ios,
    merge_sort_passes,
    nexsort_over_lower_bound_ratio,
    nexsort_upper_bound_ios,
    permutation_lower_bound_ios,
    sorting_lower_bound_ios,
    xml_permutation_conjecture_ios,
)
from .cost_model import (
    ModelGeometry,
    lower_bound_seconds,
    measured_over_bound,
    predicted_merge_sort_seconds,
    predicted_nexsort_seconds,
    predicted_seconds_from_ios,
)
from .outcomes import (
    adversarial_fanouts,
    adversarial_tree,
    fanouts_of,
    log2_factorial,
    log2_flat_outcomes,
    log2_max_outcomes,
    log2_outcomes_from_fanouts,
    log2_sorting_outcomes,
    rebalance_increases_outcomes,
)

__all__ = [
    "DocumentProfile",
    "ModelGeometry",
    "Recommendation",
    "adversarial_fanouts",
    "profile_document",
    "recommend",
    "adversarial_tree",
    "bounds_within_constant_factor",
    "fanouts_of",
    "flat_sorting_lower_bound_ios",
    "log2_factorial",
    "log2_flat_outcomes",
    "log2_max_outcomes",
    "log2_outcomes_from_fanouts",
    "log2_sorting_outcomes",
    "lower_bound_seconds",
    "measured_over_bound",
    "merge_sort_ios",
    "merge_sort_passes",
    "nexsort_over_lower_bound_ratio",
    "nexsort_upper_bound_ios",
    "permutation_lower_bound_ios",
    "predicted_merge_sort_seconds",
    "predicted_nexsort_seconds",
    "predicted_seconds_from_ios",
    "rebalance_increases_outcomes",
    "sorting_lower_bound_ios",
    "xml_permutation_conjecture_ios",
]
